"""Differential tests of the real multi-core parallel sort.

The acceptance bar of the parallel executor
(:mod:`repro.sort.parallel_exec`) is *byte identity*: for any worker
count, morsel size, type mix, direction, NULL placement, or duplication
level, the parallel path must produce exactly the bytes the serial
kernel path produces -- same column data, same validity masks -- because
every sub-sort is stable and every Merge-Path sub-merge resolves ties
like the serial kernels.  A cross-check also pins the executor's
*measured* schedule against the :func:`repro.engine.parallel.sort_phase_model`
prediction on an equal-cost workload.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from test_external_kway import assert_byte_identical, mixed_table
from repro.errors import SortError
from repro.engine.parallel import makespan, sort_phase_model
from repro.sort.external import external_sort_table
from repro.sort.kernels import argsort_rows, merge_indices
from repro.sort.operator import SortConfig, SortOperator, sort_table
from repro.sort.parallel_exec import (
    SHM_PREFIX,
    ParallelSortExecutor,
    parallel_platform_supported,
)
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec

pytestmark = pytest.mark.skipif(
    not parallel_platform_supported(),
    reason="platform lacks fork/POSIX shared memory",
)

WORKER_COUNTS = [1, 2, 4]

SPECS = [
    "a",
    "a DESC NULLS FIRST, s",
    "s NULLS FIRST, f DESC",
    "f DESC, a NULLS LAST, s DESC NULLS FIRST",
]


def parallel_config(num_workers, **overrides):
    defaults = dict(
        run_threshold=1500,
        parallel_morsel_rows=400,
        num_workers=num_workers,
    )
    defaults.update(overrides)
    return SortConfig(**defaults)


def duplicate_heavy_table(rng, n):
    """Two values in the key column: maximal tie pressure on the merge."""
    return Table.from_pydict(
        {
            "a": [int(v) for v in rng.integers(0, 2, n)],
            "row_id": list(range(n)),
        }
    )


class TestDifferentialByteIdentity:
    @pytest.mark.parametrize("num_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("spec", SPECS)
    def test_mixed_types_match_serial(self, rng, spec, num_workers):
        table = mixed_table(rng, 5000)
        serial = sort_table(table, spec, SortConfig(run_threshold=1500))
        parallel = sort_table(table, spec, parallel_config(num_workers))
        assert_byte_identical(serial, parallel)

    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_duplicate_heavy_keys(self, rng, num_workers):
        table = duplicate_heavy_table(rng, 4000)
        serial = sort_table(table, "a DESC", SortConfig(run_threshold=1000))
        parallel = sort_table(
            table, "a DESC", parallel_config(num_workers, run_threshold=1000)
        )
        assert_byte_identical(serial, parallel)

    @pytest.mark.parametrize("num_workers", WORKER_COUNTS)
    def test_empty_and_single_row(self, num_workers):
        empty = Table.from_pydict({"a": [], "b": []})
        one = Table.from_pydict({"a": [42], "b": ["x"]})
        config = parallel_config(num_workers)
        assert_byte_identical(
            sort_table(empty, "a", SortConfig()),
            sort_table(empty, "a", config),
        )
        assert_byte_identical(
            sort_table(one, "a DESC", SortConfig()),
            sort_table(one, "a DESC", config),
        )

    def test_stability_equal_keys_keep_input_order(self, rng):
        table = duplicate_heavy_table(rng, 3000)
        result = sort_table(
            table, "a", parallel_config(4, run_threshold=800)
        )
        values = result.column("a").data
        row_ids = result.column("row_id").data
        for key in (0, 1):
            within = row_ids[values == key]
            assert (np.diff(within) > 0).all(), (
                "equal keys must keep input (row-id) order"
            )

    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_external_parallel_run_generation(
        self, rng, tmp_path, num_workers
    ):
        table = mixed_table(rng, 5000)
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_dir.mkdir()
        parallel_dir.mkdir()
        serial = external_sort_table(
            table, "a, s DESC, f", SortConfig(run_threshold=1200),
            str(serial_dir),
        )
        parallel = external_sort_table(
            table,
            "a, s DESC, f",
            parallel_config(num_workers, run_threshold=1200),
            str(parallel_dir),
        )
        assert_byte_identical(serial, parallel)

    def test_parallel_stats_recorded(self, rng):
        table = mixed_table(rng, 4000)
        config = parallel_config(2)
        operator = SortOperator(table.schema, SortSpec.of("a"), config)
        for chunk in chunk_table(table, 512):
            operator.sink(chunk)
        operator.finalize()
        stats = operator.stats
        assert stats.algorithm == "parallel-morsel"
        assert stats.parallel_workers == 2
        assert sum(stats.parallel_task_rows["run_gen"]) == 4000 or (
            # multiple runs: each run's morsels sum to its run size
            sum(stats.parallel_task_rows["run_gen"]) == table.num_rows
        )
        assert stats.parallel_makespan_s > 0.0
        assert stats.parallel_worker_seconds
        assert all(
            seconds >= 0.0
            for seconds in stats.parallel_worker_seconds.values()
        )


class TestExecutorKernelEquivalence:
    """The executor's permutations equal the serial kernels', exactly."""

    def test_argsort_matches_kernel(self, rng):
        matrix = rng.integers(0, 4, (20_000, 9), dtype=np.uint8)
        with ParallelSortExecutor(3, morsel_rows=3000) as executor:
            order = executor.argsort(matrix, 9)
            assert order is not None
            assert (order == argsort_rows(matrix)).all()

    def test_merge_two_matches_kernel(self, rng):
        matrix = rng.integers(0, 3, (40_000, 9), dtype=np.uint8)
        a = matrix[argsort_rows(matrix)][:25_000]
        b = matrix[argsort_rows(matrix)][25_000:]
        with ParallelSortExecutor(4) as executor:
            perm = executor.merge_two(a, b, 9)
            assert perm is not None
            assert (perm == merge_indices(a, b)).all()

    def test_no_shared_memory_leaks(self, rng):
        matrix = rng.integers(0, 255, (4000, 9), dtype=np.uint8)
        with ParallelSortExecutor(2, morsel_rows=500) as executor:
            executor.argsort(matrix, 9)
        assert glob.glob(os.path.join("/dev/shm", SHM_PREFIX + "*")) == []


class TestFallbacks:
    def test_single_worker_is_serial(self, rng):
        executor = ParallelSortExecutor(1)
        assert not executor.available
        matrix = rng.integers(0, 255, (1000, 9), dtype=np.uint8)
        assert executor.argsort(matrix, 9) is None
        executor.close()

    def test_single_morsel_falls_back(self, rng):
        matrix = rng.integers(0, 255, (100, 9), dtype=np.uint8)
        with ParallelSortExecutor(2, morsel_rows=10_000) as executor:
            assert executor.argsort(matrix, 9) is None

    def test_unavailable_platform_falls_back(self, rng, monkeypatch):
        monkeypatch.setattr(
            "repro.sort.parallel_exec.parallel_platform_supported",
            lambda: False,
        )
        executor = ParallelSortExecutor(4)
        matrix = rng.integers(0, 255, (5000, 9), dtype=np.uint8)
        assert executor.argsort(matrix, 9) is None
        executor.close()
        # The operator still sorts correctly through the serial path.
        table = mixed_table(np.random.default_rng(5), 2000)
        serial = sort_table(table, "a", SortConfig(run_threshold=600))
        parallel = sort_table(table, "a", parallel_config(4, run_threshold=600))
        assert_byte_identical(serial, parallel)

    def test_scalar_kernels_stay_serial(self, rng):
        table = mixed_table(rng, 2000)
        config = parallel_config(2, use_vector_kernels=False)
        operator = SortOperator(table.schema, SortSpec.of("a"), config)
        for chunk in chunk_table(table, 512):
            operator.sink(chunk)
        result = operator.finalize()
        assert operator.stats.parallel_workers == 0
        assert_byte_identical(
            sort_table(table, "a", SortConfig()), result
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(SortError):
            SortConfig(num_workers=0)
        with pytest.raises(SortError):
            SortConfig(parallel_morsel_rows=0)
        with pytest.raises(SortError):
            ParallelSortExecutor(0)


class TestPhaseModelCrossCheck:
    """Measured schedule vs. PhaseModel prediction (placement, not time)."""

    def test_equal_cost_workload_matches_model(self, rng):
        num_workers, morsel_rows, n = 2, 1000, 8000
        table = Table.from_pydict(
            {"a": [int(v) for v in rng.integers(0, 1 << 30, n)]}
        )
        config = SortConfig(
            run_threshold=n,
            num_workers=num_workers,
            parallel_morsel_rows=morsel_rows,
        )
        operator = SortOperator(table.schema, SortSpec.of("a"), config)
        for chunk in chunk_table(table, 2048):
            operator.sink(chunk)
        operator.finalize()
        stats = operator.stats

        model = sort_phase_model(n, num_workers, morsel_rows)
        # Same phases in the same order.
        assert [name for name, _ in model.phases] == list(
            stats.parallel_task_rows
        )
        # On an equal-cost workload (cost == rows) the model's per-phase
        # makespan must equal list-scheduling the *measured* task rows:
        # same task placement shape, by construction of both sides.
        for name, predicted in model.phases:
            measured_rows = stats.parallel_task_rows[name]
            assert makespan(measured_rows, num_workers) == predicted
            assert len(stats.parallel_task_seconds[name]) == len(
                measured_rows
            )
        # Every phase moves all n rows exactly once.
        for name, rows in stats.parallel_task_rows.items():
            assert sum(rows) == n, name
        # Per-worker busy time accounts for every task second.
        total_task = sum(
            sum(seconds) for seconds in stats.parallel_task_seconds.values()
        )
        total_worker = sum(stats.parallel_worker_seconds.values())
        assert total_worker == pytest.approx(total_task)
        assert len(stats.parallel_worker_seconds) <= num_workers


class TestCliWorkers:
    def test_sort_csv_with_workers(self, rng, tmp_path, capsys):
        from repro.cli import main

        n = 2000
        path = tmp_path / "data.csv"
        values = rng.integers(0, 50, n)
        with open(path, "w") as handle:
            handle.write("a,b\n")
            for i, v in enumerate(values):
                handle.write(f"{v},{i}\n")
        assert main(["sort", str(path), "--by", "a DESC"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [
                    "sort",
                    str(path),
                    "--by",
                    "a DESC",
                    "--workers",
                    "2",
                    "--run-threshold",
                    "600",
                ]
            )
            == 0
        )
        parallel = capsys.readouterr().out
        # Identical CSV apart from run-threshold-independent ordering:
        # the sort is total (row-id tiebreak), so bytes must match.
        assert serial == parallel

    def test_workers_must_be_positive(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "data.csv"
        path.write_text("a\n1\n")
        assert (
            main(["sort", str(path), "--by", "a", "--workers", "0"]) == 1
        )
        assert "--workers" in capsys.readouterr().err
