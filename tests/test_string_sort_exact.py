"""Exact string sorting on the vector path.

Randomized byte-identity checks of every sort path -- in-memory,
external, Top-N, parallel -- against the tuple-compare oracle on string
workloads the key prefix cannot decide (long strings, shared prefixes,
duplicate-heavy distributions, NULLs, DESC / NULLS FIRST), plus property
tests of the offset-value coding used by the merges and the escape hatch
that restores the old truncated-prefix semantics.

No workload here may demote to a scalar merge: the stats assertions pin
the vector path (``scalar_merges == 0`` / ``scalar_kway_merges == 0``)
while the outputs stay byte-identical to the oracle.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from conftest import reference_sort
from repro.aggregate.groupby import Aggregate, group_by
from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.external import (
    ExternalSortOperator,
    SpilledRun,
    external_sort_table,
)
from repro.sort.kernels import (
    KWayBlockStats,
    kway_merge_blocks,
    merge_indices,
    ovc_codes,
)
from repro.sort.operator import SortConfig, SortOperator, SortStats, sort_table
from repro.sort.parallel_exec import parallel_platform_supported
from repro.sort.spillfile import (
    EXTRA_TAG_LAYOUT,
    EXTRA_TAG_OVC,
    unpack_extra,
)
from repro.sort.stringsort import (
    exact_group_changed,
    inexact_prefix_end,
    refine_key_order,
)
from repro.sort.topn import top_n
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortKey, SortSpec
from repro.window.functions import WindowFunction, WindowSpec, window

SPECS = [
    "s",
    "s DESC",
    "s DESC NULLS LAST, i DESC",
    "i, s",
    "s NULLS FIRST, i",
]


def string_table(seed: int, n: int, *, null_rate=0.08, dup_heavy=False):
    """Strings the 12-byte key prefix cannot decide.

    Long shared prefixes, tails of varying length (including tails that
    are prefixes of each other), NULLs, and -- with ``dup_heavy`` -- a
    tiny value domain so almost every key byte comparison ties.
    """
    rng = random.Random(seed)
    prefixes = [
        "shared_prefix_alpha_______",
        "shared_prefix_beta________",
        "zz",
        "",
    ]
    if dup_heavy:
        domain = [
            "shared_prefix_alpha_______" + tail
            for tail in ("", "a", "aa", "b")
        ]

        def one():
            return rng.choice(domain)

    else:

        def one():
            tail_len = rng.randrange(0, 40)
            tail = "".join(
                rng.choice("abcxyz019") for _ in range(tail_len)
            )
            return rng.choice(prefixes) + tail

    svals = [
        None if rng.random() < null_rate else one() for _ in range(n)
    ]
    ivals = [rng.randrange(0, 5) for _ in range(n)]
    return Table.from_pydict({"s": svals, "i": ivals})


def spec_of(spec_str: str) -> SortSpec:
    return SortSpec.of(*[part.strip() for part in spec_str.split(",")])


def assert_matches_oracle(result: Table, table: Table, spec: SortSpec):
    expected = reference_sort(table, spec)
    for name in table.schema.names:
        assert (
            result.column(name).to_pylist()
            == expected.column(name).to_pylist()
        ), name


class TestInMemoryExact:
    @pytest.mark.parametrize("spec_str", SPECS)
    @pytest.mark.parametrize("dup_heavy", [False, True])
    def test_byte_identity_vs_oracle(self, spec_str, dup_heavy):
        table = string_table(3, 4000, dup_heavy=dup_heavy)
        spec = spec_of(spec_str)
        operator = SortOperator(
            table.schema, spec, SortConfig(run_threshold=1000)
        )
        for chunk in chunk_table(table, 512):
            operator.sink(chunk)
        result = operator.finalize()
        assert_matches_oracle(result, table, spec)
        # The whole point: inexact prefixes stay on the kernel path.
        assert operator.stats.scalar_merges == 0
        assert operator.stats.kernel_merges > 0
        assert not operator.stats.prefix_exact
        assert operator.stats.full_key_compares > 0

    def test_reencode_work_scales_with_ties_only(self):
        # Unique short strings: nothing ties past the prefix, so the
        # adaptive re-encoding must not run at all.
        table = Table.from_pydict(
            {"s": [f"v{i:04d}" for i in range(2000)]}
        )
        operator = SortOperator(table.schema, SortSpec.of("s"), SortConfig())
        for chunk in chunk_table(table, 512):
            operator.sink(chunk)
        operator.finalize()
        assert operator.stats.reencoded_rows == 0
        assert operator.stats.full_key_compares == 0

    def test_forced_prefix_still_sorts_exactly(self):
        # A forced (short) prefix changes the key bytes, not the result:
        # exact_varchar refines the ties the narrow prefix leaves.
        table = string_table(5, 1500)
        spec = spec_of("s DESC")
        result = sort_table(table, spec, SortConfig(string_prefix=4))
        assert_matches_oracle(result, table, spec)


class TestExternalExact:
    @pytest.mark.parametrize("spec_str", SPECS)
    @pytest.mark.parametrize("compress", [True, False])
    def test_byte_identity_vs_oracle(self, spec_str, compress, tmp_path):
        table = string_table(7, 5000)
        spec = spec_of(spec_str)
        config = SortConfig(run_threshold=1000, compress_keys=compress)
        with ExternalSortOperator(
            table.schema, spec, config, str(tmp_path)
        ) as operator:
            for chunk in chunk_table(table, 512):
                operator.sink(chunk)
            result = operator.finalize()
        assert operator.spilled_runs >= 4
        assert_matches_oracle(result, table, spec)
        assert operator.stats.scalar_kway_merges == 0
        assert operator.stats.kernel_kway_merges == 1
        assert not operator.stats.prefix_exact
        assert operator.stats.full_key_compares > 0

    def test_duplicate_heavy_kway_uses_ovc(self, tmp_path):
        table = string_table(9, 6000, dup_heavy=True)
        spec = SortSpec.of("s")
        config = SortConfig(run_threshold=1000)
        with ExternalSortOperator(
            table.schema, spec, config, str(tmp_path)
        ) as operator:
            for chunk in chunk_table(table, 512):
                operator.sink(chunk)
            result = operator.finalize()
        assert_matches_oracle(result, table, spec)
        # Nearly all frontier rows tie on every key word; the stored
        # codes and the per-round skip must prove it without compares.
        assert operator.stats.ovc_ties > 0

    def test_scalar_merge_oracle_agrees(self, tmp_path):
        # use_vector_kernels=False is the cross-checking scalar heap;
        # it must produce the identical exact order via augmented keys.
        table = string_table(11, 3000)
        spec = spec_of("s DESC NULLS LAST, i DESC")
        config = SortConfig(run_threshold=800, use_vector_kernels=False)
        result = external_sort_table(table, spec, config, str(tmp_path))
        assert_matches_oracle(result, table, spec)

    def test_ovc_on_off_same_bytes(self, tmp_path):
        table = string_table(13, 4000, dup_heavy=True)
        spec = spec_of("s, i")
        results = []
        for use_ovc in (True, False):
            config = SortConfig(run_threshold=900, use_ovc=use_ovc)
            results.append(
                external_sort_table(table, spec, config, str(tmp_path))
            )
        for name in table.schema.names:
            assert (
                results[0].column(name).to_pylist()
                == results[1].column(name).to_pylist()
            )

    def test_spilled_run_stores_ovc_codes(self, tmp_path):
        table = string_table(15, 2500)
        spec = SortSpec.of("s")
        with ExternalSortOperator(
            table.schema, spec, SortConfig(run_threshold=600), str(tmp_path)
        ) as operator:
            for chunk in chunk_table(table, 512):
                operator.sink(chunk)
            for run in operator._runs:
                assert run.ovc is not None
                frames = unpack_extra(
                    run.header.extra, run.header.version, run.path
                )
                stored = np.frombuffer(frames[EXTRA_TAG_OVC], dtype="<u2")
                assert np.array_equal(stored, run.ovc)
                # Round-trip: re-opening the file re-attaches the codes.
                reopened = SpilledRun.open(
                    run.path, schema=table.schema, spec=spec
                )
                assert np.array_equal(reopened.ovc, run.ovc)
            operator.finalize()

    def test_version2_spill_files_stay_readable(self, tmp_path):
        # A v2 header's extra blob is the raw serialized layout (no
        # frames); the reader must still parse it and serve blocks.
        table = string_table(17, 800)
        spec = SortSpec.of("s")
        with ExternalSortOperator(
            table.schema, spec, SortConfig(run_threshold=400), str(tmp_path)
        ) as operator:
            for chunk in chunk_table(table, 256):
                operator.sink(chunk)
            run = operator._runs[0]
            frames = unpack_extra(
                run.header.extra, run.header.version, run.path
            )
            keys = run.read_key_block(0, run.num_rows).tobytes()
            rows = run.read_row_block(0, run.num_rows).tobytes()
            heap = run.read_heap()
            legacy_header = dataclasses.replace(
                run.header,
                version=2,
                extra=frames[EXTRA_TAG_LAYOUT],  # raw layout blob, no frames
            )
            legacy_path = str(tmp_path / "legacy-v2.bin")
            run.io.write_file(
                legacy_path, [legacy_header.pack(), keys, rows, heap]
            )
            legacy = SpilledRun.open(
                legacy_path, schema=table.schema, spec=spec
            )
            assert legacy.header.version == 2
            assert legacy.layout == run.layout
            assert legacy.ovc is None  # v2 never carried codes
            assert (
                legacy.read_key_block(0, legacy.num_rows).tobytes() == keys
            )
            operator.finalize()


class TestTopNAndParallel:
    @pytest.mark.parametrize("spec_str", ["s", "s DESC, i"])
    def test_topn_matches_oracle_head(self, spec_str):
        table = string_table(19, 2000)
        spec = spec_of(spec_str)
        expected = reference_sort(table, spec)
        result = top_n(table, spec, limit=37, offset=5)
        for name in table.schema.names:
            assert (
                result.column(name).to_pylist()
                == expected.column(name).to_pylist()[5:42]
            )

    @pytest.mark.skipif(
        not parallel_platform_supported(),
        reason="shared-memory parallel executor unsupported here",
    )
    @pytest.mark.parametrize("spec_str", ["s", "s DESC NULLS LAST, i DESC"])
    def test_parallel_matches_serial(self, spec_str):
        table = string_table(21, 6000)
        spec = spec_of(spec_str)
        serial = sort_table(table, spec, SortConfig())
        parallel = sort_table(table, spec, SortConfig(num_workers=3))
        for name in table.schema.names:
            assert (
                serial.column(name).to_pylist()
                == parallel.column(name).to_pylist()
            )
        assert_matches_oracle(parallel, table, spec)


class TestOffsetValueCoding:
    def wide_sorted_matrix(self, rng, n, width, distinct):
        pool = rng.integers(0, distinct, size=(n, width), dtype=np.uint8)
        pool[:, : width // 2] = 7  # shared leading bytes
        order = np.lexsort(tuple(pool.T[::-1]))
        return np.ascontiguousarray(pool[order])

    def test_ovc_codes_match_definition(self, rng):
        matrix = self.wide_sorted_matrix(rng, 500, 20, 3)
        codes = ovc_codes(matrix)
        words = -(-matrix.shape[1] // 8)
        padded = np.zeros((len(matrix), words * 8), dtype=np.uint8)
        padded[:, : matrix.shape[1]] = matrix
        assert codes[0] == 0
        for i in range(1, len(matrix)):
            expected = words  # all words equal => duplicate marker
            for w in range(words):
                if not np.array_equal(
                    padded[i, w * 8 : w * 8 + 8],
                    padded[i - 1, w * 8 : w * 8 + 8],
                ):
                    expected = w
                    break
            assert codes[i] == expected, i

    def test_merge_indices_ovc_equivalence(self, rng):
        for _ in range(5):
            a = self.wide_sorted_matrix(rng, 400, 24, 4)
            b = self.wide_sorted_matrix(rng, 300, 24, 4)
            stats = SortStats()
            with_ovc = merge_indices(a, b, stats=stats, use_ovc=True)
            without = merge_indices(a, b, use_ovc=False)
            assert np.array_equal(with_ovc, without)
            assert stats.ovc_compares + stats.ovc_ties > 0

    def test_kway_blocks_ovc_equivalence(self, rng):
        runs = [self.wide_sorted_matrix(rng, 600, 24, 4) for _ in range(4)]

        def sources():
            return [
                iter(
                    [run[i : i + 128] for i in range(0, len(run), 128)]
                )
                for run in runs
            ]

        def collect(use_ovc):
            stats = KWayBlockStats()
            out = [
                (run_ids.copy(), row_ids.copy())
                for run_ids, row_ids in kway_merge_blocks(
                    sources(), stats, use_ovc=use_ovc
                )
            ]
            return out, stats

        with_ovc, stats = collect(True)
        without, _ = collect(False)
        assert len(with_ovc) == len(without)
        for (ra, ia), (rb, ib) in zip(with_ovc, without):
            assert np.array_equal(ra, rb)
            assert np.array_equal(ia, ib)
        assert stats.ovc_compares + stats.ovc_ties > 0


class TestEscapeHatch:
    def test_inexact_without_forced_prefix_rejected(self):
        with pytest.raises(SortError):
            SortConfig(exact_varchar=False)

    def test_truncated_semantics_are_explicit(self):
        # exact_varchar=False + a forced prefix restores the documented
        # old behaviour: order is decided by the prefix bytes alone,
        # ties fall back to arrival order (the row id).
        values = ["prefix_AAAA_z", "prefix_AAAA_a", "prefix_BBBB"]
        table = Table.from_pydict({"s": values})
        config = SortConfig(exact_varchar=False, string_prefix=7)
        result = sort_table(table, "s", config)
        # All three tie on "prefix_"; arrival order is kept.
        assert result.column("s").to_pylist() == values
        exact = sort_table(table, "s", SortConfig(string_prefix=7))
        assert exact.column("s").to_pylist() == sorted(values)

    def test_external_escape_hatch(self, tmp_path):
        values = ["prefix_AAAA_z", "prefix_AAAA_a", "prefix_BBBB"]
        table = Table.from_pydict({"s": values})
        config = SortConfig(exact_varchar=False, string_prefix=7)
        result = external_sort_table(table, "s", config, str(tmp_path))
        assert result.column("s").to_pylist() == values


class TestGroupingConsumers:
    LONG_A = "group_key_shared_prefix_variant_A"
    LONG_B = "group_key_shared_prefix_variant_B"

    def table(self):
        return Table.from_pydict(
            {
                "g": [
                    self.LONG_A,
                    self.LONG_B,
                    self.LONG_A,
                    self.LONG_B,
                    self.LONG_A,
                    None,
                ],
                "v": [1, 2, 3, 4, 5, 6],
            }
        )

    def test_group_by_splits_long_string_keys(self):
        result = group_by(self.table(), ["g"], [Aggregate("sum", "v")])
        got = dict(
            zip(
                result.column("g").to_pylist(),
                result.column("sum_v").to_pylist(),
            )
        )
        assert got == {self.LONG_A: 9, self.LONG_B: 6, None: 6}

    def test_window_partitions_long_string_keys(self):
        spec = WindowSpec(partition_by=("g",), order_by=(SortKey("v"),))
        result = window(
            self.table(), spec, [WindowFunction("row_number")]
        )
        per_group = {}
        for g, v, number in zip(
            result.column("g").to_pylist(),
            result.column("v").to_pylist(),
            result.column("row_number").to_pylist(),
        ):
            per_group.setdefault(g, []).append((v, number))
        assert per_group[self.LONG_A] == [(1, 1), (3, 2), (5, 3)]
        assert per_group[self.LONG_B] == [(2, 1), (4, 2)]
        assert per_group[None] == [(6, 1)]

    def test_exact_group_changed_property(self):
        table = string_table(23, 1200, dup_heavy=True)
        spec = SortSpec.of("s")
        sorted_table = sort_table(table, spec)
        norm = normalize_keys(
            sorted_table,
            spec,
            string_prefix=MAX_STRING_PREFIX,
            include_row_id=False,
        )
        changed = exact_group_changed(sorted_table, norm)
        values = sorted_table.column("s").to_pylist()
        expected = [
            values[i] != values[i - 1] for i in range(1, len(values))
        ]
        assert changed.tolist() == expected


class TestRefineKeyOrderUnit:
    def test_inexact_prefix_end(self):
        table = Table.from_pydict({"s": ["x" * 30], "i": [1]})
        keys = normalize_keys(
            table,
            SortSpec.of("s", "i"),
            string_prefix=MAX_STRING_PREFIX,
            include_row_id=False,
        )
        end = inexact_prefix_end(keys.layout)
        segment = keys.layout.segments[0]
        assert end == segment.offset + segment.total_width
        exact = normalize_keys(
            table, SortSpec.of("i"), include_row_id=False
        )
        assert inexact_prefix_end(exact.layout) is None

    def test_refine_returns_none_when_prefix_decides(self):
        table = Table.from_pydict({"s": ["b" * 20, "a" * 20]})
        spec = SortSpec.of("s")
        keys = normalize_keys(
            table, spec, string_prefix=MAX_STRING_PREFIX,
            include_row_id=False,
        )
        order = np.argsort(
            [row.tobytes() for row in keys.matrix], kind="stable"
        )
        matrix = np.ascontiguousarray(keys.matrix[order])

        def fetch(tied):
            raise AssertionError("no ties to fetch")

        assert refine_key_order(matrix, keys.layout, fetch) is None
