"""Property tests of the runtime key-compression layer.

The two invariants every compressed layout must preserve:

1. **Order**: memcmp over the compressed key matrix equals
   ``tuple_compare`` over the original values -- the same ground truth
   the plain normalized keys are held to -- for every type mix,
   direction, NULL placement, and all-NULL columns.
2. **Identity**: the sort pipelines produce byte-identical output with
   compression on and off (same permutation, so same gathered bytes),
   in memory, external, scalar-merge, and parallel.

Plus the machinery around them: width/mode selection, progressive layout
widening with per-run rebasing, spill-header layout round-trips, and
key-carried (keys-only) external runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import reference_sort
from repro.errors import KeyEncodingError
from repro.keys.compression import (
    KeyStatsAccumulator,
    build_compressed_layout,
    decode_key_table,
    deserialize_layout,
    key_carried_eligible,
    plain_key_width,
    rebase_matrix,
    serialize_layout,
)
from repro.keys.normalizer import (
    MODE_FOLDED,
    MODE_NOBYTE,
    MODE_PLAIN,
    build_layout,
    normalize_keys,
    normalized_key_for_row,
)
from repro.sort.external import ExternalSortOperator, external_sort_table
from repro.sort.operator import SortConfig, SortOperator, sort_table
from repro.sort.spillfile import EXTRA_TAG_LAYOUT, unpack_extra
from repro.sort.parallel_exec import parallel_platform_supported
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec, tuple_compare

SPECS = [
    "a",
    "a DESC NULLS FIRST, s",
    "s NULLS FIRST, f DESC",
    "f DESC, a NULLS LAST, s DESC NULLS FIRST",
]


def mixed_table(rng, n, all_null_column=False):
    """Mixed types, narrow ranges, NULLs; optionally an all-NULL key."""
    ints = rng.integers(0, 12, n)
    strings = rng.integers(0, 40, n)
    data = {
        "a": [
            None
            if all_null_column or v % 9 == 0
            else int(v)
            for v in ints
        ],
        "s": [None if v % 13 == 0 else f"key{v % 37:02d}" for v in strings],
        "f": [float(v) for v in rng.choice([-1.5, 0.0, 2.25, 7.5], n)],
        "seq": list(range(n)),
    }
    return Table.from_pydict(data)


def assert_byte_identical(left, right):
    """Stronger than Table.equals: exact data bytes and validity masks."""
    assert left.schema.names == right.schema.names
    for name in left.schema.names:
        col_l, col_r = left.column(name), right.column(name)
        assert (col_l.validity == col_r.validity).all(), name
        if col_l.data.dtype == object:
            assert list(col_l.data) == list(col_r.data), name
        else:
            assert col_l.data.tobytes() == col_r.data.tobytes(), name


def mkdir(tmp_path, name):
    path = tmp_path / name
    path.mkdir(exist_ok=True)
    return str(path)


def key_tuples(table, spec):
    indices = [table.schema.index_of(name) for name in spec.column_names]
    return [
        tuple(table.row(i)[c] for c in indices)
        for i in range(table.num_rows)
    ]


class TestMemcmpEqualsTupleCompare:
    """Invariant 1, directly on the compressed key bytes."""

    @pytest.mark.parametrize("spec_text", SPECS)
    @pytest.mark.parametrize("all_null", [False, True])
    def test_randomized(self, rng, spec_text, all_null):
        spec = SortSpec.of(*[s.strip() for s in spec_text.split(",")])
        table = mixed_table(rng, 300, all_null_column=all_null)
        layout = build_compressed_layout(table, spec, include_row_id=False)
        assert layout.key_width <= plain_key_width(layout)
        keys = normalize_keys(
            table, spec, include_row_id=False, layout=layout
        )
        raw = [keys.key_bytes(i) for i in range(table.num_rows)]
        rows = key_tuples(table, spec)
        for i in range(0, table.num_rows, 7):
            for j in range(0, table.num_rows, 11):
                cmp = tuple_compare(rows[i], rows[j], spec)
                if cmp < 0:
                    assert raw[i] < raw[j]
                elif cmp > 0:
                    assert raw[i] > raw[j]
                else:
                    assert raw[i] == raw[j]

    @pytest.mark.parametrize("spec_text", SPECS)
    def test_scalar_encoder_matches_vectorized(self, rng, spec_text):
        spec = SortSpec.of(*[s.strip() for s in spec_text.split(",")])
        table = mixed_table(rng, 64)
        layout = build_compressed_layout(table, spec, include_row_id=False)
        keys = normalize_keys(
            table, spec, include_row_id=False, layout=layout
        )
        indices = [table.schema.index_of(n) for n in spec.column_names]
        for i in range(table.num_rows):
            row = tuple(table.row(i)[c] for c in indices)
            assert keys.key_bytes(i) == normalized_key_for_row(
                row, spec, layout
            )


class TestWidthAndModeSelection:
    def test_narrow_int64_without_nulls_is_one_nobyte_byte(self):
        table = Table.from_numpy(
            {"a": np.arange(0, 200, 3, dtype=np.int64)}
        )
        layout = build_compressed_layout(
            table, SortSpec.of("a"), include_row_id=False
        )
        (segment,) = layout.segments
        assert segment.mode == MODE_NOBYTE
        assert segment.value_width == 1
        assert segment.total_width == 1  # NULL byte folded away entirely
        assert layout.key_width == 1
        assert plain_key_width(layout) == 9

    def test_nulls_fold_into_value_byte_when_headroom_exists(self):
        table = Table.from_pydict({"a": [None, 0, 150, None]})
        layout = build_compressed_layout(
            table, SortSpec.of("a"), include_row_id=False
        )
        (segment,) = layout.segments
        assert segment.mode == MODE_FOLDED
        assert segment.value_width == 1
        assert segment.total_width == 1

    def test_full_range_without_headroom_stays_plain(self):
        table = Table.from_pydict(
            {"a": [None, -(2**63), 2**63 - 1]}
        )
        layout = build_compressed_layout(
            table, SortSpec.of("a"), include_row_id=False
        )
        (segment,) = layout.segments
        assert segment.mode == MODE_PLAIN
        assert segment.total_width == 9

    def test_all_null_column_compresses_to_one_byte(self):
        table = Table.from_pydict({"a": [None, None, None]})
        layout = build_compressed_layout(
            table, SortSpec.of("a"), include_row_id=False
        )
        (segment,) = layout.segments
        assert segment.mode == MODE_FOLDED
        assert segment.total_width == 1

    def test_forced_string_prefix_disables_compression(self, rng):
        table = mixed_table(rng, 500)
        config = SortConfig(run_threshold=200, string_prefix=8)
        op = SortOperator(table.schema, SortSpec.of("s", "a"), config)
        for chunk in chunk_table(table, 100):
            op.sink(chunk)
        result = op.finalize()
        assert op.stats.key_width_used == op.stats.key_width_full
        assert result.equals(
            sort_table(table, "s, a", SortConfig(string_prefix=8))
        )


class TestLayoutSerialization:
    def test_round_trip(self, rng):
        spec = SortSpec.of("a DESC NULLS FIRST", "s", "f DESC")
        table = mixed_table(rng, 400)
        layout = build_compressed_layout(table, spec)
        blob = serialize_layout(layout)
        assert deserialize_layout(blob, table.schema, spec) == layout

    def test_spec_mismatch_rejected(self, rng):
        table = mixed_table(rng, 50)
        blob = serialize_layout(
            build_compressed_layout(table, SortSpec.of("a"))
        )
        with pytest.raises(KeyEncodingError):
            deserialize_layout(blob, table.schema, SortSpec.of("a DESC"))
        with pytest.raises(KeyEncodingError):
            deserialize_layout(blob[:-3], table.schema, SortSpec.of("a"))

    def test_spill_header_carries_the_run_layout(self, rng, tmp_path):
        table = mixed_table(rng, 900)
        spec = SortSpec.of("a", "s DESC")
        with ExternalSortOperator(
            table.schema,
            spec,
            SortConfig(run_threshold=300),
            str(tmp_path),
        ) as op:
            for chunk in chunk_table(table, 150):
                op.sink(chunk)
            assert op.spilled_runs >= 2
            for run in op._runs:
                assert run.header.extra
                frames = unpack_extra(
                    run.header.extra, run.header.version, run.path
                )
                assert (
                    deserialize_layout(
                        frames[EXTRA_TAG_LAYOUT], table.schema, spec
                    )
                    == run.layout
                )
            result = op.finalize()
        assert result.equals(reference_sort(table, spec))


class TestProgressiveWidening:
    def chunked_widening_table(self, n_per_run):
        """Each later slice needs strictly wider key bytes than the last."""
        values = (
            [int(v) for v in range(n_per_run)]  # fits 1 byte? no: < 2^8*...
            + [int(v) * 300 for v in range(n_per_run)]  # needs 2-3 bytes
            + [int(v) * 20_000_000 for v in range(n_per_run)]  # needs 4+
        )
        return Table.from_pydict({"a": values, "seq": list(range(len(values)))})

    def test_in_memory_rebases_runs_to_final_layout(self):
        table = self.chunked_widening_table(300)
        config = SortConfig(run_threshold=300)
        op = SortOperator(table.schema, SortSpec.of("a DESC"), config)
        for chunk in chunk_table(table, 300):
            op.sink(chunk)
        result = op.finalize()
        assert op.stats.key_layout_rebases >= 1
        assert_byte_identical(
            result, sort_table(table, "a DESC", SortConfig(compress_keys=False))
        )

    def test_external_rebases_blocks_during_merge(self, tmp_path):
        table = self.chunked_widening_table(400)
        spec = SortSpec.of("a DESC")
        with ExternalSortOperator(
            table.schema,
            spec,
            SortConfig(run_threshold=400),
            str(tmp_path),
        ) as op:
            for chunk in chunk_table(table, 200):
                op.sink(chunk)
            result = op.finalize()
        assert op.stats.key_layout_rebases >= 1
        assert result.equals(reference_sort(table, spec))

    def test_rebase_matrix_matches_direct_encoding(self, rng):
        spec = SortSpec.of("a DESC NULLS FIRST", "s")
        narrow = mixed_table(rng, 200)
        acc = KeyStatsAccumulator(narrow.schema, spec)
        acc.update(narrow)
        narrow_layout = acc.build_layout(row_id_width=8)
        keys = normalize_keys(narrow, spec, layout=narrow_layout)
        wide = Table.from_pydict(
            {
                "a": [100_000, -40],
                "s": ["zzzzzzzzz", None],
                "f": [0.0, 1.0],
                "seq": [0, 1],
            }
        )
        acc.update(wide)
        wide_layout = acc.build_layout(row_id_width=8)
        assert wide_layout.key_width > narrow_layout.key_width
        rebased = rebase_matrix(keys.matrix, narrow_layout, wide_layout)
        direct = normalize_keys(narrow, spec, layout=wide_layout)
        assert rebased.tobytes() == direct.matrix.tobytes()


class TestPipelineIdentity:
    """Invariant 2: compression changes bytes spilled, never bytes sorted."""

    @pytest.mark.parametrize("spec", SPECS)
    def test_in_memory(self, rng, spec):
        table = mixed_table(rng, 4000)
        on = sort_table(table, spec, SortConfig(run_threshold=900))
        off = sort_table(
            table, spec, SortConfig(run_threshold=900, compress_keys=False)
        )
        assert_byte_identical(on, off)

    @pytest.mark.parametrize("spec", SPECS)
    def test_external_kernel_merge(self, rng, tmp_path, spec):
        table = mixed_table(rng, 4000)
        on = external_sort_table(
            table, spec, SortConfig(run_threshold=700), mkdir(tmp_path, "on")
        )
        off = external_sort_table(
            table,
            spec,
            SortConfig(run_threshold=700, compress_keys=False),
            mkdir(tmp_path, "off"),
        )
        assert_byte_identical(on, off)

    def test_external_scalar_merge(self, rng, tmp_path):
        table = mixed_table(rng, 2500)
        spec = "a DESC NULLS FIRST, s"
        on = external_sort_table(
            table,
            spec,
            SortConfig(run_threshold=600, use_vector_kernels=False),
            mkdir(tmp_path, "on"),
        )
        off = external_sort_table(
            table,
            spec,
            SortConfig(
                run_threshold=600,
                use_vector_kernels=False,
                compress_keys=False,
            ),
            mkdir(tmp_path, "off"),
        )
        assert_byte_identical(on, off)

    def test_all_null_key_column_full_pipelines(self, rng, tmp_path):
        table = mixed_table(rng, 1500, all_null_column=True)
        spec = "a NULLS FIRST, s DESC"
        in_memory = sort_table(table, spec, SortConfig(run_threshold=400))
        external = external_sort_table(
            table, spec, SortConfig(run_threshold=400), str(tmp_path)
        )
        uncompressed = sort_table(
            table, spec, SortConfig(compress_keys=False)
        )
        assert_byte_identical(in_memory, uncompressed)
        assert external.equals(uncompressed)

    @pytest.mark.skipif(
        not parallel_platform_supported(),
        reason="platform lacks fork/POSIX shared memory",
    )
    @pytest.mark.parametrize("spec", SPECS)
    def test_parallel_pipeline(self, rng, spec):
        table = mixed_table(rng, 5000)
        parallel = sort_table(
            table,
            spec,
            SortConfig(
                run_threshold=1500,
                num_workers=2,
                parallel_morsel_rows=400,
            ),
        )
        serial_off = sort_table(
            table, spec, SortConfig(run_threshold=1500, compress_keys=False)
        )
        assert_byte_identical(parallel, serial_off)


class TestKeyCarriedExternal:
    def int_table(self, rng, n):
        return Table.from_pydict(
            {
                "a": [int(v) for v in rng.integers(0, 150, n)],
                "b": [
                    None if v % 11 == 0 else int(v)
                    for v in rng.integers(-1000, 1000, n)
                ],
            }
        )

    def test_eligibility(self, rng):
        ints = self.int_table(rng, 10)
        assert key_carried_eligible(
            ints.schema, SortSpec.of("a", "b DESC")
        )
        # A non-key column, a float, or a string breaks eligibility.
        assert not key_carried_eligible(ints.schema, SortSpec.of("a"))
        mixed = mixed_table(rng, 10)
        assert not key_carried_eligible(
            mixed.schema, SortSpec.of("a", "s", "f", "seq")
        )

    def test_spills_keys_only_and_matches(self, rng, tmp_path):
        table = self.int_table(rng, 6000)
        spec = SortSpec.of("a", "b DESC NULLS FIRST")
        spilled = {}
        results = {}
        for label, compress in (("on", True), ("off", False)):
            with ExternalSortOperator(
                table.schema,
                spec,
                SortConfig(run_threshold=1000, compress_keys=compress),
                mkdir(tmp_path, label),
            ) as op:
                for chunk in chunk_table(table, 500):
                    op.sink(chunk)
                spilled[label] = op.spilled_bytes
                results[label] = op.finalize()
            if compress:
                assert op.stats.key_carried_runs == op.stats.runs_generated
                for run in op._runs:
                    assert run.row_width == 0
                    assert run.heap_bytes == 0
        # Value-level equality: key-carried NULL rows decode with a zero
        # filler, so raw data bytes under NULL slots may differ.
        assert results["on"].equals(results["off"])
        assert results["on"].equals(reference_sort(table, spec))
        assert spilled["on"] < spilled["off"] / 2

    def test_decode_key_table_round_trip(self, rng):
        table = self.int_table(rng, 500)
        spec = SortSpec.of("a DESC", "b NULLS LAST")
        layout = build_compressed_layout(table, spec)
        keys = normalize_keys(table, spec, layout=layout)
        decoded = decode_key_table(keys.matrix, layout, table.schema)
        assert decoded.equals(table)


class TestStatsCounters:
    def test_width_counters_report_compression(self, rng):
        table = mixed_table(rng, 2000)
        config = SortConfig(run_threshold=600)
        op = SortOperator(table.schema, SortSpec.of("a", "s"), config)
        for chunk in chunk_table(table, 300):
            op.sink(chunk)
        op.finalize()
        assert 0 < op.stats.key_width_used < op.stats.key_width_full

    def test_vector_path_counters_record_dispatch(self, rng):
        table = mixed_table(rng, 2000)
        op = SortOperator(
            table.schema, SortSpec.of("a"), SortConfig(run_threshold=600)
        )
        for chunk in chunk_table(table, 300):
            op.sink(chunk)
        op.finalize()
        paths = op.stats.vector_sort_paths
        assert sum(paths.values()) == op.stats.runs_generated
        # One-byte compressed key: every run sorts via the 1-word argsort.
        assert paths == {"argsort-1word": op.stats.runs_generated}
        assert op.stats.vector_sort_reasons == {
            "single-word": op.stats.runs_generated
        }

    def test_uncompressed_layout_matches_legacy_builder(self, rng):
        # compress_keys=False must preserve the seed layout bit-for-bit.
        table = mixed_table(rng, 300)
        spec = SortSpec.of("a DESC NULLS FIRST", "s")
        legacy = normalize_keys(table, spec)
        explicit = normalize_keys(
            table, spec, layout=build_layout(table, spec)
        )
        assert legacy.matrix.tobytes() == explicit.matrix.tobytes()
        assert all(
            segment.mode == MODE_PLAIN for segment in legacy.layout.segments
        )
