"""Property-based oracle tests: every pipeline vs. a Python tuple-key sort.

The oracle builds, per row, an actual Python *tuple key* (NULL rank,
NaN rank, possibly direction-reversed value) whose plain ``sorted()``
order is the ORDER BY semantics of :mod:`repro.types.sortspec` --
including NULLS FIRST/LAST placement (independent of direction) and
NaN-after-all-floats (before, under DESC).  Because ``sorted()`` is
stable, the oracle also pins tie order to input order, which every
pipeline reproduces via the row-id key suffix.

Each seed-deterministic random table is then pushed through the
in-memory operator (vector kernels on and off), the spilling external
operator, the parallel (multi-core) configuration, and Top-N, and each
result must match the oracle byte for byte.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from test_external_kway import assert_byte_identical
from repro.sort.external import external_sort_table
from repro.sort.operator import SortConfig, sort_table
from repro.sort.parallel_exec import parallel_platform_supported
from repro.sort.topn import TopNOperator
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec


class _Reversed:
    """Wraps a comparable so ``sorted`` orders it descending."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        # Needed so tuple comparison falls through to later sort keys
        # when this key ties.
        return self.value == other.value


def oracle_order(table: Table, spec: SortSpec) -> np.ndarray:
    """Row permutation from ``sorted()`` over Python tuple keys."""
    key_indices = [table.schema.index_of(k.column) for k in spec.keys]
    rows = [table.row(i) for i in range(table.num_rows)]

    def tuple_key(index: int):
        parts = []
        for col, key in zip(key_indices, spec.keys):
            value = rows[index][col]
            if value is None:
                # NULL placement ignores direction; the inner slot is
                # never compared against a non-NULL row's (disjoint rank).
                parts.append((0 if key.nulls_first else 1, 0))
                continue
            if isinstance(value, float) and math.isnan(value):
                inner = (1, 0.0)  # after every float, ascending
            else:
                inner = (0, value)
            if key.descending:
                inner = _Reversed(inner)
            parts.append((1 if key.nulls_first else 0, inner))
        return tuple(parts)

    order = sorted(range(table.num_rows), key=tuple_key)
    return np.asarray(order, dtype=np.int64)


def oracle_sort(table: Table, spec: SortSpec) -> Table:
    if table.num_rows == 0:
        return table
    return table.take(oracle_order(table, spec))


def random_table(rng: np.random.Generator, n: int) -> Table:
    """Ints, strings, floats; NULLs in all three; NaNs among the floats."""
    ints = rng.integers(-40, 40, max(n, 1))
    strs = rng.integers(0, 25, max(n, 1))
    floats = rng.uniform(-10, 10, max(n, 1))
    nan_mask = rng.random(max(n, 1)) < 0.15
    null_mask = rng.random((3, max(n, 1))) < 0.12
    return Table.from_pydict(
        {
            "i": [
                None if null_mask[0][k] else int(ints[k]) for k in range(n)
            ],
            "s": [
                None if null_mask[1][k] else f"v{strs[k]:02d}"
                for k in range(n)
            ],
            "f": [
                None
                if null_mask[2][k]
                else (float("nan") if nan_mask[k] else float(floats[k]))
                for k in range(n)
            ],
            "row_id": list(range(n)),
        }
    )


SPECS = [
    "i",
    "i DESC",
    "f",
    "f DESC NULLS FIRST",
    "s NULLS FIRST, i DESC",
    "f DESC, s, i NULLS FIRST",
]

SIZES = [0, 1, 2, 700, 1500]


@pytest.mark.parametrize("spec_text", SPECS)
@pytest.mark.parametrize("size", SIZES)
def test_in_memory_matches_oracle(spec_text, size):
    rng = np.random.default_rng(hash((spec_text, size)) % (1 << 32))
    table = random_table(rng, size)
    spec = SortSpec.of(*[p.strip() for p in spec_text.split(",")])
    expected = oracle_sort(table, spec)
    for use_kernels in (True, False):
        result = sort_table(
            table,
            spec,
            SortConfig(run_threshold=500, use_vector_kernels=use_kernels),
        )
        assert_byte_identical(expected, result)


@pytest.mark.parametrize("spec_text", ["i", "f DESC, s", "s NULLS FIRST, f"])
def test_external_matches_oracle(tmp_path, spec_text):
    rng = np.random.default_rng(hash(spec_text) % (1 << 32))
    table = random_table(rng, 1400)
    spec = SortSpec.of(*[p.strip() for p in spec_text.split(",")])
    expected = oracle_sort(table, spec)
    result = external_sort_table(
        table, spec, SortConfig(run_threshold=400), str(tmp_path)
    )
    assert_byte_identical(expected, result)


@pytest.mark.skipif(
    not parallel_platform_supported(),
    reason="platform lacks fork/POSIX shared memory",
)
@pytest.mark.parametrize("spec_text", ["i DESC", "f, s DESC"])
def test_parallel_matches_oracle(spec_text):
    rng = np.random.default_rng(hash(spec_text) % (1 << 32))
    table = random_table(rng, 1600)
    spec = SortSpec.of(*[p.strip() for p in spec_text.split(",")])
    expected = oracle_sort(table, spec)
    result = sort_table(
        table,
        spec,
        SortConfig(
            run_threshold=800, num_workers=2, parallel_morsel_rows=300
        ),
    )
    assert_byte_identical(expected, result)


@pytest.mark.parametrize("limit,offset", [(10, 0), (25, 5), (1000, 0), (7, 3)])
def test_topn_matches_oracle_prefix(limit, offset):
    rng = np.random.default_rng(limit * 100 + offset)
    table = random_table(rng, 900)
    spec = SortSpec.of("f DESC", "i")
    expected = oracle_sort(table, spec).slice(
        min(offset, table.num_rows),
        min(offset + limit, table.num_rows),
    )
    operator = TopNOperator(table.schema, spec, limit, offset)
    for chunk in chunk_table(table, 128):
        operator.sink(chunk)
    assert_byte_identical(expected, operator.finalize())


def test_oracle_agrees_with_reference_sort():
    """The tuple-key oracle and the cmp-based reference must coincide."""
    from conftest import reference_sort

    rng = np.random.default_rng(99)
    table = random_table(rng, 400)
    spec = SortSpec.of("f DESC NULLS FIRST", "s", "i DESC")
    assert_byte_identical(
        reference_sort(table, spec), oracle_sort(table, spec)
    )


# --------------------------------------------------------------------- #
# Scenario-parameterized differential suite: every workload generator
# in the catalog, through every sort path, against the tuple-key oracle.
# --------------------------------------------------------------------- #

from repro.sort.incremental import IncrementalSorter  # noqa: E402
from repro.workloads.scenarios import SCENARIOS  # noqa: E402

SCENARIO_ROWS = 1200
SCENARIO_SEED = 23


def _scenario_case(name: str):
    scenario = SCENARIOS[name]
    table = scenario.table(SCENARIO_ROWS, seed=SCENARIO_SEED)
    spec = SortSpec.of(*[p.strip() for p in scenario.order_by.split(",")])
    return table, spec


def _assert_oracle(expected: Table, actual: Table, name: str, path: str):
    """Byte identity, re-raised with the reproduction coordinates."""
    try:
        assert_byte_identical(expected, actual)
    except AssertionError as exc:
        raise AssertionError(
            f"scenario {name!r} path {path!r} diverged from the oracle "
            f"(rows={SCENARIO_ROWS} seed={SCENARIO_SEED}): {exc}"
        ) from exc


@pytest.mark.parametrize("use_kernels", [True, False])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_in_memory_matches_oracle(name, use_kernels):
    table, spec = _scenario_case(name)
    expected = oracle_sort(table, spec)
    result = sort_table(
        table,
        spec,
        SortConfig(run_threshold=500, use_vector_kernels=use_kernels),
    )
    _assert_oracle(
        expected, result, name, f"in_memory(kernels={use_kernels})"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_external_matches_oracle(tmp_path, name):
    table, spec = _scenario_case(name)
    expected = oracle_sort(table, spec)
    result = external_sort_table(
        table, spec, SortConfig(run_threshold=400), str(tmp_path)
    )
    _assert_oracle(expected, result, name, "external")


@pytest.mark.skipif(
    not parallel_platform_supported(),
    reason="platform lacks fork/POSIX shared memory",
)
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_parallel_matches_oracle(name):
    table, spec = _scenario_case(name)
    expected = oracle_sort(table, spec)
    result = sort_table(
        table,
        spec,
        SortConfig(
            run_threshold=600, num_workers=2, parallel_morsel_rows=300
        ),
    )
    _assert_oracle(expected, result, name, "parallel")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_incremental_matches_oracle(name):
    table, spec = _scenario_case(name)
    expected = oracle_sort(table, spec)
    sorter = IncrementalSorter(table.schema, spec, compact_threshold=3)
    step = max(1, table.num_rows // 5)
    for start in range(0, table.num_rows, step):
        sorter.insert(table.slice(start, min(start + step, table.num_rows)))
    _assert_oracle(expected, sorter.view(), name, "incremental")


def _value_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
    return a == b


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_topn_matches_oracle_prefix(name):
    # Value-level comparison: Top-N rebuilds its result rows, so bytes
    # under NULL positions are the canonical sentinels rather than the
    # generator's (the values, including NULLness, must still agree).
    table, spec = _scenario_case(name)
    limit, offset = 40, 5
    expected = oracle_sort(table, spec).slice(offset, offset + limit)
    operator = TopNOperator(table.schema, spec, limit, offset)
    for chunk in chunk_table(table, 256):
        operator.sink(chunk)
    actual = operator.finalize()
    assert actual.num_rows == expected.num_rows
    for i in range(expected.num_rows):
        left, right = expected.row(i), actual.row(i)
        assert all(
            _value_equal(a, b) for a, b in zip(left, right)
        ), (
            f"scenario {name!r} path 'topn' row {i} diverged "
            f"(rows={SCENARIO_ROWS} seed={SCENARIO_SEED}): "
            f"{left!r} != {right!r}"
        )
