"""Tests for the logical type system."""

import numpy as np
import pytest

from repro.errors import TypeError_
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    VARCHAR,
    type_for_numpy_dtype,
    type_from_name,
)


class TestDataTypeMetadata:
    def test_integer_width(self):
        assert INTEGER.fixed_width == 4
        assert INTEGER.is_signed and not INTEGER.is_float

    def test_bigint_width(self):
        assert BIGINT.fixed_width == 8

    def test_smallint_width(self):
        assert SMALLINT.fixed_width == 2

    def test_float_flags(self):
        assert FLOAT.is_float and not FLOAT.is_signed
        assert FLOAT.fixed_width == 4

    def test_double_width(self):
        assert DOUBLE.fixed_width == 8 and DOUBLE.is_float

    def test_date_is_int32(self):
        assert DATE.fixed_width == 4 and DATE.is_signed

    def test_boolean_unsigned_byte(self):
        assert BOOLEAN.fixed_width == 1 and not BOOLEAN.is_signed

    def test_varchar_variable_width(self):
        assert VARCHAR.is_variable_width
        assert VARCHAR.fixed_width is None

    def test_names(self):
        assert INTEGER.name == "INTEGER"
        assert str(VARCHAR) == "VARCHAR"


class TestTypeLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("integer", INTEGER),
            ("INT", INTEGER),
            ("int4", INTEGER),
            ("BIGINT", BIGINT),
            ("int8", BIGINT),
            ("REAL", FLOAT),
            ("double", DOUBLE),
            ("text", VARCHAR),
            ("STRING", VARCHAR),
            ("bool", BOOLEAN),
            ("date", DATE),
        ],
    )
    def test_from_name(self, name, expected):
        assert type_from_name(name) is expected

    def test_unknown_name_raises(self):
        with pytest.raises(TypeError_):
            type_from_name("DECIMALISH")

    def test_from_numpy_dtype(self):
        assert type_for_numpy_dtype(np.dtype(np.int32)) is INTEGER
        assert type_for_numpy_dtype(np.dtype(np.float32)) is FLOAT
        assert type_for_numpy_dtype(np.dtype(object)) is VARCHAR

    def test_from_numpy_unknown_raises(self):
        with pytest.raises(TypeError_):
            type_for_numpy_dtype(np.dtype(np.complex128))


class TestValidation:
    def test_validate_accepts_matching(self):
        INTEGER.validate_array(np.zeros(3, dtype=np.int32))

    def test_validate_rejects_wrong_dtype(self):
        with pytest.raises(TypeError_):
            INTEGER.validate_array(np.zeros(3, dtype=np.int64))

    def test_varchar_requires_object_array(self):
        with pytest.raises(TypeError_):
            VARCHAR.validate_array(np.zeros(3, dtype=np.int32))
        VARCHAR.validate_array(np.array(["a", "b"], dtype=object))
