"""Tests for the instrumented sorts: correctness on every layout/approach
combination plus the micro-architectural shape claims of the paper.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.machine import Machine
from repro.simsort.harness import run_micro
from repro.simsort.layouts import (
    ColumnarLayout,
    NormalizedKeyLayout,
    RowLayout,
)
from repro.workloads.distributions import (
    correlated_distribution,
    generate_key_columns,
    random_distribution,
)

CONFIGS = [
    ("columnar", "tuple"),
    ("columnar", "subsort"),
    ("row", "tuple"),
    ("row", "subsort"),
    ("normalized", "memcmp"),
    ("normalized", "radix"),
    ("normalized", "radix-lsd"),
    ("normalized", "radix-msd"),
]


def data(n=192, k=3, p=0.5, seed=9):
    dist = correlated_distribution(p) if p is not None else random_distribution()
    return generate_key_columns(dist, n, k, seed)


class TestLayouts:
    def test_columnar_reads(self):
        machine = Machine()
        layout = ColumnarLayout(machine, data(8, 2))
        row = layout.read_index(3)
        value = layout.read_value(1, row)
        assert value == int(layout.columns[1][row])
        assert machine.snapshot().reads == 2

    def test_row_layout_embeds_row_id(self):
        machine = Machine()
        layout = RowLayout(machine, data(8, 2))
        assert layout.extract_order().tolist() == list(range(8))

    def test_row_swap_moves_whole_rows(self):
        machine = Machine()
        layout = RowLayout(machine, data(8, 2))
        before0 = layout.key_tuple(0)
        before1 = layout.key_tuple(1)
        layout.swap_rows(0, 1)
        assert layout.key_tuple(0) == before1
        assert layout.key_tuple(1) == before0

    def test_normalized_memcmp_matches_tuple_order(self):
        machine = Machine()
        values = data(32, 3)
        layout = NormalizedKeyLayout(machine, values)
        for i in range(0, 32, 5):
            for j in range(0, 32, 7):
                expected = (
                    tuple(values[i]) + (i,)
                ) < (tuple(values[j]) + (j,))
                assert layout.memcmp_less(i, j) == expected

    def test_normalized_key_width(self):
        machine = Machine()
        layout = NormalizedKeyLayout(machine, data(4, 3))
        assert layout.key_width == 3 * 4 + 4  # columns + row id

    def test_aux_requires_ensure(self):
        machine = Machine()
        layout = NormalizedKeyLayout(machine, data(4, 1))
        with pytest.raises(SimulationError):
            _ = layout.aux


class TestCorrectnessGrid:
    """Every (layout, approach, algorithm) sorts correctly (run_micro
    verifies against numpy internally and raises otherwise)."""

    @pytest.mark.parametrize("layout,approach", CONFIGS)
    def test_introsort_grid(self, layout, approach):
        run_micro(data(), layout, approach, "introsort")

    @pytest.mark.parametrize(
        "layout,approach",
        [c for c in CONFIGS if c[1] in ("tuple", "subsort", "memcmp")],
    )
    def test_mergesort_grid(self, layout, approach):
        run_micro(data(), layout, approach, "mergesort")

    @pytest.mark.parametrize(
        "layout,approach",
        [c for c in CONFIGS if c[1] in ("tuple", "subsort", "memcmp")],
    )
    def test_pdqsort_grid(self, layout, approach):
        run_micro(data(), layout, approach, "pdqsort")

    @pytest.mark.parametrize("layout", ["columnar", "row"])
    def test_dynamic_comparator_grid(self, layout):
        run_micro(data(), layout, "tuple", "introsort", dynamic=True)

    @pytest.mark.parametrize("pattern", ["sorted", "reversed", "equal"])
    @pytest.mark.parametrize("approach", ["memcmp", "radix"])
    def test_adversarial_patterns(self, pattern, approach):
        n = 128
        if pattern == "sorted":
            values = np.arange(n, dtype=np.uint32).reshape(n, 1)
        elif pattern == "reversed":
            values = np.arange(n, 0, -1, dtype=np.uint32).reshape(n, 1)
        else:
            values = np.full((n, 1), 7, dtype=np.uint32)
        algorithm = "pdqsort" if approach == "memcmp" else "introsort"
        run_micro(values, "normalized", approach, algorithm)

    def test_single_key_column(self):
        run_micro(data(k=1), "columnar", "subsort")

    def test_empty_input(self):
        values = np.zeros((0, 2), dtype=np.uint32)
        result = run_micro(values, "row", "tuple")
        assert result.order.tolist() == []

    def test_unknown_layout(self):
        with pytest.raises(SimulationError):
            run_micro(data(), "diagonal", "tuple")

    def test_unsupported_combo(self):
        with pytest.raises(SimulationError):
            run_micro(data(), "columnar", "radix")


class TestPaperShapes:
    """The micro-architectural claims of Tables II/III and Figures 4-10."""

    def test_row_has_order_of_magnitude_fewer_misses(self):
        values = generate_key_columns(correlated_distribution(0.5), 4096, 4)
        columnar = run_micro(values, "columnar", "tuple")
        row = run_micro(values, "row", "tuple")
        assert columnar.counters.l1_misses > 3 * row.counters.l1_misses

    def test_subsort_fewer_branch_misses_on_correlated(self):
        values = generate_key_columns(correlated_distribution(0.5), 1024, 4)
        tuple_run = run_micro(values, "columnar", "tuple")
        subsort_run = run_micro(values, "columnar", "subsort")
        assert (
            subsort_run.counters.branch_mispredictions
            < tuple_run.counters.branch_mispredictions
        )

    def test_identical_comparisons_across_layouts_random(self):
        values = generate_key_columns(random_distribution(), 512, 2)
        columnar = run_micro(values, "columnar", "tuple")
        row = run_micro(values, "row", "tuple")
        assert columnar.counters.comparisons == row.counters.comparisons

    def test_dynamic_comparator_slower(self):
        values = generate_key_columns(correlated_distribution(0.5), 512, 4)
        static = run_micro(values, "row", "tuple", dynamic=False)
        dynamic = run_micro(values, "row", "tuple", dynamic=True)
        assert dynamic.cycles > 1.4 * static.cycles

    def test_normalized_keys_recover_static_performance(self):
        values = generate_key_columns(correlated_distribution(0.5), 1024, 4)
        static = run_micro(values, "row", "tuple")
        normalized = run_micro(values, "normalized", "memcmp")
        dynamic = run_micro(values, "row", "tuple", dynamic=True)
        assert normalized.cycles < dynamic.cycles
        assert normalized.cycles < 1.3 * static.cycles

    def test_radix_beats_pdq_on_random(self):
        values = generate_key_columns(random_distribution(), 1024, 1)
        pdq = run_micro(values, "normalized", "memcmp", "pdqsort")
        radix = run_micro(values, "normalized", "radix")
        assert radix.cycles < pdq.cycles

    def test_radix_branchless_but_more_misses(self):
        values = generate_key_columns(correlated_distribution(0.5), 4096, 4)
        pdq = run_micro(values, "normalized", "memcmp", "pdqsort")
        radix = run_micro(values, "normalized", "radix")
        assert (
            radix.counters.branch_mispredictions
            < pdq.counters.branch_mispredictions / 4
        )
        assert radix.counters.l1_misses > pdq.counters.l1_misses

    def test_subsort_scans_cause_extra_misses_on_rows(self):
        values = generate_key_columns(correlated_distribution(0.5), 1024, 4)
        tuple_run = run_micro(values, "row", "tuple")
        subsort_run = run_micro(values, "row", "subsort")
        assert (
            subsort_run.counters.l1_misses >= tuple_run.counters.l1_misses
        )
