"""Tests for per-type order-preserving encodings (paper, Figure 7)."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KeyEncodingError
from repro.keys.encoding import (
    encode_fixed_column,
    encode_float,
    encode_signed,
    encode_string,
    encode_string_column,
    encode_unsigned,
    invert_bytes,
)
from repro.types.datatypes import DOUBLE, FLOAT, INTEGER, SMALLINT


class TestUnsigned:
    def test_big_endian(self):
        assert encode_unsigned(0x01020304, 4) == b"\x01\x02\x03\x04"

    def test_out_of_range(self):
        with pytest.raises(KeyEncodingError):
            encode_unsigned(1 << 32, 4)
        with pytest.raises(KeyEncodingError):
            encode_unsigned(-1, 4)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_order_preserved(self, a, b):
        assert (a < b) == (encode_unsigned(a, 4) < encode_unsigned(b, 4))


class TestSigned:
    def test_sign_bit_flip(self):
        # -1 must sort before 0 and 0 before 1, byte-wise.
        assert encode_signed(-1, 4) < encode_signed(0, 4) < encode_signed(1, 4)

    def test_extremes(self):
        low = encode_signed(-(2**31), 4)
        high = encode_signed(2**31 - 1, 4)
        assert low == b"\x00\x00\x00\x00"
        assert high == b"\xff\xff\xff\xff"

    def test_out_of_range(self):
        with pytest.raises(KeyEncodingError):
            encode_signed(2**31, 4)

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    def test_order_preserved(self, a, b):
        assert (a < b) == (encode_signed(a, 4) < encode_signed(b, 4))

    @given(st.integers(-(2**15), 2**15 - 1), st.integers(-(2**15), 2**15 - 1))
    def test_order_preserved_16bit(self, a, b):
        assert (a < b) == (encode_signed(a, 2) < encode_signed(b, 2))


class TestFloat:
    def test_negative_before_positive(self):
        assert encode_float(-1.0, 4) < encode_float(1.0, 4)

    def test_negative_order_inverted_bits(self):
        assert encode_float(-2.0, 4) < encode_float(-1.0, 4)

    def test_zero_canonicalization(self):
        assert encode_float(-0.0, 8) == encode_float(0.0, 8)

    def test_nan_canonical_and_last(self):
        nan1 = struct.unpack(">f", b"\x7f\xc0\x00\x01")[0]
        assert encode_float(nan1, 4) == encode_float(math.nan, 4)
        assert encode_float(math.inf, 4) < encode_float(math.nan, 4)

    def test_infinities(self):
        assert encode_float(-math.inf, 8) < encode_float(-1e308, 8)
        assert encode_float(1e308, 8) < encode_float(math.inf, 8)

    def test_bad_width(self):
        with pytest.raises(KeyEncodingError):
            encode_float(1.0, 2)

    @given(
        st.floats(allow_nan=False, width=32),
        st.floats(allow_nan=False, width=32),
    )
    def test_order_preserved_f32(self, a, b):
        enc_a, enc_b = encode_float(a, 4), encode_float(b, 4)
        if a == b:  # covers -0.0 == 0.0
            assert enc_a == enc_b
        else:
            assert (a < b) == (enc_a < enc_b)

    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_order_preserved_f64(self, a, b):
        enc_a, enc_b = encode_float(a, 8), encode_float(b, 8)
        if a == b:
            assert enc_a == enc_b
        else:
            assert (a < b) == (enc_a < enc_b)


class TestString:
    def test_padding(self):
        assert encode_string("GERMANY", 11) == b"GERMANY\x00\x00\x00\x00"

    def test_truncation(self):
        assert encode_string("NETHERLANDS", 4) == b"NETH"

    def test_bad_prefix(self):
        with pytest.raises(KeyEncodingError):
            encode_string("x", 0)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_order_preserved_when_fits(self, a, b):
        # With a prefix large enough for both, byte order == UTF-8 order.
        width = max(len(a.encode()), len(b.encode()), 1)
        enc_a = encode_string(a, width)
        enc_b = encode_string(b, width)
        assert (a.encode() < b.encode()) == (enc_a < enc_b) or a.encode() == b.encode()


class TestInvertBytes:
    def test_inverts(self):
        assert invert_bytes(b"\x00\xff\x10") == b"\xff\x00\xef"

    @given(st.binary(min_size=1, max_size=16), st.binary(min_size=1, max_size=16))
    def test_inversion_reverses_order(self, a, b):
        if len(a) == len(b) and a != b:
            assert (a < b) == (invert_bytes(a) > invert_bytes(b))


class TestVectorizedEncoders:
    @pytest.mark.parametrize(
        "dtype,np_dtype,lo,hi",
        [
            (INTEGER, np.int32, -(2**31), 2**31 - 1),
            (SMALLINT, np.int16, -(2**15), 2**15 - 1),
        ],
    )
    def test_matches_scalar_signed(self, rng, dtype, np_dtype, lo, hi):
        values = rng.integers(lo, hi, size=64).astype(np_dtype)
        matrix = encode_fixed_column(values, dtype)
        for i, v in enumerate(values):
            assert matrix[i].tobytes() == encode_signed(int(v), dtype.fixed_width)

    def test_matches_scalar_float32(self, rng):
        values = rng.standard_normal(64).astype(np.float32)
        values[0] = np.nan
        values[1] = -0.0
        values[2] = np.inf
        matrix = encode_fixed_column(values, FLOAT)
        for i, v in enumerate(values):
            assert matrix[i].tobytes() == encode_float(float(v), 4)

    def test_matches_scalar_float64(self, rng):
        values = rng.standard_normal(32)
        matrix = encode_fixed_column(values, DOUBLE)
        for i, v in enumerate(values):
            assert matrix[i].tobytes() == encode_float(float(v), 8)

    def test_string_column(self):
        values = np.array(["GERMANY", "NETHERLANDS", ""], dtype=object)
        matrix = encode_string_column(values, 11)
        assert matrix[0].tobytes() == encode_string("GERMANY", 11)
        assert matrix[1].tobytes() == b"NETHERLANDS"
        assert matrix[2].tobytes() == b"\x00" * 11

    def test_string_column_utf8_truncation(self):
        values = np.array(["héllo"], dtype=object)
        matrix = encode_string_column(values, 3)
        assert matrix[0].tobytes() == "héllo".encode("utf-8")[:3]

    def test_varchar_via_fixed_raises(self):
        from repro.types.datatypes import VARCHAR

        with pytest.raises(KeyEncodingError):
            encode_fixed_column(np.array(["a"], dtype=object), VARCHAR)
