"""Tests for ColumnVector: typed columns with validity masks."""

import numpy as np
import pytest

from repro.errors import TypeError_
from repro.table.column import ColumnVector
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    VARCHAR,
)


class TestConstruction:
    def test_from_values_infers_integer(self):
        col = ColumnVector.from_values([1, 2, None])
        assert col.dtype is INTEGER
        assert col.null_count == 1

    def test_from_values_infers_bigint_on_overflow(self):
        col = ColumnVector.from_values([1, 2**40])
        assert col.dtype is BIGINT

    def test_from_values_infers_double(self):
        assert ColumnVector.from_values([1.5, 2]).dtype is DOUBLE

    def test_from_values_infers_varchar(self):
        assert ColumnVector.from_values(["a", None]).dtype is VARCHAR

    def test_from_values_infers_boolean(self):
        assert ColumnVector.from_values([True, False]).dtype is BOOLEAN

    def test_all_null_defaults_to_integer(self):
        assert ColumnVector.from_values([None, None]).dtype is INTEGER

    def test_mixed_types_raise(self):
        with pytest.raises(TypeError_):
            ColumnVector.from_values([1, "a"])

    def test_from_numpy(self):
        col = ColumnVector.from_numpy(np.arange(4, dtype=np.int32))
        assert col.dtype is INTEGER and not col.has_nulls

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError_):
            ColumnVector(INTEGER, np.zeros(3, dtype=np.float64))

    def test_2d_rejected(self):
        with pytest.raises(TypeError_):
            ColumnVector(INTEGER, np.zeros((2, 2), dtype=np.int32))

    def test_validity_shape_mismatch_rejected(self):
        with pytest.raises(TypeError_):
            ColumnVector(
                INTEGER,
                np.zeros(3, dtype=np.int32),
                np.ones(4, dtype=bool),
            )


class TestAccessors:
    def test_value_returns_python_types(self):
        col = ColumnVector.from_values([1, None])
        assert col.value(0) == 1 and isinstance(col.value(0), int)
        assert col.value(1) is None

    def test_float_value_is_python_float(self):
        col = ColumnVector.from_values([1.5])
        assert isinstance(col.value(0), float)

    def test_varchar_value_is_str(self):
        col = ColumnVector.from_values(["hello"])
        assert col.value(0) == "hello"

    def test_boolean_value_is_bool(self):
        col = ColumnVector.from_values([True])
        assert col.value(0) is True

    def test_to_pylist_round_trip(self):
        values = [3, None, 1, None, 2]
        assert ColumnVector.from_values(values).to_pylist() == values

    def test_null_count(self):
        col = ColumnVector.from_values([None, 1, None])
        assert col.null_count == 2 and col.has_nulls


class TestTransformations:
    def test_take_reorders_values_and_nulls(self):
        col = ColumnVector.from_values([10, None, 30])
        taken = col.take(np.array([2, 0, 1]))
        assert taken.to_pylist() == [30, 10, None]

    def test_slice(self):
        col = ColumnVector.from_values([1, 2, 3, 4])
        assert col.slice(1, 3).to_pylist() == [2, 3]

    def test_concat(self):
        a = ColumnVector.from_values([1, None])
        b = ColumnVector.from_values([3])
        assert a.concat(b).to_pylist() == [1, None, 3]

    def test_concat_type_mismatch_raises(self):
        with pytest.raises(TypeError_):
            ColumnVector.from_values([1]).concat(
                ColumnVector.from_values(["a"])
            )

    def test_equals_ignores_filler_under_nulls(self):
        a = ColumnVector(
            INTEGER,
            np.array([1, 99], dtype=np.int32),
            np.array([True, False]),
        )
        b = ColumnVector(
            INTEGER,
            np.array([1, 42], dtype=np.int32),
            np.array([True, False]),
        )
        assert a.equals(b)

    def test_equals_detects_value_difference(self):
        a = ColumnVector.from_values([1, 2])
        b = ColumnVector.from_values([1, 3])
        assert not a.equals(b)

    def test_equals_detects_null_position_difference(self):
        a = ColumnVector.from_values([1, None])
        b = ColumnVector.from_values([None, 1])
        assert not a.equals(b)

    def test_equals_nan_aware(self):
        a = ColumnVector.from_values([float("nan"), 1.0])
        b = ColumnVector.from_values([float("nan"), 1.0])
        assert a.equals(b)
