"""Cross-checks of the block-streaming external k-way merge.

The kernel path (frontier blocks + cutoff + one lexsort per round) must be
byte-identical to the scalar tournament-heap fallback on every workload the
external sort accepts, and its working set must stay bounded by
``k * merge_block_rows`` key rows no matter the input size.
"""

import numpy as np
import pytest

from conftest import reference_sort
from repro.sort.external import ExternalSortOperator, external_sort_table
from repro.sort.kernels import KWayBlockStats, kway_merge_blocks
from repro.sort.kway import cascade_merge_indices, kway_merge_indices
from repro.sort.operator import SortConfig, sort_table
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec


def mixed_table(rng, n):
    """Mixed types, heavy key duplication, NULLs in two columns."""
    ints = rng.integers(0, 12, n)
    strings = rng.integers(0, 40, n)
    return Table.from_pydict(
        {
            "a": [None if v % 9 == 0 else int(v) for v in ints],
            "s": [
                None if v % 13 == 0 else f"key{v % 37:02d}" for v in strings
            ],
            "f": [
                float(v) for v in rng.choice([-1.5, 0.0, 2.25, 7.5], n)
            ],
            "seq": list(range(n)),
        }
    )


SPECS = [
    "a",
    "a DESC NULLS FIRST, s",
    "s NULLS FIRST, f DESC",
    "f DESC, a NULLS LAST, s DESC NULLS FIRST",
]


def run_external(
    table, spec, use_vector_kernels, tmp_path, run_threshold,
    merge_block_rows=4096,
):
    operator = ExternalSortOperator(
        table.schema,
        SortSpec.of(*[part.strip() for part in spec.split(",")]),
        SortConfig(
            run_threshold=run_threshold,
            use_vector_kernels=use_vector_kernels,
        ),
        spill_directory=str(tmp_path),
        merge_block_rows=merge_block_rows,
    )
    for chunk in chunk_table(table, 512):
        operator.sink(chunk)
    return operator.finalize(), operator


def assert_byte_identical(left, right):
    """Stronger than Table.equals: exact data bytes and validity masks."""
    assert left.schema.names == right.schema.names
    for name in left.schema.names:
        col_l, col_r = left.column(name), right.column(name)
        assert (col_l.validity == col_r.validity).all(), name
        if col_l.data.dtype == object:
            assert list(col_l.data) == list(col_r.data), name
        else:
            assert col_l.data.tobytes() == col_r.data.tobytes(), name


class TestKernelVsScalarHeap:
    @pytest.mark.parametrize("spec", SPECS)
    def test_randomized_byte_identical(self, rng, tmp_path, spec):
        table = mixed_table(rng, 6000)
        kernel, op_kernel = run_external(table, spec, True, tmp_path, 1000)
        scalar, op_scalar = run_external(table, spec, False, tmp_path, 1000)
        assert op_kernel.stats.runs_generated >= 4
        assert op_kernel.stats.kernel_kway_merges == 1
        assert op_scalar.stats.scalar_kway_merges == 1
        assert_byte_identical(kernel, scalar)

    def test_matches_reference_and_in_memory(self, rng, tmp_path):
        table = mixed_table(rng, 1200)
        spec = SortSpec.of("a NULLS FIRST", "s DESC")
        result, _ = run_external(
            table, "a NULLS FIRST, s DESC", True, tmp_path, 300
        )
        assert result.equals(reference_sort(table, spec))
        assert result.equals(sort_table(table, spec))

    def test_single_run_and_tiny_blocks(self, rng, tmp_path):
        table = mixed_table(rng, 400)
        operator = ExternalSortOperator(
            table.schema,
            SortSpec.of("a", "seq"),
            SortConfig(run_threshold=10_000),
            spill_directory=str(tmp_path),
            merge_block_rows=7,  # force many refill rounds
        )
        for chunk in chunk_table(table, 128):
            operator.sink(chunk)
        result = operator.finalize()
        assert result.equals(sort_table(table, SortSpec.of("a", "seq")))


class TestBoundedMemory:
    def test_frontier_never_exceeds_k_blocks(self, rng, tmp_path):
        table = mixed_table(rng, 8000)
        _, operator = run_external(
            table, "a, s", True, tmp_path, 1000, merge_block_rows=128
        )
        runs = operator.stats.runs_generated
        assert runs >= 4
        bound = runs * operator.merge_block_rows
        assert 0 < operator.stats.kway_peak_frontier_rows <= bound
        # Far below materializing every run's keys at once.
        assert operator.stats.kway_peak_frontier_rows <= bound < table.num_rows

    def test_kernel_counts_refills_and_rounds(self):
        rng = np.random.default_rng(3)
        runs = []
        for _ in range(5):
            matrix = rng.integers(0, 256, size=(1000, 5)).astype(np.uint8)
            matrix = matrix[np.lexsort(tuple(reversed(matrix.T)))]
            runs.append(matrix)

        def blocks(matrix, size=64):
            for start in range(0, len(matrix), size):
                yield matrix[start : start + size]

        stats = KWayBlockStats()
        emitted = sum(
            len(run_ids)
            for run_ids, _ in kway_merge_blocks(
                [blocks(matrix) for matrix in runs], stats
            )
        )
        assert emitted == stats.rows_emitted == 5000
        assert stats.rounds > 1
        assert stats.peak_frontier_rows <= 5 * 64


class TestKernelSmoke:
    def test_spilled_sort_takes_kernel_kway_path(self, rng, tmp_path):
        """Tier-1 smoke: the block-streaming path actually runs."""
        table = mixed_table(rng, 3000)
        result, operator = run_external(table, "a, f DESC", True, tmp_path, 500)
        assert operator.stats.kernel_kway_merges > 0
        assert operator.stats.scalar_kway_merges == 0
        assert operator.stats.kway_rounds > 0
        assert result.num_rows == table.num_rows


class TestKWayMergeIndices:
    def test_matches_cascade(self, rng):
        for width in (3, 9, 17):
            runs = []
            for length in (0, 1, 700, 256, 1024):
                matrix = rng.integers(
                    0, 4, size=(length, width)
                ).astype(np.uint8)  # tiny alphabet => massive duplication
                if length:
                    matrix = matrix[np.lexsort(tuple(reversed(matrix.T)))]
                runs.append(matrix)
            kway = kway_merge_indices(runs, block_rows=100)
            cascade = cascade_merge_indices(runs)
            assert (kway[0] == cascade[0]).all()
            assert (kway[1] == cascade[1]).all()

    def test_empty(self):
        run_ids, row_ids = kway_merge_indices([])
        assert len(run_ids) == 0 and len(row_ids) == 0


class TestSpillFormat:
    def test_contiguous_sections_round_trip(self, rng, tmp_path):
        table = mixed_table(rng, 900)
        operator = ExternalSortOperator(
            table.schema,
            SortSpec.of("a", "s"),
            SortConfig(run_threshold=200),
            spill_directory=str(tmp_path),
        )
        for chunk in chunk_table(table, 128):
            operator.sink(chunk)
        run = operator._runs[0]
        whole_keys = run.read_key_block(0, run.num_rows)
        streamed = np.concatenate(list(run.iter_key_blocks(97)))
        assert (whole_keys == streamed).all()
        assert whole_keys.shape == (run.num_rows, run.key_width)
        rows = run.read_row_block(5, 25)
        assert rows.shape == (20, run.row_width)
        assert (rows == run.read_row_block(0, run.num_rows)[5:25]).all()
        assert len(run.read_heap()) == run.heap_bytes
        # Keys are stored sorted: streamed blocks arrive in memcmp order.
        raw = [whole_keys[i].tobytes() for i in range(run.num_rows)]
        assert raw == sorted(raw)
        operator.finalize()

    def test_phase_timings_recorded(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        _, operator = run_external(table, "a, s", True, tmp_path, 400)
        phases = operator.stats.phase_seconds
        for phase in ("encode", "run_gen", "merge", "spill_io"):
            assert phases.get(phase, 0.0) > 0.0, phase
