"""Tests for DataChunk batching (the vectorized execution unit)."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.table.chunk import (
    VECTOR_SIZE,
    DataChunk,
    chunk_table,
    concat_chunks,
)
from repro.table.table import Table


def make_table(n: int) -> Table:
    return Table.from_numpy(
        {
            "a": np.arange(n, dtype=np.int32),
            "b": (np.arange(n) * 2).astype(np.int32),
        }
    )


class TestChunking:
    def test_default_vector_size(self):
        assert VECTOR_SIZE == 1024

    def test_chunk_sizes(self):
        chunks = list(chunk_table(make_table(2500), vector_size=1000))
        assert [len(c) for c in chunks] == [1000, 1000, 500]

    def test_exact_multiple(self):
        chunks = list(chunk_table(make_table(2048), vector_size=1024))
        assert [len(c) for c in chunks] == [1024, 1024]

    def test_empty_table_yields_one_empty_chunk(self):
        chunks = list(chunk_table(make_table(0)))
        assert len(chunks) == 1 and len(chunks[0]) == 0

    def test_invalid_vector_size(self):
        with pytest.raises(SchemaError):
            list(chunk_table(make_table(5), vector_size=0))

    def test_round_trip(self):
        table = make_table(2500)
        chunks = list(chunk_table(table, vector_size=700))
        assert concat_chunks(chunks).equals(table)

    def test_concat_zero_chunks_raises(self):
        with pytest.raises(SchemaError):
            concat_chunks([])


class TestDataChunk:
    def test_vector_lookup(self):
        chunk = DataChunk.from_table(make_table(5))
        assert chunk.vector("b").to_pylist() == [0, 2, 4, 6, 8]

    def test_to_table(self):
        table = make_table(7)
        assert DataChunk.from_table(table).to_table().equals(table)

    def test_mismatched_vectors_raise(self):
        table = make_table(3)
        with pytest.raises(SchemaError):
            DataChunk(table.schema, list(table.columns[:1]))
