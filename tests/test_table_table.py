"""Tests for the columnar Table."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeError_
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import INTEGER, VARCHAR
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortSpec


class TestConstruction:
    def test_from_pydict(self, small_table):
        assert small_table.num_rows == 5
        assert small_table.num_columns == 3

    def test_from_numpy(self):
        table = Table.from_numpy({"a": np.arange(3, dtype=np.int32)})
        assert table.num_rows == 3

    def test_empty(self):
        schema = Schema.of(("a", INTEGER))
        assert Table.empty(schema).num_rows == 0

    def test_column_count_mismatch_raises(self):
        schema = Schema.of(("a", INTEGER), ("b", INTEGER))
        with pytest.raises(SchemaError):
            Table(schema, [ColumnVector.from_values([1])])

    def test_length_mismatch_raises(self):
        schema = Schema.of(("a", INTEGER), ("b", INTEGER))
        with pytest.raises(SchemaError):
            Table(
                schema,
                [
                    ColumnVector.from_values([1]),
                    ColumnVector.from_values([1, 2]),
                ],
            )

    def test_type_mismatch_raises(self):
        schema = Schema.of(("a", VARCHAR))
        with pytest.raises(TypeError_):
            Table(schema, [ColumnVector.from_values([1])])

    def test_not_null_violation_raises(self):
        schema = Schema((ColumnDef("a", INTEGER, nullable=False),))
        with pytest.raises(TypeError_):
            Table(schema, [ColumnVector.from_values([1, None])])


class TestAccessors:
    def test_row(self, small_table):
        assert small_table.row(0) == ("NETHERLANDS", 1992, 1)
        assert small_table.row(2) == (None, 1990, 3)

    def test_iter_rows(self, small_table):
        rows = list(small_table.iter_rows())
        assert len(rows) == 5

    def test_to_pydict_round_trip(self, small_table):
        data = small_table.to_pydict()
        rebuilt = Table.from_pydict(data)
        assert rebuilt.equals(small_table)

    def test_column_by_name(self, small_table):
        assert small_table.column("c_customer_sk").to_pylist() == [1, 2, 3, 4, 5]


class TestTransformations:
    def test_select(self, small_table):
        projected = small_table.select(["c_customer_sk", "c_birth_year"])
        assert projected.schema.names == ("c_customer_sk", "c_birth_year")

    def test_take(self, small_table):
        taken = small_table.take(np.array([4, 0]))
        assert taken.row(0) == ("BELGIUM", 1968, 5)

    def test_slice(self, small_table):
        part = small_table.slice(1, 3)
        assert part.num_rows == 2
        assert part.row(0) == small_table.row(1)

    def test_concat(self, small_table):
        doubled = small_table.concat(small_table)
        assert doubled.num_rows == 10
        assert doubled.row(5) == small_table.row(0)

    def test_concat_schema_mismatch_raises(self, small_table):
        other = Table.from_pydict({"x": [1]})
        with pytest.raises(SchemaError):
            small_table.concat(other)

    def test_equals_self(self, small_table):
        assert small_table.equals(small_table)

    def test_equals_different_rows(self, small_table):
        assert not small_table.equals(small_table.slice(0, 4))


class TestIsSortedBy:
    def test_sorted_table(self):
        table = Table.from_pydict({"a": [1, 2, 2, 3], "b": [4, 3, 9, 1]})
        assert table.is_sorted_by(SortSpec.of("a"))
        assert not table.is_sorted_by(SortSpec.of("b"))

    def test_multi_key(self):
        table = Table.from_pydict({"a": [1, 1, 2], "b": [2, 1, 0]})
        assert not table.is_sorted_by(SortSpec.of("a", "b"))
        assert table.is_sorted_by(SortSpec.of("a", "b DESC"))

    def test_nulls_respect_placement(self):
        table = Table.from_pydict({"a": [None, 1, 2]})
        assert table.is_sorted_by(SortSpec.of("a NULLS FIRST"))
        assert not table.is_sorted_by(SortSpec.of("a NULLS LAST"))
