"""Tests for binding, the optimizer rules, operators, and end-to-end SQL."""

import numpy as np
import pytest

from conftest import reference_sort
from repro.engine.database import Database
from repro.engine.parallel import PhaseModel, makespan, merge_tree_makespan
from repro.engine.plan import (
    LogicalAggregate,
    LogicalLimit,
    LogicalSort,
    LogicalTopN,
)
from repro.errors import BindError, EngineError, SimulationError
from repro.table.table import Table
from repro.types.sortspec import SortSpec


@pytest.fixture
def db(rng) -> Database:
    database = Database()
    database.register(
        "t",
        Table.from_numpy(
            {
                "a": rng.integers(0, 20, 500).astype(np.int32),
                "b": rng.integers(0, 1000, 500).astype(np.int32),
            }
        ),
    )
    database.register(
        "nullt",
        Table.from_pydict({"x": [3, None, 1, None, 2], "y": [1, 2, 3, 4, 5]}),
    )
    return database


class TestCatalog:
    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT * FROM ghost")

    def test_invalid_name(self, db):
        with pytest.raises(EngineError):
            db.register("not a name", Table.from_pydict({"a": [1]}))

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT nope FROM t")

    def test_unknown_order_column(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT a FROM t ORDER BY nope")


class TestOptimizerRules:
    def test_sort_under_count_is_dropped(self, db):
        plan = db.plan("SELECT count(*) FROM (SELECT a FROM t ORDER BY b) q")
        assert "Sort" not in db.explain(
            "SELECT count(*) FROM (SELECT a FROM t ORDER BY b) q"
        )
        assert isinstance(plan, LogicalAggregate)

    def test_offset_keeps_the_sort(self, db):
        # The paper's trick: OFFSET 1 outmaneuvers the optimizer.
        text = db.explain(
            "SELECT count(*) FROM (SELECT a FROM t ORDER BY b OFFSET 1) q"
        )
        assert "Sort" in text and "Limit" in text

    def test_order_limit_becomes_topn(self, db):
        plan = db.plan("SELECT * FROM t ORDER BY a LIMIT 5")
        assert isinstance(plan, LogicalTopN)

    def test_unoptimized_plan_keeps_sort(self, db):
        plan = db.plan(
            "SELECT count(*) FROM (SELECT a FROM t ORDER BY b) q",
            optimize=False,
        )
        assert isinstance(plan.child.child, LogicalSort)

    def test_limit_without_order_stays_limit(self, db):
        plan = db.plan("SELECT * FROM t LIMIT 5")
        assert isinstance(plan, LogicalLimit)


class TestExecution:
    def test_select_star(self, db):
        assert db.execute("SELECT * FROM t").num_rows == 500

    def test_projection(self, db):
        result = db.execute("SELECT b FROM t")
        assert result.schema.names == ("b",)

    def test_order_by_matches_reference(self, db):
        result = db.execute("SELECT a, b FROM t ORDER BY a DESC, b")
        expected = reference_sort(
            db.table("t"), SortSpec.of("a DESC", "b")
        )
        assert result.equals(expected)

    def test_count_star(self, db):
        result = db.execute("SELECT count(*) FROM t")
        assert result.to_pydict() == {"count_star": [500]}

    def test_paper_benchmark_query(self, db):
        result = db.execute(
            "SELECT count(*) FROM (SELECT a FROM t ORDER BY b OFFSET 1) q"
        )
        assert result.to_pydict() == {"count_star": [499]}

    def test_topn_equals_sort_limit(self, db):
        topn = db.execute("SELECT a, b FROM t ORDER BY b LIMIT 7 OFFSET 2")
        full = db.execute("SELECT a, b FROM t ORDER BY b")
        assert topn.equals(full.slice(2, 9))

    def test_limit_streams(self, db):
        assert db.execute("SELECT * FROM t LIMIT 3").num_rows == 3

    def test_offset_past_end(self, db):
        assert db.execute("SELECT * FROM t OFFSET 1000").num_rows == 0

    def test_nulls_last_default(self, db):
        result = db.execute("SELECT x FROM nullt ORDER BY x")
        assert result.column("x").to_pylist() == [1, 2, 3, None, None]

    def test_nulls_first(self, db):
        result = db.execute("SELECT x FROM nullt ORDER BY x NULLS FIRST")
        assert result.column("x").to_pylist() == [None, None, 1, 2, 3]

    def test_order_by_unprojected_column(self, db):
        # ORDER BY binds pre-projection, like real engines.
        result = db.execute("SELECT y FROM nullt ORDER BY x NULLS FIRST")
        assert result.column("y").to_pylist() == [2, 4, 3, 5, 1]

    def test_empty_table(self):
        db = Database()
        db.register("e", Table.from_pydict({"a": []}))
        assert db.execute("SELECT count(*) FROM e").to_pydict() == {
            "count_star": [0]
        }
        assert db.execute("SELECT a FROM e ORDER BY a").num_rows == 0


class TestVirtualTimeParallelism:
    def test_makespan_perfect_balance(self):
        assert makespan([1.0] * 8, 4) == 2.0

    def test_makespan_single_thread(self):
        assert makespan([3.0, 2.0], 1) == 5.0

    def test_makespan_dominated_by_longest(self):
        assert makespan([10.0, 1.0, 1.0], 4) == 10.0

    def test_makespan_validates(self):
        with pytest.raises(SimulationError):
            makespan([1.0], 0)
        with pytest.raises(SimulationError):
            makespan([-1.0], 2)

    def test_merge_path_speedup(self):
        runs = [1000.0] * 16
        naive = merge_tree_makespan(runs, 16, merge_path=False)
        parallel = merge_tree_makespan(runs, 16, merge_path=True)
        # The naive cascade's last round is single-threaded.
        assert parallel < naive
        assert naive / parallel > 4

    def test_merge_tree_single_run(self):
        assert merge_tree_makespan([100.0], 8) == 0.0

    def test_phase_model(self):
        model = PhaseModel(num_threads=4)
        model.phase("work", [1.0] * 8)
        model.sequential("fixup", 3.0)
        assert model.total == 5.0
        assert "fixup" in model.report()

    def test_phase_model_rejects_negative(self):
        with pytest.raises(SimulationError):
            PhaseModel(2).sequential("bad", -1.0)
