"""Tests for Merge Path partitioning and the k-way / cascaded merges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.sort.kway import KWayStats, cascade_merge, kway_merge
from repro.sort.merge_path import (
    merge_partitioned,
    merge_path_partition,
    merge_path_partitions,
)

sorted_lists = st.lists(st.integers(0, 50), max_size=40).map(sorted)


class TestMergePathPartition:
    def test_simple(self):
        assert merge_path_partition([1, 3], [2, 4], 2) == (1, 1)

    def test_zero_diagonal(self):
        assert merge_path_partition([1, 2], [3], 0) == (0, 0)

    def test_full_diagonal(self):
        assert merge_path_partition([1, 2], [3], 3) == (2, 1)

    def test_out_of_range_raises(self):
        with pytest.raises(SortError):
            merge_path_partition([1], [2], 3)
        with pytest.raises(SortError):
            merge_path_partition([1], [2], -1)

    def test_ties_prefer_left_run(self):
        # Stability: on a tie the element of `a` is consumed first.
        assert merge_path_partition([5], [5], 1) == (1, 0)

    @settings(max_examples=100, deadline=None)
    @given(sorted_lists, sorted_lists, st.integers(0, 80))
    def test_split_reproduces_prefix_of_stable_merge(self, a, b, d):
        d = min(d, len(a) + len(b))
        i, j = merge_path_partition(a, b, d)
        assert i + j == d
        # The first d outputs of the stable merge == merge of a[:i], b[:j].
        full = _stable_merge(a, b)
        assert sorted(a[:i] + b[:j]) == full[:d]

    @settings(max_examples=60, deadline=None)
    @given(sorted_lists, sorted_lists, st.integers(1, 7))
    def test_partitions_are_monotone_and_cover(self, a, b, k):
        points = merge_path_partitions(a, b, k)
        assert points[0] == (0, 0)
        assert points[-1] == (len(a), len(b))
        for (i0, j0), (i1, j1) in zip(points, points[1:]):
            assert i1 >= i0 and j1 >= j0

    def test_bad_partition_count(self):
        with pytest.raises(SortError):
            merge_path_partitions([1], [2], 0)


def _stable_merge(a, b):
    out, i, j = [], 0, 0
    while i < len(a) and j < len(b):
        if b[j] < a[i]:
            out.append(b[j])
            j += 1
        else:
            out.append(a[i])
            i += 1
    return out + a[i:] + b[j:]


class TestMergePartitioned:
    @settings(max_examples=100, deadline=None)
    @given(sorted_lists, sorted_lists, st.integers(1, 8))
    def test_equals_stable_merge(self, a, b, k):
        assert merge_partitioned(a, b, k) == _stable_merge(a, b)

    def test_single_partition(self):
        assert merge_partitioned([1, 3], [2], 1) == [1, 2, 3]


class TestKWayMerge:
    def test_empty_runs(self):
        assert kway_merge([]) == []
        assert kway_merge([[], []]) == []

    def test_merges(self):
        runs = [[1, 4, 7], [2, 5, 8], [3, 6, 9]]
        assert kway_merge(runs) == list(range(1, 10))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(sorted_lists, max_size=6))
    def test_matches_sorted(self, runs):
        merged = kway_merge(runs)
        assert merged == sorted(x for run in runs for x in run)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 3), max_size=10).map(sorted), max_size=4))
    def test_stability_across_runs(self, runs):
        tagged = [
            [(value, run_index, pos) for pos, value in enumerate(run)]
            for run_index, run in enumerate(runs)
        ]
        merged = kway_merge(tagged, less=lambda x, y: x[0] < y[0])
        for (v1, r1, p1), (v2, r2, p2) in zip(merged, merged[1:]):
            if v1 == v2:
                assert (r1, p1) < (r2, p2)

    def test_comparison_count_is_logarithmic(self):
        stats = KWayStats()
        runs = [[i + 16 * j for j in range(64)] for i in range(16)]
        kway_merge(runs, stats=stats)
        n = 16 * 64
        # About log2(16) = 4 comparisons per element, not 16.
        assert stats.comparisons < 6 * n


class TestCascadeMerge:
    def test_empty(self):
        assert cascade_merge([]) == []

    def test_single_run(self):
        assert cascade_merge([[3, 1]]) == [3, 1]  # untouched

    @settings(max_examples=60, deadline=None)
    @given(st.lists(sorted_lists, min_size=1, max_size=9))
    def test_matches_sorted(self, runs):
        assert cascade_merge(runs) == sorted(x for run in runs for x in run)

    def test_round_count(self):
        stats = KWayStats()
        cascade_merge([[i] for i in range(8)], stats=stats)
        assert stats.rounds == 3  # log2(8)

    def test_odd_run_count(self):
        runs = [[1, 5], [2, 6], [3, 7]]
        assert cascade_merge(runs) == [1, 2, 3, 5, 6, 7]
