"""Tests for the production sorting algorithms: pdqsort, introsort,
merge sort, radix sorts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.sort.introsort import IntroStats, intro_argsort, introsort
from repro.sort.mergesort import MergeStats, merge_argsort, merge_sort
from repro.sort.pdqsort import PdqStats, pdq_argsort, pdqsort
from repro.sort.radix import (
    RadixStats,
    lsd_radix_argsort,
    msd_radix_argsort,
    radix_argsort,
)

PATTERNS = {
    "sorted": list(range(64)),
    "reversed": list(range(64, 0, -1)),
    "all-equal": [7] * 64,
    "organ-pipe": list(range(32)) + list(range(32, 0, -1)),
    "few-uniques": [i % 4 for i in range(64)],
    "single": [42],
    "empty": [],
    "two": [2, 1],
}


@pytest.mark.parametrize("name,pattern", PATTERNS.items())
@pytest.mark.parametrize("sorter", [pdqsort, introsort, merge_sort])
def test_patterns(sorter, name, pattern):
    items = list(pattern)
    sorter(items)
    assert items == sorted(pattern)


class TestPdqsort:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    def test_matches_sorted(self, items):
        data = list(items)
        pdqsort(data)
        assert data == sorted(items)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.text(max_size=8), max_size=120))
    def test_strings(self, items):
        data = list(items)
        pdqsort(data)
        assert data == sorted(items)

    def test_custom_comparator_descending(self):
        data = [3, 1, 2]
        pdqsort(data, less=lambda a, b: b < a)
        assert data == [3, 2, 1]

    def test_stats_counted(self):
        stats = PdqStats()
        data = list(range(200, 0, -1))
        pdqsort(data, stats=stats)
        assert stats.comparisons > 0
        assert data == sorted(data)

    def test_many_duplicates_fewer_comparisons_than_random(self):
        rng = np.random.default_rng(0)
        n = 2000
        dup_stats, rnd_stats = PdqStats(), PdqStats()
        dups = [int(v) for v in rng.integers(0, 4, n)]
        rnd = [int(v) for v in rng.integers(0, 1 << 30, n)]
        pdqsort(dups, stats=dup_stats)
        pdqsort(rnd, stats=rnd_stats)
        # partition_left finishes equal runs in O(n) per run.
        assert dup_stats.comparisons < rnd_stats.comparisons / 2

    def test_argsort(self):
        keys = [30, 10, 20]
        assert pdq_argsort(keys) == [1, 2, 0]

    def test_ascending_input_is_cheap(self):
        stats = PdqStats()
        data = list(range(4096))
        pdqsort(data, stats=stats)
        # Already-partitioned detection: ~one pass, not n log n.
        assert stats.comparisons < 4096 * 4


class TestIntrosort:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    def test_matches_sorted(self, items):
        data = list(items)
        introsort(data)
        assert data == sorted(items)

    def test_stats(self):
        stats = IntroStats()
        data = [5, 3, 8, 1]
        introsort(data, stats=stats)
        assert stats.comparisons > 0

    def test_argsort(self):
        assert intro_argsort([3, 1, 2]) == [1, 2, 0]

    def test_heapsort_fallback_on_adversarial_comparator(self):
        # A comparator designed so median-of-3 keeps picking bad pivots
        # cannot make introsort quadratic: depth limit forces heapsort.
        stats = IntroStats()
        n = 4096
        data = list(range(n))
        # Organ-pipe-of-organ-pipes pattern.
        weird = [min(x, n - x) ^ (x & 0xF) for x in data]
        introsort(weird, stats=stats)
        assert weird == sorted(weird)
        assert stats.comparisons < 40 * n * 12  # far from quadratic


class TestMergeSort:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-100, 100), max_size=300))
    def test_matches_sorted(self, items):
        data = list(items)
        merge_sort(data)
        assert data == sorted(items)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=2, max_size=200))
    def test_stability(self, keys):
        pairs = [(k, i) for i, k in enumerate(keys)]
        merge_sort(pairs, less=lambda a, b: a[0] < b[0])
        for (k1, i1), (k2, i2) in zip(pairs, pairs[1:]):
            assert k1 < k2 or (k1 == k2 and i1 < i2)

    def test_argsort_is_stable(self):
        assert merge_argsort([1, 0, 1, 0]) == [1, 3, 0, 2]

    def test_stats(self):
        stats = MergeStats()
        data = [3, 1, 2] * 20
        merge_sort(data, stats=stats)
        assert stats.comparisons > 0 and stats.moves > 0


def _random_matrix(rng, n, width, cardinality=256):
    return rng.integers(0, cardinality, size=(n, width)).astype(np.uint8)


class TestRadixSorts:
    def test_rejects_non_uint8(self):
        with pytest.raises(SortError):
            lsd_radix_argsort(np.zeros((3, 2), dtype=np.int32))

    def test_rejects_1d(self):
        with pytest.raises(SortError):
            msd_radix_argsort(np.zeros(3, dtype=np.uint8))

    @pytest.mark.parametrize(
        "argsorter", [lsd_radix_argsort, msd_radix_argsort, radix_argsort]
    )
    def test_empty_and_single(self, argsorter):
        assert argsorter(np.zeros((0, 4), dtype=np.uint8)).tolist() == []
        assert argsorter(np.zeros((1, 4), dtype=np.uint8)).tolist() == [0]

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 120),
        st.integers(1, 9),
        st.sampled_from([2, 16, 256]),
        st.integers(0, 2**31 - 1),
    )
    def test_lsd_matches_numpy(self, n, width, cardinality, seed):
        rng = np.random.default_rng(seed)
        matrix = _random_matrix(rng, n, width, cardinality)
        order = lsd_radix_argsort(matrix)
        expected = np.lexsort(tuple(matrix[:, c] for c in range(width - 1, -1, -1)))
        assert order.tolist() == expected.tolist()

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 120),
        st.integers(1, 9),
        st.sampled_from([2, 16, 256]),
        st.integers(0, 2**31 - 1),
    )
    def test_msd_matches_numpy(self, n, width, cardinality, seed):
        rng = np.random.default_rng(seed)
        matrix = _random_matrix(rng, n, width, cardinality)
        order = msd_radix_argsort(matrix)
        expected = np.lexsort(tuple(matrix[:, c] for c in range(width - 1, -1, -1)))
        assert order.tolist() == expected.tolist()

    def test_both_are_stable(self, rng):
        matrix = np.zeros((50, 3), dtype=np.uint8)
        matrix[:, 0] = rng.integers(0, 2, 50)
        for argsorter in (lsd_radix_argsort, msd_radix_argsort):
            order = argsorter(matrix)
            # Equal keys must keep input order.
            zeros = [i for i in order if matrix[i, 0] == 0]
            assert zeros == sorted(zeros)

    def test_skip_copy_on_constant_bytes(self, rng):
        matrix = np.zeros((200, 4), dtype=np.uint8)
        matrix[:, 3] = rng.integers(0, 256, 200)  # only last byte varies
        stats = RadixStats()
        lsd_radix_argsort(matrix, stats)
        assert stats.skipped_passes == 3
        assert stats.passes == 4

    def test_msd_recursion_stops_on_common_prefix(self, rng):
        matrix = np.full((100, 8), 7, dtype=np.uint8)
        matrix[:, 7] = rng.integers(0, 256, 100)
        stats = RadixStats()
        msd_radix_argsort(matrix, stats)
        assert stats.skipped_passes >= 7  # leading constant bytes descend free

    def test_dispatch_threshold(self, rng):
        narrow = _random_matrix(rng, 64, 4)
        wide = _random_matrix(rng, 64, 5)
        narrow_stats, wide_stats = RadixStats(), RadixStats()
        radix_argsort(narrow, narrow_stats)
        radix_argsort(wide, wide_stats)
        # LSD performs width passes over the whole array; MSD recursion
        # uses insertion sort for small buckets.
        assert narrow_stats.insertion_sorted_buckets == 0
        assert wide_stats.insertion_sorted_buckets > 0

    def test_deep_msd_recursion_no_stack_overflow(self):
        # 64-byte-wide identical prefixes force deep descent.
        matrix = np.zeros((30, 64), dtype=np.uint8)
        matrix[:, 63] = np.arange(30, dtype=np.uint8)
        order = msd_radix_argsort(matrix, insertion_threshold=0)
        assert order.tolist() == list(range(30))
