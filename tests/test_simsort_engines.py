"""Tests for the execution-paradigm overhead model (Section V framing)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simsort.engines import PARADIGMS, run_pipeline


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(5)
    return rng.integers(0, 1000, 4096).astype(np.uint32)


class TestRunPipeline:
    def test_all_paradigms_agree_on_the_result(self, values):
        results = {
            p: run_pipeline(values, 500, p).result for p in PARADIGMS
        }
        expected = int(values[values < 500].sum())
        assert set(results.values()) == {expected}

    def test_volcano_pays_per_tuple_interpretation(self, values):
        run = run_pipeline(values, 500, "volcano")
        assert run.interpretation_ops == 3 * len(values)

    def test_vectorized_pays_per_vector(self, values):
        run = run_pipeline(values, 500, "vectorized")
        assert run.interpretation_ops == 3 * (len(values) // 1024)

    def test_compiled_pays_nothing(self, values):
        run = run_pipeline(values, 500, "compiled")
        assert run.interpretation_ops == 0
        assert run.function_calls == 0

    def test_cycle_ordering(self, values):
        cycles = {p: run_pipeline(values, 500, p).cycles for p in PARADIGMS}
        assert cycles["volcano"] > 3 * cycles["vectorized"]
        assert cycles["vectorized"] < 1.2 * cycles["compiled"]

    def test_unknown_paradigm(self, values):
        with pytest.raises(SimulationError):
            run_pipeline(values, 500, "jit-traced")

    def test_empty_input(self):
        run = run_pipeline(np.zeros(0, dtype=np.uint32), 10, "volcano")
        assert run.result == 0

    def test_selective_filter(self, values):
        run = run_pipeline(values, 0, "compiled")
        assert run.result == 0
