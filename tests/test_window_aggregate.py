"""Tests for window functions and sort-based GROUP BY aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate import Aggregate, group_by
from repro.errors import SortError
from repro.table.table import Table
from repro.window import WindowFunction, WindowSpec, window


@pytest.fixture
def employees() -> Table:
    return Table.from_pydict(
        {
            "dept": ["a", "b", "a", "b", "a", None],
            "salary": [100, 200, 100, 150, 300, 50],
            "emp": [1, 2, 3, 4, 5, 6],
        }
    )


class TestWindowValidation:
    def test_unknown_function(self):
        with pytest.raises(SortError):
            WindowFunction("median")

    def test_lag_needs_column(self):
        with pytest.raises(SortError):
            WindowFunction("lag")

    def test_needs_keys(self):
        with pytest.raises(SortError):
            WindowSpec.of().sort_spec()

    def test_no_functions(self, employees):
        spec = WindowSpec.of(order_by=["salary"])
        with pytest.raises(SortError):
            window(employees, spec, [])

    def test_name_collision_with_input(self, employees):
        spec = WindowSpec.of(order_by=["salary"])
        with pytest.raises(SortError):
            window(
                employees, spec, [WindowFunction("row_number", output="emp")]
            )


class TestWindowFunctions:
    SPEC = WindowSpec.of(partition_by=["dept"], order_by=["salary DESC"])

    def test_row_number(self, employees):
        out = window(employees, self.SPEC, [WindowFunction("row_number")])
        by_emp = dict(
            zip(out.column("emp").to_pylist(), out.column("row_number").to_pylist())
        )
        # dept a by salary desc: emp5(300)=1, then the two 100s.
        assert by_emp[5] == 1
        assert sorted(by_emp[e] for e in (1, 3)) == [2, 3]
        assert by_emp[2] == 1 and by_emp[4] == 2
        assert by_emp[6] == 1  # NULL dept is its own partition

    def test_rank_and_dense_rank_with_ties(self):
        t = Table.from_pydict({"g": ["x"] * 4, "v": [10, 10, 5, 1]})
        spec = WindowSpec.of(partition_by=["g"], order_by=["v DESC"])
        out = window(
            t, spec, [WindowFunction("rank"), WindowFunction("dense_rank")]
        )
        assert out.column("rank").to_pylist() == [1, 1, 3, 4]
        assert out.column("dense_rank").to_pylist() == [1, 1, 2, 3]

    def test_lag_and_lead_respect_partitions(self, employees):
        out = window(
            employees,
            self.SPEC,
            [WindowFunction("lag", "salary"), WindowFunction("lead", "salary")],
        )
        lags = out.column("lag_salary").to_pylist()
        # The first row of every partition has NULL lag.
        partitions = out.column("dept").to_pylist()
        for i, (dept, lag) in enumerate(zip(partitions, lags)):
            if i == 0 or partitions[i - 1] != dept:
                assert lag is None

    def test_running_sum(self):
        t = Table.from_pydict({"g": ["a", "a", "b"], "v": [1, 2, 5]})
        spec = WindowSpec.of(partition_by=["g"], order_by=["v"])
        out = window(t, spec, [WindowFunction("running_sum", "v")])
        assert out.column("running_sum_v").to_pylist() == [1.0, 3.0, 5.0]

    def test_running_sum_skips_nulls(self):
        t = Table.from_pydict({"g": ["a"] * 3, "v": [1, None, 2]})
        spec = WindowSpec.of(partition_by=["g"], order_by=["v NULLS LAST"])
        out = window(t, spec, [WindowFunction("running_sum", "v")])
        assert out.column("running_sum_v").to_pylist() == [1.0, 3.0, 3.0]

    def test_no_partition_one_big_frame(self):
        t = Table.from_pydict({"v": [3, 1, 2]})
        spec = WindowSpec.of(order_by=["v"])
        out = window(t, spec, [WindowFunction("row_number")])
        assert out.column("row_number").to_pylist() == [1, 2, 3]

    def test_empty_input(self):
        t = Table.from_pydict({"v": []})
        spec = WindowSpec.of(order_by=["v"])
        out = window(t, spec, [WindowFunction("row_number")])
        assert out.num_rows == 0

    @settings(max_examples=25, deadline=None)
    @given(
        groups=st.lists(st.integers(0, 3), min_size=1, max_size=40),
        seed=st.integers(0, 100),
    )
    def test_row_number_is_dense_per_partition(self, groups, seed):
        rng = np.random.default_rng(seed)
        t = Table.from_pydict(
            {
                "g": groups,
                "v": [int(x) for x in rng.integers(0, 10, len(groups))],
            }
        )
        spec = WindowSpec.of(partition_by=["g"], order_by=["v"])
        out = window(t, spec, [WindowFunction("row_number")])
        per_group: dict = {}
        for g, rn in zip(
            out.column("g").to_pylist(), out.column("row_number").to_pylist()
        ):
            per_group.setdefault(g, []).append(rn)
        for numbers in per_group.values():
            assert numbers == list(range(1, len(numbers) + 1))


class TestGroupBy:
    def test_basic(self, employees):
        out = group_by(
            employees,
            ["dept"],
            [Aggregate("count"), Aggregate("sum", "salary")],
        )
        data = out.to_pydict()
        by_dept = dict(zip(data["dept"], zip(data["count_star"], data["sum_salary"])))
        assert by_dept["a"] == (3, 500.0)
        assert by_dept["b"] == (2, 350.0)
        assert by_dept[None] == (1, 50.0)

    def test_count_column_skips_nulls(self):
        t = Table.from_pydict({"g": ["x", "x"], "v": [1, None]})
        out = group_by(t, ["g"], [Aggregate("count", "v")])
        assert out.column("count_v").to_pylist() == [1]

    def test_min_max_avg(self):
        t = Table.from_pydict({"g": ["x", "x", "y"], "v": [4, 2, 7]})
        out = group_by(
            t,
            ["g"],
            [Aggregate("min", "v"), Aggregate("max", "v"), Aggregate("avg", "v")],
        )
        assert out.column("min_v").to_pylist() == [2.0, 7.0]
        assert out.column("max_v").to_pylist() == [4.0, 7.0]
        assert out.column("avg_v").to_pylist() == [3.0, 7.0]

    def test_all_null_group_aggregates_to_null(self):
        t = Table.from_pydict({"g": ["x"], "v": [None]})
        out = group_by(t, ["g"], [Aggregate("sum", "v")])
        assert out.column("sum_v").to_pylist() == [None]

    def test_string_min_max(self):
        t = Table.from_pydict({"g": [1, 1, 2], "s": ["b", "a", "z"]})
        out = group_by(t, ["g"], [Aggregate("min", "s"), Aggregate("max", "s")])
        assert out.column("min_s").to_pylist() == ["a", "z"]
        assert out.column("max_s").to_pylist() == ["b", "z"]

    def test_multi_key_groups(self):
        t = Table.from_pydict(
            {"a": [1, 1, 2, 1], "b": ["x", "x", "x", "y"], "v": [1, 2, 3, 4]}
        )
        out = group_by(t, ["a", "b"], [Aggregate("count")])
        assert out.num_rows == 3

    def test_long_string_keys_group_exactly(self):
        base = "q" * 13
        t = Table.from_pydict(
            {"k": [f"{base}1", f"{base}2", f"{base}1"], "v": [1, 1, 1]}
        )
        out = group_by(t, ["k"], [Aggregate("count")])
        assert out.num_rows == 2
        assert out.column("count_star").to_pylist() == [2, 1]

    def test_validation(self):
        t = Table.from_pydict({"g": [1], "s": ["x"]})
        with pytest.raises(SortError):
            group_by(t, [], [Aggregate("count")])
        with pytest.raises(SortError):
            group_by(t, ["g"], [])
        with pytest.raises(SortError):
            group_by(t, ["g"], [Aggregate("sum", "s")])
        with pytest.raises(SortError):
            Aggregate("median", "s")
        with pytest.raises(SortError):
            Aggregate("sum")

    def test_empty_table(self):
        t = Table.from_pydict({"g": [], "v": []})
        out = group_by(t, ["g"], [Aggregate("count")])
        assert out.num_rows == 0

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.one_of(st.none(), st.integers(0, 4)), max_size=50),
        seed=st.integers(0, 99),
    )
    def test_property_matches_python_groupby(self, keys, seed):
        rng = np.random.default_rng(seed)
        values = [int(v) for v in rng.integers(0, 100, len(keys))]
        t = Table.from_pydict({"g": keys, "v": values})
        out = group_by(
            t, ["g"], [Aggregate("count"), Aggregate("sum", "v")]
        )
        expected: dict = {}
        for k, v in zip(keys, values):
            count, total = expected.get(k, (0, 0))
            expected[k] = (count + 1, total + v)
        got = {
            g: (c, s)
            for g, c, s in zip(
                out.column("g").to_pylist(),
                out.column("count_star").to_pylist(),
                out.column("sum_v").to_pylist(),
            )
        }
        assert got == {k: (c, float(s)) for k, (c, s) in expected.items()}
