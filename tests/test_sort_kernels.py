"""Cross-checks of the vectorized kernel layer against the scalar paths.

The contract of :mod:`repro.sort.kernels` is byte-identical results: every
kernel (whole-row argsort, searchsorted merge, radix bucket finisher, the
operator and external-sort fast paths) must reproduce exactly what the
scalar row-at-a-time code produces, across mixed types, DESC keys, NULLS
FIRST/LAST, duplicate keys, and truncated VARCHAR prefixes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import reference_sort
from repro.errors import SortError
from repro.sort import kernels
from repro.sort.external import external_sort_table
from repro.sort.heuristic import choose_vector_path, vector_sort_rows
from repro.sort.kernels import (
    KWayBlockStats,
    argsort_rows,
    kway_merge_blocks,
    merge_indices,
    merge_matrices,
    radix_argsort_rows,
    void_view,
)
from repro.sort.kway import KWayStats, cascade_merge_indices
from repro.sort.operator import SortConfig, SortOperator, sort_table
from repro.sort.radix import RadixStats, lsd_radix_argsort, msd_radix_argsort
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.datatypes import FLOAT, INTEGER, VARCHAR
from repro.types.sortspec import SortSpec


def random_matrix(rng, n, width, alphabet=256):
    """Random key matrix; a small alphabet forces many duplicate rows."""
    return rng.integers(0, alphabet, size=(n, width)).astype(np.uint8)


def row_bytes(matrix):
    return [matrix[i].tobytes() for i in range(len(matrix))]


def tmp_path_mk(tmp_path, name):
    """A fresh, existing spill directory under pytest's tmp_path."""
    path = tmp_path / name
    path.mkdir(exist_ok=True)
    return path


class TestVoidView:
    @pytest.mark.parametrize("width", [1, 2, 3, 7, 8, 9, 13, 21, 32])
    def test_scalar_order_is_memcmp_order(self, rng, width):
        # The sort/search kernels use the dtype's compare function, which
        # the field tuples expose directly (big-endian unsigned fields in
        # declaration order == memcmp).
        matrix = random_matrix(rng, 100, width, alphabet=4)
        view = void_view(matrix)
        raw = row_bytes(matrix)
        for i in range(0, 100, 7):
            for j in range(0, 100, 11):
                assert (view[i].item() < view[j].item()) == (raw[i] < raw[j])
                assert (view[i].item() == view[j].item()) == (raw[i] == raw[j])

    def test_no_copy_for_contiguous(self, rng):
        matrix = random_matrix(rng, 10, 8)
        assert void_view(matrix).base is matrix

    def test_rejects_bad_input(self):
        with pytest.raises(SortError):
            void_view(np.zeros((3, 4), dtype=np.int32))
        with pytest.raises(SortError):
            void_view(np.zeros(5, dtype=np.uint8))
        with pytest.raises(SortError):
            void_view(np.zeros((3, 0), dtype=np.uint8))


class TestArgsortRows:
    @pytest.mark.parametrize("width", [1, 3, 8, 13])
    @pytest.mark.parametrize("alphabet", [2, 256])
    def test_matches_stable_bytes_sort(self, rng, width, alphabet):
        matrix = random_matrix(rng, 500, width, alphabet)
        raw = row_bytes(matrix)
        expected = sorted(range(500), key=lambda i: (raw[i], i))
        assert argsort_rows(matrix).tolist() == expected

    def test_stability_on_duplicates(self, rng):
        matrix = np.zeros((64, 5), dtype=np.uint8)  # all rows identical
        assert argsort_rows(matrix).tolist() == list(range(64))


class TestMergeIndices:
    @pytest.mark.parametrize("width", [1, 4, 9, 13])
    @pytest.mark.parametrize("sizes", [(0, 5), (5, 0), (1, 1), (200, 317)])
    def test_matches_scalar_merge(self, rng, width, sizes):
        n, m = sizes
        a = random_matrix(rng, n, width, alphabet=3)
        b = random_matrix(rng, m, width, alphabet=3)
        a = a[argsort_rows(a)] if n else a
        b = b[argsort_rows(b)] if m else b
        perm = merge_indices(a, b)
        combined = row_bytes(a) + row_bytes(b)
        merged = [combined[i] for i in perm]
        assert merged == sorted(combined)
        # Stability: on ties, left-run rows must come first.
        seen_right_for: dict[bytes, bool] = {}
        for position, source in enumerate(perm):
            key = merged[position]
            if source >= n:
                seen_right_for[key] = True
            else:
                assert not seen_right_for.get(key, False), (
                    f"left row after right row for duplicate key {key!r}"
                )

    def test_merge_matrices_gathers(self, rng):
        a = random_matrix(rng, 50, 6)
        b = random_matrix(rng, 70, 6)
        a, b = a[argsort_rows(a)], b[argsort_rows(b)]
        merged, perm = merge_matrices(a, b)
        assert merged.tobytes() == np.concatenate([a, b])[perm].tobytes()

    def test_width_mismatch_raises(self):
        with pytest.raises(SortError):
            merge_indices(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )


class TestCascadeMergeIndices:
    def test_matches_global_sort(self, rng):
        runs = []
        for _ in range(7):  # odd count exercises the bye run
            matrix = random_matrix(rng, int(rng.integers(0, 80)), 5, alphabet=4)
            runs.append(matrix[argsort_rows(matrix)] if len(matrix) else matrix)
        stats = KWayStats()
        run_ids, row_ids = cascade_merge_indices(runs, stats)
        merged = [runs[r][p].tobytes() for r, p in zip(run_ids, row_ids)]
        everything = [row for run in runs for row in row_bytes(run)]
        assert merged == sorted(everything)
        assert stats.rounds >= 3
        assert len(run_ids) == len(everything)

    def test_tie_breaks_prefer_earlier_run(self):
        run_a = np.full((3, 2), 7, dtype=np.uint8)
        run_b = np.full((2, 2), 7, dtype=np.uint8)
        run_ids, row_ids = cascade_merge_indices([run_a, run_b])
        assert run_ids.tolist() == [0, 0, 0, 1, 1]
        assert row_ids.tolist() == [0, 1, 2, 0, 1]

    def test_empty(self):
        run_ids, row_ids = cascade_merge_indices([])
        assert len(run_ids) == 0 and len(row_ids) == 0


class TestRadixVectorFinish:
    @pytest.mark.parametrize("width", [5, 9, 16])
    def test_msd_vector_finish_identical(self, rng, width):
        matrix = random_matrix(rng, 800, width, alphabet=3)
        scalar = msd_radix_argsort(matrix.copy())
        stats = RadixStats()
        vectorized = msd_radix_argsort(matrix.copy(), stats, vector_threshold=128)
        assert vectorized.tolist() == scalar.tolist()
        assert stats.vector_finished_buckets > 0

    def test_lsd_skip_copy_without_gather(self, rng):
        # Middle byte constant: its pass must be skipped, result unchanged.
        matrix = random_matrix(rng, 300, 3)
        matrix[:, 1] = 42
        stats = RadixStats()
        order = lsd_radix_argsort(matrix, stats)
        raw = row_bytes(matrix)
        assert [raw[i] for i in order] == sorted(raw)
        assert stats.skipped_passes == 1
        assert stats.passes == 3


MIXED_SPECS = [
    "i ASC NULLS FIRST",
    "i DESC NULLS LAST, f ASC",
    "s DESC NULLS FIRST, i ASC NULLS LAST",
    "f DESC, s ASC, i DESC",
]


class TestOperatorCrossCheck:
    """Kernel and scalar operator paths must be byte-identical end to end."""

    def _cross_check(self, table, spec, run_threshold):
        spec = SortSpec.of(*[part.strip() for part in spec.split(",")])
        on = sort_table(
            table, spec, SortConfig(run_threshold=run_threshold, vector_size=16)
        )
        off = sort_table(
            table,
            spec,
            SortConfig(
                run_threshold=run_threshold,
                vector_size=16,
                use_vector_kernels=False,
            ),
        )
        assert on.equals(off)
        assert on.equals(reference_sort(table, spec))

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-5, 5)),
                st.one_of(st.none(), st.floats(allow_nan=False, width=32)),
                st.one_of(st.none(), st.text(alphabet="abXY", max_size=5)),
            ),
            max_size=60,
        ),
        spec_text=st.sampled_from(MIXED_SPECS),
        run_threshold=st.sampled_from([8, 64, 1 << 17]),
    )
    def test_mixed_types_nulls_desc(self, rows, spec_text, run_threshold):
        table = Table.from_pydict(
            {
                "i": [r[0] for r in rows],
                "f": [r[1] for r in rows],
                "s": [r[2] for r in rows],
            },
            dtypes={"i": INTEGER, "f": FLOAT, "s": VARCHAR},
        )
        self._cross_check(table, spec_text, run_threshold)

    def test_truncated_varchar_prefixes(self, rng):
        # Strings sharing a >12-byte prefix force the inexact scalar
        # fallback in BOTH configurations; outputs must still agree.
        values = [f"{'common-prefix-x'}{int(i):04d}" for i in rng.integers(0, 40, 400)]
        table = Table.from_pydict({"s": values, "seq": list(range(400))})
        self._cross_check(table, "s DESC, seq", 64)

    def test_duplicate_keys_stability(self):
        n = 400
        table = Table.from_pydict({"k": [3] * n, "seq": list(range(n))})
        result = sort_table(table, "k", SortConfig(run_threshold=32))
        assert result.column("seq").to_pylist() == list(range(n))

    def test_kernel_merge_counter(self, rng):
        table = Table.from_numpy(
            {"a": rng.integers(0, 100, 1000).astype(np.int32)}
        )
        op = SortOperator(table.schema, SortSpec.of("a"), SortConfig(run_threshold=100))
        for chunk in chunk_table(table, 64):
            op.sink(chunk)
        op.finalize()
        assert op.stats.kernel_merges > 0
        assert op.stats.scalar_merges == 0

    def test_inexact_prefix_stays_on_kernel_path(self):
        # Strings tying beyond the 12-byte prefix used to demote every
        # merge to the scalar comparator; the vector path now repairs the
        # tie groups instead and the scalar merge never runs.
        values = [f"{'y' * 13}{i:03d}" for i in range(300)]
        table = Table.from_pydict({"s": values})
        op = SortOperator(table.schema, SortSpec.of("s"), SortConfig(run_threshold=64))
        for chunk in chunk_table(table, 32):
            op.sink(chunk)
        result = op.finalize()
        assert op.stats.scalar_merges == 0
        assert op.stats.kernel_merges > 0
        assert op.stats.full_key_compares > 0
        assert result.column("s").to_pylist() == sorted(values)


class TestExternalCrossCheck:
    def test_integers(self, rng, tmp_path):
        table = Table.from_numpy(
            {
                "a": rng.integers(0, 50, 2000).astype(np.int64),
                "b": rng.integers(0, 10, 2000).astype(np.int32),
            }
        )
        spec = SortSpec.of("a DESC", "b")
        config_on = SortConfig(run_threshold=256)
        config_off = SortConfig(run_threshold=256, use_vector_kernels=False)
        on = external_sort_table(table, spec, config_on, str(tmp_path_mk(tmp_path, "on")))
        off = external_sort_table(table, spec, config_off, str(tmp_path_mk(tmp_path, "off")))
        assert on.equals(off)
        assert on.equals(reference_sort(table, spec))

    def test_strings(self, rng, tmp_path):
        words = ["pear", "fig", "apple", "kiwi", "plum", None, "date"]
        values = [words[i] for i in rng.integers(0, len(words), 900)]
        table = Table.from_pydict({"s": values, "seq": list(range(900))})
        spec = SortSpec.of("s NULLS FIRST", "seq")
        on = external_sort_table(
            table, spec, SortConfig(run_threshold=128), str(tmp_path_mk(tmp_path, "on"))
        )
        off = external_sort_table(
            table,
            spec,
            SortConfig(run_threshold=128, use_vector_kernels=False),
            str(tmp_path_mk(tmp_path, "off")),
        )
        assert on.equals(off)
        assert on.equals(reference_sort(table, spec))


class TestChunkColumns:
    def test_word_columns_share_one_buffer(self, rng):
        # The rewrite pads/byteswaps/transposes the whole matrix at most
        # three times total; the per-word columns are views of one buffer,
        # never per-word temporaries.
        matrix = random_matrix(rng, 100, 13)
        columns = kernels._chunk_columns(matrix)
        assert len(columns) == 2
        base = columns[0].base
        assert base is not None
        assert all(column.base is base for column in columns)

    @pytest.mark.parametrize("width", [1, 7, 8, 9, 16, 21])
    def test_order_matches_memcmp(self, rng, width):
        matrix = random_matrix(rng, 200, width, alphabet=4)
        columns = kernels._chunk_columns(matrix)
        raw = row_bytes(matrix)
        key = lambda i: tuple(int(col[i]) for col in columns)
        for i in range(0, 200, 13):
            for j in range(0, 200, 17):
                assert (key(i) < key(j)) == (raw[i] < raw[j])

    def test_kway_merge_chunks_once_per_refill(self, rng, monkeypatch):
        # Regression: the k-way merge must re-chunk a run's keys exactly
        # once per block refill, never once per emitted round (the old
        # zero-pad-per-call pattern made every chunking a full-matrix
        # copy, so per-round re-chunking was quadratic).
        runs = []
        for _ in range(4):
            matrix = random_matrix(rng, 600, 13, alphabet=5)
            runs.append(matrix[argsort_rows(matrix)])
        block_rows = 50
        blocks_fed = sum(-(-len(run) // block_rows) for run in runs)

        calls = []
        original = kernels._chunk_columns
        monkeypatch.setattr(
            kernels,
            "_chunk_columns",
            lambda matrix: calls.append(len(matrix)) or original(matrix),
        )

        def block_iter(matrix):
            for start in range(0, len(matrix), block_rows):
                yield matrix[start : start + block_rows]

        stats = KWayBlockStats()
        emitted = [
            (run_ids, row_ids)
            for run_ids, row_ids in kway_merge_blocks(
                [block_iter(run) for run in runs], stats
            )
        ]
        merged = [
            runs[r][p].tobytes() for ids, rows in emitted for r, p in zip(ids, rows)
        ]
        assert merged == sorted(b for run in runs for b in row_bytes(run))
        # One chunking per refilled block -- and every call covered at most
        # one block, never a whole run's matrix.
        assert len(calls) == stats.refills == blocks_fed
        assert stats.rounds > len(runs)  # merge genuinely ran many rounds
        assert max(calls) <= block_rows


class TestRadixArgsortRows:
    @pytest.mark.parametrize("width", [9, 13, 16])
    @pytest.mark.parametrize("alphabet", [2, 5, 256])
    def test_matches_argsort_rows(self, rng, width, alphabet):
        matrix = random_matrix(rng, 3000, width, alphabet)
        assert (
            radix_argsort_rows(matrix).tolist()
            == argsort_rows(matrix).tolist()
        )

    def test_stability_and_constant_prefix(self, rng):
        matrix = random_matrix(rng, 2500, 12, alphabet=3)
        matrix[:, :6] = 77  # constant prefix: single-bucket skip path
        assert (
            radix_argsort_rows(matrix).tolist()
            == argsort_rows(matrix).tolist()
        )

    def test_records_stats(self, rng):
        matrix = random_matrix(rng, 5000, 10)
        stats = RadixStats()
        radix_argsort_rows(matrix, stats)
        assert stats.vector_finished_buckets > 0
        assert stats.rows_moved > 0

    def test_small_input_and_empty(self, rng):
        small = random_matrix(rng, 7, 10)
        assert radix_argsort_rows(small).tolist() == argsort_rows(small).tolist()
        empty = np.zeros((0, 10), dtype=np.uint8)
        assert radix_argsort_rows(empty).tolist() == []


class TestVectorPathHeuristic:
    def test_narrow_keys_use_single_word_argsort(self, rng):
        matrix = random_matrix(rng, 10000, 6)
        assert choose_vector_path(matrix, 6) == ("argsort-1word", "single-word")

    def test_few_rows_use_lexsort(self, rng):
        matrix = random_matrix(rng, 100, 16)
        assert choose_vector_path(matrix, 16) == ("lexsort", "few-rows")

    def test_skewed_leading_byte_uses_lexsort(self, rng):
        matrix = random_matrix(rng, 10000, 16)
        matrix[:, 0] = 9  # every sampled leading byte identical
        assert choose_vector_path(matrix, 16) == (
            "lexsort",
            "skewed-leading-byte",
        )

    def test_wide_uniform_keys_use_radix(self, rng):
        matrix = random_matrix(rng, 10000, 16)
        assert choose_vector_path(matrix, 16) == ("radix", "wide-keys")

    @pytest.mark.parametrize("shape", [(100, 16), (6000, 6), (6000, 16)])
    def test_dispatch_is_permutation_identical(self, rng, shape):
        n, width = shape
        matrix = random_matrix(rng, n, width, alphabet=7)
        assert (
            vector_sort_rows(matrix, width).tolist()
            == argsort_rows(matrix).tolist()
        )
