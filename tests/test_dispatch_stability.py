"""Heuristic dispatch stability: recorded decisions per scenario.

The vectorized sort dispatch (:func:`repro.sort.heuristic.
vector_sort_rows`) and the external run-generation chooser are
deterministic for a fixed (rows, seed) -- which makes them testable as a
*recorded expectation table*: every scenario in the catalog pins the
kernel it dispatches to (and why), plus the external ``rungen_path``.
A heuristic change that flips any cell fails here with the full table
in hand, forcing the flip to be reviewed and the expectations (and the
committed ``BENCH_matrix.json`` baseline) updated deliberately --
the same contract ``benchmarks/regress.py`` enforces at bench scale.

The table is interesting because the catalog actually diversifies it:
wide two-column int keys go to radix, the skewed-leading-byte string
scenarios to lexsort, and TPC-DS catalog_sales compresses its four
low-cardinality keys into a single word (argsort-1word).
"""

from __future__ import annotations

import pytest

from repro.sort.external import ExternalSortOperator
from repro.sort.heuristic import RADIX_MIN_ROWS
from repro.sort.operator import SortConfig, SortOperator
from repro.table.chunk import chunk_table
from repro.types.sortspec import SortSpec
from repro.workloads.scenarios import SCENARIOS

ROWS = 6_000
SEED = 7
EXTERNAL_RUN_THRESHOLD = 1_500

# scenario -> (in-memory path, in-memory reason, external rungen path).
# In-memory sorts run as one ROWS-row run (above RADIX_MIN_ROWS, so the
# radix gate is open); external runs are EXTERNAL_RUN_THRESHOLD rows.
EXPECTED = {
    "uniform": ("radix", "wide-keys", "argsort"),
    "zipf_skew": ("radix", "wide-keys", "argsort"),
    "near_sorted": ("radix", "wide-keys", "replacement_selection"),
    "reverse": ("radix", "wide-keys", "argsort"),
    "dup_heavy": ("radix", "wide-keys", "argsort"),
    "long_string": ("lexsort", "skewed-leading-byte", "argsort"),
    "mixed_null": ("radix", "wide-keys", "argsort"),
    "tpcds_catalog": ("argsort-1word", "single-word", "argsort"),
    "tpcds_customer": ("lexsort", "skewed-leading-byte", "argsort"),
}


def _spec(scenario) -> SortSpec:
    return SortSpec.of(*[part.strip() for part in scenario.order_by.split(",")])


def test_expectation_table_covers_the_catalog():
    assert set(EXPECTED) == set(SCENARIOS)
    assert ROWS > RADIX_MIN_ROWS  # the radix gate must be open


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_in_memory_dispatch_matches_recorded(name):
    scenario = SCENARIOS[name]
    table = scenario.table(ROWS, seed=SEED)
    operator = SortOperator(table.schema, _spec(scenario), SortConfig())
    for chunk in chunk_table(table, 2048):
        operator.sink(chunk)
    operator.finalize()
    expected_path, expected_reason, _ = EXPECTED[name]
    paths = dict(operator.stats.vector_sort_paths)
    reasons = dict(operator.stats.vector_sort_reasons)
    assert paths == {expected_path: 1}, (
        f"scenario {name!r} rows={ROWS} seed={SEED}: dispatch flipped to "
        f"{paths} (reasons {reasons}); if intended, update EXPECTED and "
        f"regenerate BENCH_matrix.json"
    )
    assert expected_reason in reasons, (
        f"scenario {name!r}: reason {reasons} != {expected_reason!r}"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_external_rungen_matches_recorded(name, tmp_path):
    scenario = SCENARIOS[name]
    table = scenario.table(ROWS, seed=SEED)
    config = SortConfig(external=True, run_threshold=EXTERNAL_RUN_THRESHOLD)
    with ExternalSortOperator(
        table.schema, _spec(scenario), config, str(tmp_path)
    ) as operator:
        for chunk in chunk_table(table, config.vector_size):
            operator.sink(chunk)
        operator.finalize()
    _, _, expected_rungen = EXPECTED[name]
    assert operator.stats.rungen_path == expected_rungen, (
        f"scenario {name!r} rows={ROWS} seed={SEED}: rungen flipped "
        f"{expected_rungen!r} -> {operator.stats.rungen_path!r} "
        f"(probe={operator.stats.rungen_probe:.3f}); if intended, update "
        f"EXPECTED and regenerate BENCH_matrix.json"
    )
    # Replacement selection must actually have grown runs past the
    # threshold on its scenario (the point of choosing it).
    if expected_rungen == "replacement_selection":
        assert max(operator.stats.run_lengths) > EXTERNAL_RUN_THRESHOLD
