"""Tests for the full sort operator (the paper's Figure 11 pipeline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import reference_sort
from repro.errors import SortError
from repro.sort.operator import SortConfig, SortOperator, sort_table
from repro.table.chunk import DataChunk, chunk_table
from repro.table.table import Table
from repro.types.datatypes import FLOAT, INTEGER, VARCHAR
from repro.types.sortspec import SortSpec


class TestSortConfig:
    def test_defaults(self):
        config = SortConfig()
        assert config.run_threshold > 0

    def test_invalid_threshold(self):
        with pytest.raises(SortError):
            SortConfig(run_threshold=0)

    def test_invalid_algorithm(self):
        with pytest.raises(SortError):
            SortConfig(force_algorithm="timsort")


class TestBasicSorting:
    def test_paper_example(self, small_table):
        spec = SortSpec.of(
            "c_birth_country DESC NULLS LAST", "c_birth_year ASC NULLS FIRST"
        )
        result = sort_table(small_table, spec)
        assert result.equals(reference_sort(small_table, spec))
        # Spot-check the ordering of the paper's example.
        assert result.column("c_birth_country").to_pylist() == [
            "NETHERLANDS",
            "GERMANY",
            "GERMANY",
            "BELGIUM",
            None,
        ]

    def test_spec_from_text(self, small_table):
        result = sort_table(small_table, "c_birth_year, c_customer_sk DESC")
        spec = SortSpec.of("c_birth_year", "c_customer_sk DESC")
        assert result.equals(reference_sort(small_table, spec))

    def test_empty_table(self):
        table = Table.from_pydict({"a": []})
        assert sort_table(table, "a").num_rows == 0

    def test_single_row(self):
        table = Table.from_pydict({"a": [5], "b": ["x"]})
        assert sort_table(table, "a").equals(table)

    def test_unknown_key_raises(self, small_table):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            sort_table(small_table, "ghost")

    def test_sink_after_finalize_raises(self, small_table):
        op = SortOperator(small_table.schema, SortSpec.of("c_customer_sk"))
        op.finalize()
        with pytest.raises(SortError):
            op.sink(DataChunk.from_table(small_table))
        with pytest.raises(SortError):
            op.finalize()

    def test_schema_mismatch_raises(self, small_table):
        op = SortOperator(small_table.schema, SortSpec.of("c_customer_sk"))
        other = Table.from_pydict({"x": [1]})
        with pytest.raises(SortError):
            op.sink(DataChunk.from_table(other))


class TestMultiRunMerging:
    """Small run thresholds force many runs and exercise the merge."""

    def test_many_runs_integer(self, rng):
        table = Table.from_numpy(
            {
                "a": rng.integers(0, 40, 3000).astype(np.int32),
                "b": rng.integers(0, 1000, 3000).astype(np.int32),
            }
        )
        spec = SortSpec.of("a", "b DESC")
        config = SortConfig(run_threshold=128, vector_size=64)
        operator = SortOperator(table.schema, spec, config)
        for chunk in chunk_table(table, 64):
            operator.sink(chunk)
        result = operator.finalize()
        assert operator.stats.runs_generated >= 20
        assert operator.stats.merge_rounds >= 4
        assert result.equals(reference_sort(table, spec))

    def test_stability_across_runs(self, rng):
        # Equal keys must keep arrival order even when they land in
        # different runs (globally unique row ids guarantee it).
        n = 500
        table = Table.from_pydict(
            {"k": [1] * n, "seq": list(range(n))}
        )
        config = SortConfig(run_threshold=64)
        result = sort_table(table, SortSpec.of("k"), config)
        assert result.column("seq").to_pylist() == list(range(n))

    def test_algorithm_choice_radix_for_fixed(self, rng):
        table = Table.from_numpy(
            {"a": rng.integers(0, 100, 300).astype(np.int32)}
        )
        op = SortOperator(table.schema, SortSpec.of("a"))
        for chunk in chunk_table(table):
            op.sink(chunk)
        op.finalize()
        assert op.stats.algorithm == "radix"

    def test_algorithm_choice_pdq_for_strings(self):
        table = Table.from_pydict({"s": ["b", "a", "c"]})
        op = SortOperator(table.schema, SortSpec.of("s"))
        for chunk in chunk_table(table):
            op.sink(chunk)
        op.finalize()
        assert op.stats.algorithm == "pdqsort"

    def test_force_algorithm(self):
        table = Table.from_pydict({"a": [3, 1, 2]})
        config = SortConfig(force_algorithm="pdqsort")
        op = SortOperator(table.schema, SortSpec.of("a"), config)
        for chunk in chunk_table(table):
            op.sink(chunk)
        result = op.finalize()
        assert op.stats.algorithm == "pdqsort"
        assert result.column("a").to_pylist() == [1, 2, 3]


class TestStringTruncation:
    def test_long_shared_prefixes_sorted_exactly(self):
        # Strings identical beyond the 12-byte prefix: full-string
        # tie-breaks must kick in.
        values = [f"{'x' * 12}{suffix:04d}" for suffix in range(100)]
        rng = np.random.default_rng(5)
        shuffled = [values[i] for i in rng.permutation(100)]
        table = Table.from_pydict({"s": shuffled, "i": list(range(100))})
        spec = SortSpec.of("s")
        result = sort_table(table, spec, SortConfig(run_threshold=16))
        assert result.column("s").to_pylist() == sorted(shuffled)

    def test_forced_short_prefix_still_exact(self):
        values = ["apple", "apricot", "applesauce", "ap", "app"]
        table = Table.from_pydict({"s": values})
        config = SortConfig(string_prefix=2)
        result = sort_table(table, "s", config)
        assert result.column("s").to_pylist() == sorted(values)

    def test_desc_with_truncation(self):
        values = ["prefix-aaaa-1", "prefix-aaaa-2", "prefix-aaaa-0"]
        table = Table.from_pydict({"s": values})
        result = sort_table(table, "s DESC", SortConfig(string_prefix=6))
        assert result.column("s").to_pylist() == sorted(values, reverse=True)


MIXED_SPECS = [
    "i ASC NULLS FIRST",
    "i DESC NULLS LAST, f ASC",
    "s DESC NULLS FIRST, i ASC NULLS LAST",
    "f DESC, s ASC, i DESC",
]


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-50, 50)),
            st.one_of(st.none(), st.floats(allow_nan=False, width=32)),
            st.one_of(st.none(), st.text(alphabet="abXY", max_size=5)),
        ),
        max_size=60,
    ),
    spec_text=st.sampled_from(MIXED_SPECS),
    run_threshold=st.sampled_from([8, 64, 1 << 17]),
)
def test_operator_matches_reference(rows, spec_text, run_threshold):
    """The flagship property: the full pipeline equals the naive sort."""
    table = Table.from_pydict(
        {
            "i": [r[0] for r in rows],
            "f": [r[1] for r in rows],
            "s": [r[2] for r in rows],
        },
        dtypes={"i": INTEGER, "f": FLOAT, "s": VARCHAR},
    )
    spec = SortSpec.of(*[part.strip() for part in spec_text.split(",")])
    config = SortConfig(run_threshold=run_threshold, vector_size=16)
    result = sort_table(table, spec, config)
    assert result.equals(reference_sort(table, spec))
