"""Tests for ORDER BY semantics: SortKey parsing and tuple comparison."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SortError
from repro.types.sortspec import (
    NullOrder,
    Order,
    SortKey,
    SortSpec,
    compare_values,
    tuple_compare,
)


class TestSortKeyParsing:
    def test_plain_column(self):
        key = SortKey.parse("a")
        assert key.column == "a"
        assert key.order is Order.ASCENDING
        assert key.effective_null_order is NullOrder.NULLS_LAST

    def test_desc(self):
        key = SortKey.parse("country DESC")
        assert key.descending

    def test_asc_explicit(self):
        assert not SortKey.parse("x ASC").descending

    def test_nulls_first(self):
        key = SortKey.parse("year ASC NULLS FIRST")
        assert key.nulls_first

    def test_nulls_last(self):
        key = SortKey.parse("year DESC NULLS LAST")
        assert not key.nulls_first

    def test_case_insensitive_keywords(self):
        key = SortKey.parse("y desc nulls first")
        assert key.descending and key.nulls_first

    def test_empty_raises(self):
        with pytest.raises(SortError):
            SortKey.parse("  ")

    def test_garbage_raises(self):
        with pytest.raises(SortError):
            SortKey.parse("a SIDEWAYS")

    def test_nulls_without_placement_raises(self):
        with pytest.raises(SortError):
            SortKey.parse("a NULLS")

    def test_str_round_trip(self):
        key = SortKey.parse("a DESC NULLS FIRST")
        assert str(key) == "a DESC NULLS FIRST"


class TestSortSpec:
    def test_of_mixed(self):
        spec = SortSpec.of("a DESC", SortKey("b"))
        assert spec.column_names == ("a", "b")

    def test_empty_raises(self):
        with pytest.raises(SortError):
            SortSpec(())

    def test_len_and_iter(self):
        spec = SortSpec.of("a", "b", "c")
        assert len(spec) == 3
        assert [k.column for k in spec] == ["a", "b", "c"]


class TestCompareValues:
    ASC = SortKey("x")
    DESC = SortKey("x", Order.DESCENDING)
    NF = SortKey("x", Order.ASCENDING, NullOrder.NULLS_FIRST)

    def test_ascending(self):
        assert compare_values(1, 2, self.ASC) < 0
        assert compare_values(2, 1, self.ASC) > 0
        assert compare_values(2, 2, self.ASC) == 0

    def test_descending_inverts(self):
        assert compare_values(1, 2, self.DESC) > 0
        assert compare_values(2, 1, self.DESC) < 0

    def test_nulls_last_default(self):
        assert compare_values(None, 5, self.ASC) > 0
        assert compare_values(5, None, self.ASC) < 0
        assert compare_values(None, None, self.ASC) == 0

    def test_nulls_first(self):
        assert compare_values(None, 5, self.NF) < 0

    def test_null_placement_unaffected_by_desc(self):
        desc_last = SortKey("x", Order.DESCENDING, NullOrder.NULLS_LAST)
        assert compare_values(None, 5, desc_last) > 0

    def test_nan_sorts_after_numbers(self):
        assert compare_values(math.nan, 1e300, self.ASC) > 0
        assert compare_values(1.0, math.nan, self.ASC) < 0
        assert compare_values(math.nan, math.nan, self.ASC) == 0

    def test_nan_before_null_with_nulls_last(self):
        assert compare_values(math.nan, None, self.ASC) < 0

    def test_strings(self):
        assert compare_values("GERMANY", "NETHERLANDS", self.ASC) < 0


class TestTupleCompare:
    SPEC = SortSpec.of("a DESC NULLS LAST", "b ASC NULLS FIRST")

    def test_first_column_decides(self):
        assert tuple_compare(("NL", 1), ("DE", 2), self.SPEC) < 0  # DESC

    def test_tie_falls_to_second(self):
        assert tuple_compare(("DE", 1968), ("DE", 1990), self.SPEC) < 0

    def test_full_tie(self):
        assert tuple_compare(("DE", 1), ("DE", 1), self.SPEC) == 0

    def test_arity_mismatch_raises(self):
        with pytest.raises(SortError):
            tuple_compare((1,), (1, 2), self.SPEC)

    @given(
        st.lists(
            st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
            min_size=2,
            max_size=20,
        )
    )
    def test_comparator_is_total_preorder(self, tuples):
        spec = SortSpec.of("a", "b DESC")
        for x in tuples:
            assert tuple_compare(x, x, spec) == 0
            for y in tuples:
                assert tuple_compare(x, y, spec) == -tuple_compare(y, x, spec)
                for z in tuples:
                    if (
                        tuple_compare(x, y, spec) <= 0
                        and tuple_compare(y, z, spec) <= 0
                    ):
                        assert tuple_compare(x, z, spec) <= 0
