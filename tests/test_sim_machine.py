"""Tests for branch predictors, the arena, and the machine/cost model."""

import pytest

from repro.errors import OutOfMemoryError, SimulationError
from repro.sim.branch import (
    AlwaysTakenPredictor,
    GShareBranchPredictor,
    TwoBitPredictor,
)
from repro.sim.cache import CacheConfig, CacheHierarchy
from repro.sim.counters import PerfCounters
from repro.sim.machine import CostModel, Machine
from repro.sim.memory import Arena


class TestBranchPredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.record("s", True) is False
        assert predictor.record("s", False) is True

    def test_two_bit_learns_bias(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.record("loop", True)
        assert predictor.record("loop", True) is False
        # A single anomaly mispredicts once, then the bias recovers.
        assert predictor.record("loop", False) is True
        assert predictor.record("loop", True) is False

    def test_two_bit_hysteresis(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.record("s", False)
        # Needs two takens to flip the prediction.
        assert predictor.record("s", True) is True
        assert predictor.record("s", True) is True
        assert predictor.record("s", True) is False

    def test_two_bit_alternating_mispredicts_often(self):
        predictor = TwoBitPredictor()
        outcomes = [bool(i % 2) for i in range(200)]
        missed = sum(predictor.record("alt", t) for t in outcomes)
        assert missed >= 90  # ~half or worse

    def test_two_bit_sites_independent(self):
        predictor = TwoBitPredictor()
        for _ in range(4):
            predictor.record("a", True)
            predictor.record("b", False)
        assert predictor.record("a", True) is False
        assert predictor.record("b", False) is False

    def test_gshare_learns_pattern(self):
        predictor = GShareBranchPredictor(history_bits=4)
        pattern = [True, True, False, False] * 100
        missed_late = 0
        for i, taken in enumerate(pattern):
            missed = predictor.record("p", taken)
            if i >= 300:
                missed_late += missed
        # With history the periodic pattern becomes predictable.
        assert missed_late < 20

    def test_gshare_bad_config(self):
        with pytest.raises(SimulationError):
            GShareBranchPredictor(history_bits=0)
        with pytest.raises(SimulationError):
            GShareBranchPredictor(history_bits=20, table_bits=8)

    def test_reset(self):
        predictor = TwoBitPredictor()
        predictor.record("x", False)
        predictor.reset()
        assert predictor.record("x", True) is False  # back to weakly-taken


class TestArena:
    def test_alloc_disjoint_and_aligned(self):
        arena = Arena(alignment=64)
        a = arena.alloc(100, "a")
        b = arena.alloc(10, "b")
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert b.base >= a.end

    def test_out_of_memory(self):
        arena = Arena(capacity=1024)
        with pytest.raises(OutOfMemoryError):
            arena.alloc(2048)

    def test_bad_size(self):
        with pytest.raises(SimulationError):
            Arena().alloc(0)

    def test_address_of_bounds(self):
        region = Arena().alloc(16, "r")
        assert region.address_of(0) == region.base
        with pytest.raises(SimulationError):
            region.address_of(16)

    def test_bytes_allocated(self):
        arena = Arena()
        arena.alloc(10)
        arena.alloc(20)
        assert arena.bytes_allocated == 30


class TestPerfCounters:
    def test_arithmetic(self):
        a = PerfCounters(instructions=10, l1_misses=2)
        b = PerfCounters(instructions=4, l1_misses=1)
        assert (a - b).instructions == 6
        assert (a + b).l1_misses == 3

    def test_rates(self):
        counters = PerfCounters(l1_hits=3, l1_misses=1, branches=10,
                                branch_mispredictions=5)
        assert counters.l1_miss_rate == 0.25
        assert counters.branch_miss_rate == 0.5

    def test_zero_rates(self):
        assert PerfCounters().l1_miss_rate == 0.0

    def test_str(self):
        assert "L1-miss" in str(PerfCounters())


class TestMachine:
    def test_read_counts(self):
        machine = Machine()
        region = machine.arena.alloc(64)
        machine.read(region.base, 4)
        machine.read(region.base, 4)
        counters = machine.snapshot()
        assert counters.reads == 2
        assert counters.l1_misses == 1 and counters.l1_hits == 1

    def test_branch_counts(self):
        machine = Machine()
        for taken in (True, False, True, False):
            machine.branch("site", taken)
        counters = machine.snapshot()
        assert counters.branches == 4
        assert counters.branch_mispredictions >= 1

    def test_overhead_counters(self):
        machine = Machine()
        machine.call(3)
        machine.interpret(2)
        machine.instr(5)
        counters = machine.snapshot()
        assert counters.function_calls == 3
        assert counters.interpretation_ops == 2
        assert counters.instructions == 10

    def test_cycles_monotone_in_misses(self):
        model = CostModel()
        cheap = PerfCounters(instructions=100, l1_hits=100)
        pricey = PerfCounters(instructions=100, l1_misses=100)
        assert model.cycles(pricey) > model.cycles(cheap)

    def test_measure_region(self):
        machine = Machine()
        region = machine.arena.alloc(64)
        machine.read(region.base, 4)  # outside the region of interest
        with machine.measure() as measured:
            machine.read(region.base, 4)
            machine.branch("b", True)
        assert measured.counters.reads == 1
        assert measured.counters.branches == 1
        assert measured.cycles > 0

    def test_reset(self):
        machine = Machine()
        region = machine.arena.alloc(64)
        machine.read(region.base, 4)
        machine.reset()
        assert machine.snapshot().reads == 0
        # Cache state cleared too: the next read misses again.
        machine.read(region.base, 4)
        assert machine.snapshot().l1_misses == 1

    def test_l2_counters_mirrored(self):
        machine = Machine(
            caches=CacheHierarchy(
                [CacheConfig(256, 64, 2), CacheConfig(1024, 64, 2)]
            )
        )
        base = machine.arena.alloc(4096).base
        for i in range(0, 4096, 64):
            machine.read(base + i, 1)
        for i in range(0, 4096, 64):
            machine.read(base + i, 1)
        counters = machine.snapshot()
        assert counters.l2_hits + counters.l2_misses > 0
