"""Tests for the experiment harness: results are well-formed and carry the
paper's qualitative shapes at tiny scales.
"""

import pytest

from repro.bench import (
    FigureResult,
    ablation_merge_path,
    ablation_radix_skip_copy,
    ablation_radix_switch,
    figure2_subsort_columnar,
    figure4_row_vs_columnar,
    figure6_dynamic_comparator,
    figure8_normalized_keys,
    figure9_radix_vs_pdqsort,
    figure10_counters_radix_pdq,
    rungen_comparison_budget,
    table1_hardware,
    table2_counters_columnar,
    table3_counters_row,
    table4_cardinalities,
)
from repro.workloads.distributions import (
    correlated_distribution,
    random_distribution,
)

TINY_SIZES = (64, 256)
TINY_KEYS = (1, 4)
TINY_DISTS = (random_distribution(), correlated_distribution(0.5))


class TestFigureResult:
    def test_render_contains_title_and_rows(self):
        result = FigureResult("x", "a title", ["a", "b"])
        result.add(a=1, b=2.5)
        text = result.render()
        assert "a title" in text and "2.5" in text

    def test_render_with_notes(self):
        result = FigureResult("x", "t", ["a"], notes="scaled down")
        result.add(a=1)
        assert "note: scaled down" in result.render()

    def test_column_values(self):
        result = FigureResult("x", "t", ["a"])
        result.add(a=1)
        result.add(a=2)
        assert result.column_values("a") == [1, 2]


class TestTables:
    def test_table1_mentions_simulator(self):
        assert "KiB" in table1_hardware().render()

    def test_table2_subsort_wins_both_counters(self):
        result = table2_counters_columnar(num_rows=1024)
        by_approach = {r["approach"]: r for r in result.rows}
        assert (
            by_approach["subsort"]["l1_misses"]
            < by_approach["tuple"]["l1_misses"]
        )
        assert (
            by_approach["subsort"]["branch_mispredictions"]
            < by_approach["tuple"]["branch_mispredictions"]
        )

    def test_table3_row_misses_much_lower_than_table2(self):
        columnar = table2_counters_columnar(num_rows=1024)
        row = table3_counters_row(num_rows=1024)
        col_tuple = columnar.rows[0]["l1_misses"]
        row_tuple = row.rows[0]["l1_misses"]
        assert row_tuple * 2 < col_tuple

    def test_table4_row_counts(self):
        result = table4_cardinalities(scale_down=100)
        rows = {(r["table"], r["scale_factor"]): r for r in result.rows}
        assert rows[("catalog_sales", 10)]["paper_rows"] == 14_401_261
        assert rows[("customer", 100)]["repro_rows"] == 20_000


class TestMicroFigures:
    def test_figure2_subsort_at_least_even_on_correlated(self):
        result = figure2_subsort_columnar(TINY_SIZES, TINY_KEYS, TINY_DISTS)
        for row in result.rows:
            if row["keys"] == 1:
                # One key: approaches are virtually equal.
                assert row["relative"] == pytest.approx(1.0, abs=0.25)
        correlated_multi = [
            r["relative"]
            for r in result.rows
            if r["distribution"] != "Random" and r["keys"] == 4
            and r["rows"] == max(TINY_SIZES)
        ]
        assert all(rel > 1.0 for rel in correlated_multi)

    def test_figure4_row_beats_columnar_at_larger_sizes(self):
        result = figure4_row_vs_columnar((1024, 4096), (4,), TINY_DISTS)
        large = [r for r in result.rows if r["rows"] == 4096]
        assert all(r["row_tuple_relative"] > 1.0 for r in large if
                   r["distribution"] != "Random")

    def test_figure6_dynamic_about_half_speed(self):
        result = figure6_dynamic_comparator(TINY_SIZES, (4,), TINY_DISTS)
        for row in result.rows:
            assert 0.3 < row["relative"] < 0.85

    def test_figure8_normalized_recovers_static(self):
        result = figure8_normalized_keys((256, 1024), (4,), TINY_DISTS)
        for row in result.rows:
            assert row["relative"] > 0.75
        dynamic = figure6_dynamic_comparator((1024,), (4,), TINY_DISTS)
        # Normalized keys clearly beat the dynamic comparator.
        assert min(r["relative"] for r in result.rows) > max(
            r["relative"] for r in dynamic.rows
        )

    def test_figure9_radix_wins_random(self):
        result = figure9_radix_vs_pdqsort((256, 1024), (1,), (random_distribution(),))
        assert all(r["relative"] > 1.0 for r in result.rows)

    def test_figure10_radix_branchless_more_misses(self):
        result = figure10_counters_radix_pdq(num_rows=2048)
        by_algo = {r["algorithm"]: r for r in result.rows}
        assert (
            by_algo["radix"]["branch_mispredictions"]
            < by_algo["pdqsort+memcmp"]["branch_mispredictions"] / 4
        )
        assert (
            by_algo["radix"]["l1_misses"]
            > by_algo["pdqsort+memcmp"]["l1_misses"]
        )


class TestAnalysis:
    def test_paper_example_80_percent(self):
        result = rungen_comparison_budget(sizes=(1_000_000,), thread_counts=(16,))
        share = result.rows[0]["rungen_share"]
        assert share == pytest.approx(0.8, abs=0.01)


class TestAblations:
    def test_merge_path_speedup_grows_with_threads(self):
        result = ablation_merge_path(thread_counts=(2, 16))
        speedups = result.column_values("speedup")
        assert speedups[1] > speedups[0] > 1.0

    def test_skip_copy_saves_work_on_correlated(self):
        result = ablation_radix_skip_copy(num_rows=512, correlation=1.0)
        by_variant = {r["variant"]: r for r in result.rows}
        assert (
            by_variant["skip-copy"]["cycles"]
            < by_variant["always-copy"]["cycles"]
        )
        assert (
            by_variant["skip-copy"]["swaps"]
            < by_variant["always-copy"]["swaps"]
        )

    def test_radix_switch_msd_wins_for_wide_keys(self):
        result = ablation_radix_switch(num_rows=512, key_counts=(1, 4))
        narrow, wide = result.rows
        # For 4-byte keys LSD is at least competitive; for wide keys MSD
        # gains (DuckDB's switch rule).
        assert wide["msd_over_lsd"] > narrow["msd_over_lsd"]
