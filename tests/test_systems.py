"""Tests for the end-to-end system models (Section VII claims)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.systems import (
    HardwareProfile,
    all_systems,
    comparison_profile,
    gather_facts,
    make_system,
    sort_comparisons,
)
from repro.systems.registry import SYSTEM_NAMES
from repro.table.table import Table
from repro.types.sortspec import SortSpec
from repro.workloads.tpcds import catalog_sales, customer


@pytest.fixture(scope="module")
def profile() -> HardwareProfile:
    return HardwareProfile().scaled(100)


@pytest.fixture(scope="module")
def sales() -> Table:
    return catalog_sales(40_000, 10, seed=11)


CS_KEYS = ("cs_warehouse_sk", "cs_ship_mode_sk", "cs_promo_sk", "cs_quantity")


def run_all(profile, table, spec, payload):
    return {
        s.name: s.benchmark_query(table, spec, payload)
        for s in all_systems(profile)
    }


class TestProfile:
    def test_random_access_cost_monotone(self, profile):
        costs = [
            profile.random_access_cost(size)
            for size in (1 << 8, 1 << 12, 1 << 16, 1 << 22)
        ]
        assert costs == sorted(costs)
        assert costs[0] >= profile.hit_cost
        assert costs[-1] <= profile.mem_cost + profile.hit_cost

    def test_stream_cost_linear(self, profile):
        assert profile.stream_cost(2048) == pytest.approx(
            2 * profile.stream_cost(1024)
        )

    def test_scaled_preserves_penalties(self):
        base = HardwareProfile()
        scaled = base.scaled(100)
        assert scaled.l1_bytes < base.l1_bytes
        assert scaled.mem_cost == base.mem_cost

    def test_scaled_validates(self):
        with pytest.raises(SimulationError):
            HardwareProfile().scaled(0)

    def test_sort_comparisons(self):
        assert sort_comparisons(1) == 0.0
        assert sort_comparisons(1024) == pytest.approx(1.1 * 1024 * 10)


class TestComparisonProfile:
    def test_first_column_always_examined(self, sales):
        spec = SortSpec.of(*CS_KEYS)
        cp = comparison_profile(sales, spec)
        assert cp.examine_probability[0] == 1.0

    def test_probabilities_decrease(self, sales):
        spec = SortSpec.of(*CS_KEYS)
        cp = comparison_profile(sales, spec)
        p = cp.examine_probability
        assert all(a >= b for a, b in zip(p, p[1:]))

    def test_low_cardinality_keys_tie_often(self, sales):
        spec = SortSpec.of(*CS_KEYS)
        cp = comparison_profile(sales, spec)
        # ~11 warehouses over 40k rows: the second column is examined in
        # most comparisons.
        assert cp.examine_probability[1] > 0.5

    def test_unique_key_never_ties(self):
        table = Table.from_numpy(
            {
                "u": np.arange(5000, dtype=np.int32),
                "v": np.arange(5000, dtype=np.int32),
            }
        )
        cp = comparison_profile(table, SortSpec.of("u", "v"))
        assert cp.examine_probability[1] < 0.01

    def test_distinct_prefix_counts(self, sales):
        cp = comparison_profile(sales, SortSpec.of(*CS_KEYS))
        assert cp.distinct_prefix[0] <= 16
        assert all(
            a <= b for a, b in zip(cp.distinct_prefix, cp.distinct_prefix[1:])
        )


class TestRegistry:
    def test_all_five_systems(self):
        assert set(SYSTEM_NAMES) == {
            "DuckDB",
            "ClickHouse",
            "MonetDB",
            "HyPer",
            "Umbra",
        }

    def test_unknown_system(self):
        with pytest.raises(SimulationError):
            make_system("Postgres")


class TestModelBasics:
    def test_positive_times_and_phases(self, profile, sales):
        runs = run_all(
            profile, sales, SortSpec.of(*CS_KEYS[:2]), ("cs_item_sk",)
        )
        for run in runs.values():
            assert run.seconds > 0
            assert run.phases
            assert run.cycles == pytest.approx(
                sum(c for _, c in run.phases)
            )

    def test_empty_table(self, profile):
        table = Table.from_pydict({"a": [], "b": []})
        for system in all_systems(profile):
            run = system.benchmark_query(table, SortSpec.of("a"), ("b",))
            assert run.seconds >= 0

    def test_models_share_reference_semantics(self, profile):
        table = Table.from_pydict({"a": [3, 1, None, 2], "b": [1, 2, 3, 4]})
        spec = SortSpec.of("a DESC NULLS LAST")
        results = [s.execute(table, spec) for s in all_systems(profile)]
        for result in results[1:]:
            assert result.equals(results[0])

    def test_facts_capture_strings(self, profile):
        table = customer(2000, 100, seed=1)
        facts = gather_facts(
            table,
            SortSpec.of("c_last_name", "c_first_name"),
            ("c_customer_sk",),
        )
        assert facts.has_string_key
        assert facts.avg_string_bytes > 2
        assert facts.payload_bytes == 4


class TestPaperShapeClaims:
    """Figures 12-14: who wins, by roughly what factor."""

    def test_monetdb_is_much_slower(self, profile, sales):
        runs = run_all(
            profile, sales, SortSpec.of(CS_KEYS[0]), ("cs_item_sk",)
        )
        fastest_parallel = min(
            run.seconds for name, run in runs.items() if name != "MonetDB"
        )
        assert runs["MonetDB"].seconds > 8 * fastest_parallel

    def test_duckdb_competitive_with_compiled(self, profile, sales):
        runs = run_all(
            profile, sales, SortSpec.of(*CS_KEYS), ("cs_item_sk",)
        )
        assert runs["DuckDB"].seconds <= 1.5 * runs["HyPer"].seconds
        assert runs["DuckDB"].seconds <= 1.5 * runs["Umbra"].seconds

    def test_clickhouse_cliff_from_one_to_two_keys(self, profile, sales):
        one = run_all(profile, sales, SortSpec.of(CS_KEYS[0]), ("cs_item_sk",))
        two = run_all(
            profile, sales, SortSpec.of(*CS_KEYS[:2]), ("cs_item_sk",)
        )
        ratio = two["ClickHouse"].seconds / one["ClickHouse"].seconds
        assert ratio > 2.5  # paper: ~4x (loses radix, gains random access)

    def test_row_systems_degrade_less_with_keys(self, profile, sales):
        one = run_all(profile, sales, SortSpec.of(CS_KEYS[0]), ("cs_item_sk",))
        four = run_all(profile, sales, SortSpec.of(*CS_KEYS), ("cs_item_sk",))

        def degradation(name):
            return four[name].seconds / one[name].seconds

        assert degradation("DuckDB") < degradation("ClickHouse")
        assert degradation("HyPer") < degradation("ClickHouse")
        assert degradation("HyPer") < degradation("Umbra")  # paper Fig 13

    def test_clickhouse_degrades_faster_with_rows(self, profile):
        rng = np.random.default_rng(0)

        def run_at(n):
            ints = rng.permutation(np.arange(n, dtype=np.int64) % (10 * n))
            table = Table.from_numpy({"x": ints.astype(np.int32)})
            return run_all(profile, table, SortSpec.of("x"), ("x",))

        small, large = run_at(20_000), run_at(400_000)
        duck_scaling = large["DuckDB"].seconds / small["DuckDB"].seconds
        click_scaling = (
            large["ClickHouse"].seconds / small["ClickHouse"].seconds
        )
        assert click_scaling > duck_scaling  # Fig 12's divergence

    def test_duckdb_floats_cost_like_ints(self, profile):
        rng = np.random.default_rng(1)
        n = 100_000
        ints = Table.from_numpy(
            {"x": rng.permutation(np.arange(n, dtype=np.int32))}
        )
        floats = Table.from_numpy(
            {"x": (rng.random(n) * 2e9 - 1e9).astype(np.float32)}
        )
        spec = SortSpec.of("x")
        duck_i = make_system("DuckDB", profile).benchmark_query(ints, spec, ("x",))
        duck_f = make_system("DuckDB", profile).benchmark_query(floats, spec, ("x",))
        click_i = make_system("ClickHouse", profile).benchmark_query(ints, spec, ("x",))
        click_f = make_system("ClickHouse", profile).benchmark_query(floats, spec, ("x",))
        duck_gap = duck_f.seconds / duck_i.seconds
        click_gap = click_f.seconds / click_i.seconds
        # Normalized keys make DuckDB type-oblivious; ClickHouse loses its
        # radix path on floats (paper, Section VII-B).
        assert duck_gap < 1.5
        assert click_gap > duck_gap

    def test_strings_slower_than_ints_for_all(self, profile):
        table = customer(20_000, 100, seed=2)
        ints = run_all(
            profile,
            table,
            SortSpec.of("c_birth_year", "c_birth_month", "c_birth_day"),
            ("c_customer_sk",),
        )
        strings = run_all(
            profile,
            table,
            SortSpec.of("c_last_name", "c_first_name"),
            ("c_customer_sk",),
        )
        for name in SYSTEM_NAMES:
            assert strings[name].seconds > ints[name].seconds, name

    def test_duckdb_matches_or_beats_on_strings(self, profile):
        # Paper: DuckDB "matches or outperforms" the others on strings.
        table = customer(20_000, 100, seed=2)
        strings = run_all(
            profile,
            table,
            SortSpec.of("c_last_name", "c_first_name"),
            ("c_customer_sk",),
        )
        best = min(run.seconds for run in strings.values())
        assert strings["DuckDB"].seconds <= 1.3 * best
        assert strings["DuckDB"].seconds < strings["ClickHouse"].seconds
        assert strings["DuckDB"].seconds < strings["MonetDB"].seconds
