"""Tests for the SQL subset parser."""

import pytest

from repro.errors import ParseError
from repro.engine.ast_nodes import (
    CountStar,
    StarSelection,
    SubqueryRef,
    TableRef,
)
from repro.engine.parser import parse, tokenize
from repro.types.sortspec import NullOrder, Order


class TestTokenizer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select from")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM"]

    def test_identifiers_keep_case(self):
        tokens = tokenize("SELECT cs_Item_sk FROM t")
        assert tokens[1].text == "cs_Item_sk"

    def test_numbers(self):
        tokens = tokenize("LIMIT 42")
        assert tokens[1].kind == "number" and tokens[1].text == "42"

    def test_symbols(self):
        tokens = tokenize("count(*) , ;")
        assert [t.text for t in tokens[:-1]] == ["COUNT", "(", "*", ")", ",", ";"]

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @ FROM t")

    def test_positions_tracked(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0 and tokens[1].position == 3


class TestParser:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.selection, StarSelection)
        assert stmt.source == TableRef("t")

    def test_column_list(self):
        stmt = parse("SELECT a, b FROM t")
        assert stmt.selection == ("a", "b")

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t")
        assert isinstance(stmt.selection, CountStar)

    def test_order_by_full(self):
        stmt = parse(
            "SELECT * FROM t ORDER BY a DESC NULLS LAST, b ASC NULLS FIRST, c"
        )
        a, b, c = stmt.order_by
        assert a.order is Order.DESCENDING
        assert a.null_order is NullOrder.NULLS_LAST
        assert b.null_order is NullOrder.NULLS_FIRST
        assert c.order is Order.ASCENDING and c.null_order is None

    def test_limit_offset(self):
        stmt = parse("SELECT * FROM t LIMIT 10 OFFSET 3")
        assert stmt.limit == 10 and stmt.offset == 3

    def test_offset_only(self):
        stmt = parse("SELECT * FROM t OFFSET 1")
        assert stmt.limit is None and stmt.offset == 1

    def test_subquery_with_alias(self):
        stmt = parse(
            "SELECT count(*) FROM (SELECT a FROM t ORDER BY b OFFSET 1) AS q"
        )
        assert isinstance(stmt.source, SubqueryRef)
        assert stmt.source.alias == "q"
        inner = stmt.source.query
        assert inner.selection == ("a",)
        assert inner.offset == 1

    def test_subquery_alias_without_as(self):
        stmt = parse("SELECT count(*) FROM (SELECT a FROM t) q")
        assert stmt.source.alias == "q"

    def test_trailing_semicolon(self):
        parse("SELECT * FROM t;")

    def test_sort_spec_conversion(self):
        stmt = parse("SELECT * FROM t ORDER BY x DESC")
        spec = stmt.sort_spec()
        assert spec.keys[0].descending

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT FROM t",
            "SELECT * FROM t ORDER a",
            "SELECT * FROM t ORDER BY",
            "SELECT * FROM t LIMIT x",
            "SELECT count(* FROM t",
            "SELECT count() FROM t",
            "SELECT * FROM (SELECT a FROM t",
            "SELECT * FROM t ORDER BY a NULLS SIDEWAYS",
            "SELECT * FROM t extra garbage",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse(bad)
