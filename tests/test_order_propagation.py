"""Differential tests for planner-level order propagation.

Every fast path the order-property framework enables -- sort elision,
prefix subsumption, tie-group refinement, presorted GROUP BY/window,
merge joins over pre-sorted inputs, and prefix-serving result-cache
hits -- is checked for **byte identity** against the same query run
with ``propagate_order=False``: the differential oracle that re-sorts
everything in full.  The suites parameterize over the scenario catalog
(:mod:`repro.workloads.scenarios`), so skew, near-sortedness,
duplicate-heavy keys, NULL mixes, and truncated long-VARCHAR prefixes
all pass through the same assertions.

The refinement boundary is pinned exactly where
:func:`repro.sort.stringsort.refinement_must_defer` draws it: a
truncated VARCHAR in the *provided prefix* refines in place, while one
in the suffix followed by further ORDER BY columns must fall back to a
full sort (counted by ``refine_fallbacks``) -- and both sides of the
boundary stay byte-identical to the oracle.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.service import SortService
from repro.sort.operator import sort_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec
from repro.window.functions import WindowFunction, WindowSpec, window
from repro.workloads.scenarios import SCENARIOS

ROWS = 2_000
SEED = 29

ALL_SCENARIOS = sorted(SCENARIOS)


def _spec(order_by: str) -> SortSpec:
    return SortSpec.of(*(part.strip() for part in order_by.split(",")))


def _first_key(order_by: str) -> str:
    return order_by.split(",")[0].strip()


def _view_db(scenario: str, declared: str | None = None, rows: int = ROWS):
    """A database with view ``v``: the scenario table sorted+declared."""
    sc = SCENARIOS[scenario]
    declared = declared or sc.order_by
    db = Database()
    db.register("v", sort_table(sc.table(rows, seed=SEED), _spec(declared)))
    db.declare_ordering("v", declared)
    return db, sc


def _counters(stats_list):
    return {
        "elided": sum(s.sorts_elided for s in stats_list),
        "subsumed": sum(s.sorts_subsumed for s in stats_list),
        "refined": sum(s.sorts_refined for s in stats_list),
        "fallbacks": sum(s.refine_fallbacks for s in stats_list),
    }


class TestSortElision:
    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_exact_order_elided_and_identical(self, scenario):
        db, sc = _view_db(scenario)
        sql = f"SELECT * FROM v ORDER BY {sc.order_by}"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced), scenario
        assert _counters(stats)["elided"] == 1
        assert "elided" in db.explain(sql)

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_prefix_order_subsumed_and_identical(self, scenario):
        """ORDER BY a leading prefix of the declared ordering.

        The forced oracle stable-sorts the view table by the prefix
        alone: ties stay in view order, which IS the declared full
        ordering -- so skipping the sort is byte-identical.
        """
        db, sc = _view_db(scenario)
        sql = f"SELECT * FROM v ORDER BY {_first_key(sc.order_by)}"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced), scenario
        assert _counters(stats)["subsumed"] == 1
        assert "subsumed" in db.explain(sql)

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_provided_prefix_refined_and_identical(self, scenario):
        """Declared ordering covers only the first ORDER BY key.

        The planner downgrades the sort to tie-group refinement; where
        the refinement pass declines (truncated-VARCHAR suffix followed
        by more keys) it falls back to a full sort.  Either way the
        output must match the forced full re-sort byte for byte.
        """
        order_by = SCENARIOS[scenario].order_by
        db, sc = _view_db(scenario, declared=_first_key(order_by))
        sql = f"SELECT * FROM v ORDER BY {order_by}"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced), scenario
        counters = _counters(stats)
        assert counters["refined"] + counters["fallbacks"] == 1
        assert "refine" in db.explain(sql)

    def test_truncated_prefix_refines_in_place(self):
        """Truncated VARCHAR in the *provided prefix*: refinement runs.

        The view is exactly sorted on ``s`` (long strings beyond the
        key prefix); the suffix key ``p`` is exact, so
        ``refinement_must_defer`` does not apply and the cheap path
        serves the sort.
        """
        db, _ = _view_db("long_string", declared="s")
        sql = "SELECT * FROM v ORDER BY s, p"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced)
        counters = _counters(stats)
        assert counters["refined"] == 1
        assert counters["fallbacks"] == 0

    def test_truncated_suffix_defers_to_full_sort(self):
        """Truncated VARCHAR in the suffix, followed by another key.

        ``refinement_must_defer`` reports the suffix byte order inexact
        past the truncated segment, so the refinement pass must decline
        and the operator must fall back to a full sort -- counted, and
        still byte-identical.
        """
        db, _ = _view_db("mixed_null", declared="a NULLS FIRST")
        sql = "SELECT * FROM v ORDER BY a NULLS FIRST, s, f DESC"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced)
        counters = _counters(stats)
        assert counters["fallbacks"] == 1
        assert counters["refined"] == 0

    def test_propagation_off_is_the_oracle(self):
        """``propagate_order=False`` plans contain no elision markers."""
        db, sc = _view_db("uniform")
        sql = f"SELECT * FROM v ORDER BY {sc.order_by}"
        plan_text = db.explain(sql, propagate_order=False)
        assert "elided" not in plan_text
        assert "subsumed" not in plan_text
        _, stats = db.execute_bound(db.plan(sql, propagate_order=False))
        assert _counters(stats)["elided"] == 0


class TestPresortedAggregation:
    @pytest.mark.parametrize(
        "scenario", ["uniform", "dup_heavy", "long_string", "tpcds_catalog"]
    )
    def test_groupby_over_sorted_input(self, scenario):
        sc = SCENARIOS[scenario]
        key = _first_key(sc.order_by)
        other = next(
            c.name for c in sc.table(4, seed=SEED).schema.columns
            if c.name != key
        )
        db, _ = _view_db(scenario, declared=key)
        sql = f"SELECT {key}, count(*), sum({other}) FROM v GROUP BY {key}"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced), scenario
        assert _counters(stats)["elided"] == 1
        assert "presorted" in db.explain(sql)

    def test_groupby_unsorted_input_still_sorts(self):
        db = Database()
        db.register("t", SCENARIOS["uniform"].table(ROWS, seed=SEED))
        sql = "SELECT a, count(*) FROM t GROUP BY a"
        result, stats = db.execute_detailed(sql)
        assert result.equals(db.execute(sql, propagate_order=False))
        assert _counters(stats)["elided"] == 0

    def test_window_presorted_fast_path(self):
        """Library-level window(): presorted=True is byte-identical."""
        table = SCENARIOS["dup_heavy"].table(ROWS, seed=SEED)
        spec = WindowSpec.of(partition_by=["a"], order_by=["p"])
        functions = [
            WindowFunction("row_number"),
            WindowFunction("running_sum", column="p", output="rsum"),
        ]
        baseline = window(table, spec, functions)
        presorted = window(
            sort_table(table, spec.sort_spec()),
            spec,
            functions,
            presorted=True,
        )
        assert presorted.equals(baseline)


class TestMergeJoin:
    @pytest.mark.parametrize(
        "sorted_sides", [(), ("l",), ("r",), ("l", "r")]
    )
    def test_join_elides_per_presorted_side(self, sorted_sides):
        sc = SCENARIOS["tpcds_catalog"]
        key = SortSpec.of("cs_item_sk")
        db = Database()
        for name, side, seed in (("l", "l", SEED), ("r", "r", SEED + 1)):
            table = sc.table(ROWS if side == "l" else ROWS // 2, seed=seed)
            if side in sorted_sides:
                db.register(name, sort_table(table, key))
                db.declare_ordering(name, "cs_item_sk")
            else:
                db.register(name, table)
        sql = "SELECT * FROM l JOIN r ON cs_item_sk = cs_item_sk"
        forced = db.execute(sql, propagate_order=False)
        result, stats = db.execute_detailed(sql)
        assert result.equals(forced)
        assert result.num_rows > 0, "join matched nothing; test is vacuous"
        assert _counters(stats)["elided"] == len(sorted_sides)

    def test_string_key_join_beyond_prefix(self):
        """Join keys whose first 12 bytes collide: exact recheck path."""
        base = SCENARIOS["long_string"].table(400, seed=SEED)
        db = Database()
        db.register("l", base)
        db.register("r", base.slice(0, 150))  # guaranteed overlap
        sql = "SELECT * FROM l JOIN r ON s = s"
        forced = db.execute(sql, propagate_order=False)
        result, _ = db.execute_detailed(sql)
        assert result.equals(forced)
        assert result.num_rows >= 150


class TestIncrementalViewScan:
    def test_published_view_scan_elides(self):
        sc = SCENARIOS["uniform"]
        table = sc.table(ROWS, seed=SEED)
        db = Database()
        db.register("t", table)
        with SortService(
            db, memory_budget=64 << 20, workers=1, cache_capacity=4
        ) as service:
            service.maintain_view("mv", "t", sc.order_by)
            third = ROWS // 3
            for delta in (
                table.slice(0, third),
                table.slice(third, 2 * third),
                table.slice(2 * third, ROWS),
            ):
                service.append_delta("mv", delta).result(timeout=60)
            service.publish_view("mv")
            sql = f"SELECT * FROM mv ORDER BY {sc.order_by}"
            served = service.submit(sql).result(timeout=60)
            stats = service.stats
        forced = db.execute(sql, propagate_order=False)
        assert served.equals(forced)
        assert stats.sorts_elided == 1
        assert "elided" in db.explain(sql)


class TestResultCacheNormalization:
    def _service(self, db):
        return SortService(
            db, memory_budget=64 << 20, workers=1, cache_capacity=8
        )

    def test_keyword_case_shares_one_entry(self):
        db = Database()
        db.register("t", SCENARIOS["uniform"].table(ROWS, seed=SEED))
        with self._service(db) as service:
            first = service.submit("SELECT * FROM t ORDER BY a, p").result(
                timeout=60
            )
            second = service.submit("select * from t order by a, p").result(
                timeout=60
            )
            stats = service.stats
        assert second.equals(first)
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1

    def test_string_literal_case_is_distinct(self):
        """Case matters inside string literals, never outside them."""
        db = Database()
        db.register("t", SCENARIOS["long_string"].table(ROWS, seed=SEED))
        with self._service(db) as service:
            service.submit("SELECT * FROM t WHERE s > 'ab' ORDER BY s").result(
                timeout=60
            )
            service.submit("SELECT * FROM t WHERE s > 'AB' ORDER BY s").result(
                timeout=60
            )
            stats = service.stats
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2


class TestPrefixServing:
    def _warm(self, db, full_sql):
        service = SortService(
            db, memory_budget=64 << 20, workers=1, cache_capacity=8
        )
        service.submit(full_sql).result(timeout=60)
        return service

    def test_topn_sliced_from_cached_full(self):
        db = Database()
        db.register("t", SCENARIOS["uniform"].table(ROWS, seed=SEED))
        full_sql = "SELECT * FROM t ORDER BY a, p"
        with self._warm(db, full_sql) as service:
            for limit, offset in ((10, 0), (25, 7), (ROWS + 50, 0)):
                sql = f"{full_sql} LIMIT {limit} OFFSET {offset}"
                served = service.submit(sql).result(timeout=60)
                direct = db.execute(sql, propagate_order=False)
                assert served.equals(direct), (limit, offset)
            stats = service.stats
        assert stats.cache_prefix_hits == 3

    def test_prefix_compatible_orderby_served(self):
        """ORDER BY a is served from the cached ORDER BY a, p result.

        Ties within equal ``a`` follow the cached spec's ``p`` order
        (documented in :mod:`repro.service.cache`), so the oracle is
        the cached spec's own slice -- still sorted by ``a``.
        """
        db = Database()
        db.register("t", SCENARIOS["uniform"].table(ROWS, seed=SEED))
        full_sql = "SELECT * FROM t ORDER BY a, p"
        with self._warm(db, full_sql) as service:
            served = service.submit(
                "SELECT * FROM t ORDER BY a LIMIT 40"
            ).result(timeout=60)
            stats = service.stats
        assert stats.cache_prefix_hits == 1
        oracle = db.execute(
            f"{full_sql} LIMIT 40", propagate_order=False
        )
        assert served.equals(oracle)
        assert served.is_sorted_by(SortSpec.of("a"))

    def test_non_prefix_orderby_not_served(self):
        db = Database()
        db.register("t", SCENARIOS["uniform"].table(ROWS, seed=SEED))
        with self._warm(db, "SELECT * FROM t ORDER BY a, p") as service:
            served = service.submit(
                "SELECT * FROM t ORDER BY p LIMIT 5"
            ).result(timeout=60)
            stats = service.stats
        assert stats.cache_prefix_hits == 0
        assert served.equals(
            db.execute(
                "SELECT * FROM t ORDER BY p LIMIT 5", propagate_order=False
            )
        )

    def test_table_version_bump_invalidates_prefix(self):
        sc = SCENARIOS["uniform"]
        db = Database()
        db.register("t", sc.table(ROWS, seed=SEED))
        with self._warm(db, "SELECT * FROM t ORDER BY a, p") as service:
            db.register("t", sc.table(ROWS, seed=SEED + 1))  # new version
            served = service.submit(
                "SELECT * FROM t ORDER BY a, p LIMIT 5"
            ).result(timeout=60)
            stats = service.stats
        assert stats.cache_prefix_hits == 0
        assert served.equals(
            db.execute(
                "SELECT * FROM t ORDER BY a, p LIMIT 5",
                propagate_order=False,
            )
        )
