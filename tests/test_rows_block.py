"""Tests for the NSM row format: layout, round trips, gathers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rows.block import RowBlock
from repro.rows.layout import ROW_ALIGNMENT, STRING_SLOT_WIDTH, RowLayout
from repro.table.table import Table
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    VARCHAR,
)
from repro.types.schema import Schema


class TestRowLayout:
    def test_row_width_is_8_byte_aligned(self):
        schema = Schema.of(("a", INTEGER), ("b", SMALLINT), ("s", VARCHAR))
        layout = RowLayout.for_schema(schema)
        assert layout.row_width % ROW_ALIGNMENT == 0

    def test_slots_are_naturally_aligned(self):
        schema = Schema.of(
            ("x", BOOLEAN), ("y", BIGINT), ("z", SMALLINT), ("w", DOUBLE)
        )
        layout = RowLayout.for_schema(schema)
        for slot in layout.slots:
            alignment = 4 if slot.is_string else slot.width
            assert slot.offset % alignment == 0

    def test_slots_do_not_overlap(self):
        schema = Schema.of(
            ("a", INTEGER), ("s", VARCHAR), ("b", BIGINT), ("c", BOOLEAN)
        )
        layout = RowLayout.for_schema(schema)
        spans = sorted(
            (s.offset, s.offset + s.width) for s in layout.slots
        )
        assert spans[0][0] >= layout.validity_bytes
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_string_slot_width(self):
        schema = Schema.of(("s", VARCHAR))
        assert RowLayout.for_schema(schema).slot("s").width == STRING_SLOT_WIDTH

    def test_validity_bytes_scale_with_columns(self):
        nine = Schema.of(*((f"c{i}", INTEGER) for i in range(9)))
        assert RowLayout.for_schema(nine).validity_bytes == 2

    def test_validity_positions(self):
        schema = Schema.of(*((f"c{i}", INTEGER) for i in range(10)))
        layout = RowLayout.for_schema(schema)
        assert layout.validity_position(0) == (0, 0)
        assert layout.validity_position(9) == (1, 1)


def mixed_table() -> Table:
    return Table.from_pydict(
        {
            "id": [1, 2, 3, 4],
            "name": ["alpha", None, "", "délta"],
            "score": [1.5, -2.0, None, 0.0],
            "flag": [True, False, True, None],
        }
    )


class TestRowBlockRoundTrip:
    def test_round_trip(self):
        table = mixed_table()
        assert RowBlock.from_table(table).to_table().equals(table)

    def test_empty_table(self):
        table = Table.from_pydict({"a": []})
        assert RowBlock.from_table(table).to_table().equals(table)

    def test_point_values(self):
        block = RowBlock.from_table(mixed_table())
        assert block.value(0, "name") == "alpha"
        assert block.value(1, "name") is None
        assert block.value(3, "name") == "délta"
        assert block.value(2, "score") is None
        assert block.value(1, "score") == -2.0
        assert block.value(0, "flag") is True

    def test_take_reorders_rows(self):
        table = mixed_table()
        block = RowBlock.from_table(table).take(np.array([3, 1]))
        assert block.to_table().equals(table.take(np.array([3, 1])))

    def test_concat_rebases_string_heap(self):
        table = mixed_table()
        block = RowBlock.from_table(table)
        doubled = block.concat(block)
        expected = table.concat(table)
        assert doubled.to_table().equals(expected)

    def test_concat_then_take(self):
        table = mixed_table()
        block = RowBlock.from_table(table)
        combined = block.concat(block).take(np.array([7, 0, 4]))
        expected = table.concat(table).take(np.array([7, 0, 4]))
        assert combined.to_table().equals(expected)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-(2**31), 2**31 - 1)),
                st.one_of(st.none(), st.text(max_size=20)),
                st.one_of(
                    st.none(), st.floats(allow_nan=False, width=32)
                ),
            ),
            min_size=0,
            max_size=30,
        )
    )
    def test_round_trip_property(self, rows):
        table = Table.from_pydict(
            {
                "i": [r[0] for r in rows],
                "s": [r[1] for r in rows],
                "f": [r[2] for r in rows],
            },
            dtypes={"i": INTEGER, "s": VARCHAR, "f": FLOAT},
        )
        assert RowBlock.from_table(table).to_table().equals(table)
