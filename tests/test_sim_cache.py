"""Tests for the cache simulator: geometry, LRU, and hit/miss behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.cache import CacheConfig, CacheHierarchy, CacheLevel


def tiny_cache(size=256, line=64, ways=2) -> CacheLevel:
    return CacheLevel(CacheConfig(size, line, ways))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(4096, 64, 8)
        assert config.num_sets == 8

    def test_bad_geometry(self):
        with pytest.raises(SimulationError):
            CacheConfig(0, 64, 8)

    def test_indivisible_geometry(self):
        with pytest.raises(SimulationError):
            CacheConfig(1000, 64, 8)

    def test_non_power_of_two_line(self):
        with pytest.raises(SimulationError):
            CacheLevel(CacheConfig(4 * 48 * 3, 48, 4))


class TestCacheLevel:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access_line(0) is False
        assert cache.access_line(0) is True
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_lines_in_same_set_fill_ways(self):
        cache = tiny_cache(size=256, line=64, ways=2)  # 2 sets
        # Lines 0 and 2 map to set 0 (2 sets).
        cache.access_line(0)
        cache.access_line(2)
        assert cache.access_line(0) is True
        assert cache.access_line(2) is True

    def test_lru_eviction(self):
        cache = tiny_cache(size=256, line=64, ways=2)  # 2 sets, 2 ways
        cache.access_line(0)  # set 0: [0]
        cache.access_line(2)  # set 0: [2, 0]
        cache.access_line(4)  # evicts 0 (LRU)
        assert cache.access_line(2) is True
        assert cache.access_line(0) is False  # was evicted
        assert cache.evictions >= 1

    def test_lru_updated_on_hit(self):
        cache = tiny_cache(size=256, line=64, ways=2)
        cache.access_line(0)
        cache.access_line(2)
        cache.access_line(0)  # 0 becomes MRU
        cache.access_line(4)  # evicts 2, not 0
        assert cache.access_line(0) is True
        assert cache.access_line(2) is False

    def test_reset(self):
        cache = tiny_cache()
        cache.access_line(0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access_line(0) is False

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), max_size=200))
    def test_working_set_within_capacity_never_misses_twice(self, lines):
        # 32 lines capacity, 21 distinct lines touched: every line misses
        # at most once (fully associative would guarantee it; here the
        # set-associative cache has 2 sets * 16 ways = enough ways).
        cache = tiny_cache(size=64 * 32, line=64, ways=16)
        misses = sum(not cache.access_line(line) for line in lines)
        assert misses <= len(set(lines))


class TestCacheHierarchy:
    def test_requires_levels(self):
        with pytest.raises(SimulationError):
            CacheHierarchy([])

    def test_mismatched_line_sizes(self):
        with pytest.raises(SimulationError):
            CacheHierarchy(
                [CacheConfig(1024, 64, 2), CacheConfig(4096, 128, 2)]
            )

    def test_multi_line_access_counts_each_line(self):
        hierarchy = CacheHierarchy([CacheConfig(4096, 64, 8)])
        assert hierarchy.access(0, 256) == 4  # 4 cold lines

    def test_straddling_access(self):
        hierarchy = CacheHierarchy([CacheConfig(4096, 64, 8)])
        assert hierarchy.access(60, 8) == 2  # crosses a line boundary

    def test_l2_absorbs_l1_evictions(self):
        hierarchy = CacheHierarchy.scaled_default()
        l1_capacity_lines = 4 * 1024 // 64
        # Touch twice the L1 capacity, twice.
        for _ in range(2):
            for line in range(2 * l1_capacity_lines):
                hierarchy.access(line * 64, 1)
        l2 = hierarchy.levels[1]
        assert l2.hits > 0  # second sweep misses L1 but hits L2

    def test_sequential_scan_miss_rate(self):
        hierarchy = CacheHierarchy([CacheConfig(4096, 64, 8)])
        for byte in range(0, 8192):
            hierarchy.access(byte, 1)
        l1 = hierarchy.l1
        # One miss per 64-byte line.
        assert l1.misses == 8192 // 64
        assert l1.hits == 8192 - l1.misses

    def test_invalid_size(self):
        hierarchy = CacheHierarchy.scaled_default()
        with pytest.raises(SimulationError):
            hierarchy.access(0, 0)

    def test_str(self):
        assert "L1" in str(CacheHierarchy.scaled_default())
