"""The concurrent query service: governor, admission, cancellation, cache.

The acceptance bar mirrors the robustness posture of the service layer:
under a memory budget sized for two queries, eight concurrent external
sorts must all complete byte-identical to their serial runs with the
governor's forced spills visible in stats; a deliberately overloaded
service must reject or shed with typed errors instead of OOMing or
deadlocking; and no outcome -- completion, cancellation, timeout,
shedding -- may leak a grant, a spill file, or a thread.
"""

from __future__ import annotations

import glob
import os
import tempfile
import threading
import time

import numpy as np
import pytest

from test_external_kway import assert_byte_identical, mixed_table
from repro.engine import Database
from repro.errors import (
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadError,
    ServiceShutdownError,
    SortCancelledError,
)
from repro.service import (
    MemoryGovernor,
    Priority,
    ResultCache,
    SortService,
)
from repro.sort.operator import SortConfig
from repro.table.table import Table


def spill_dirs() -> set:
    return set(glob.glob(os.path.join(tempfile.gettempdir(), "repro-spill-*")))


def service_threads() -> list:
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("repro-service", "spill-prefetch"))
    ]


def int_table(rng, n: int) -> Table:
    return Table.from_pydict(
        {
            "a": [int(v) for v in rng.integers(0, 10_000, n)],
            "b": [int(v) for v in rng.integers(0, 50, n)],
            "seq": list(range(n)),
        }
    )


class GatedDatabase(Database):
    """A database whose query execution blocks until a gate opens.

    Lets admission tests fill the queue deterministically: the single
    worker parks inside ``execute_bound`` while the test submits, then
    the gate opens and everything drains.
    """

    def __init__(self, sort_config=None):
        super().__init__(sort_config)
        self.gate = threading.Event()
        self.entered = threading.Event()  # set once a worker reaches the gate

    def execute_bound(self, logical, sort_config=None):
        self.entered.set()
        self.gate.wait(timeout=30)
        return super().execute_bound(logical, sort_config)


# --------------------------------------------------------------------- #
# Governor unit tests
# --------------------------------------------------------------------- #


class TestMemoryGovernor:
    def test_single_grant_gets_full_budget(self):
        governor = MemoryGovernor(1 << 20, min_grant_bytes=64 << 10)
        with governor.acquire("q1") as grant:
            assert grant.granted_bytes == 1 << 20
        assert governor.active_grants == 0

    def test_admission_revokes_fair_shares(self):
        governor = MemoryGovernor(1 << 20, min_grant_bytes=64 << 10)
        first = governor.acquire("q1")
        assert first.granted_bytes == 1 << 20
        second = governor.acquire("q2")
        # Admitting q2 shrank q1's grant in place: a revocation.
        assert first.granted_bytes == (1 << 20) // 2
        assert second.granted_bytes == (1 << 20) // 2
        assert governor.stats.revocations >= 1
        second.release()
        # Shares regrow when a peer leaves.
        assert first.granted_bytes == 1 << 20
        first.release()

    def test_grant_to_rows_translation(self):
        governor = MemoryGovernor(1 << 20, row_bytes=64)
        with governor.acquire("q1") as grant:
            assert grant.effective_run_threshold(10 ** 9) == (1 << 20) // 64
            # Capped at the configured base, floored at one row.
            assert grant.effective_run_threshold(100) == 100
            grant.granted_bytes = 0
            assert grant.effective_run_threshold(100) == 1

    def test_acquire_blocks_then_times_out_typed(self):
        governor = MemoryGovernor(128 << 10, min_grant_bytes=128 << 10)
        assert governor.max_active == 1
        holder = governor.acquire("q1")
        starved = []
        with pytest.raises(ServiceOverloadError) as info:
            governor.acquire(
                "q2", timeout_s=0.15, on_starved=lambda: starved.append(1)
            )
        assert info.value.retry_after_s > 0
        assert len(starved) >= 1  # fired on every wait slice
        assert governor.stats.grant_timeouts == 1
        assert governor.stats.grant_waits == 1  # one acquire, counted once
        holder.release()
        # The budget is free again: acquire succeeds immediately.
        governor.acquire("q3", timeout_s=0.1).release()

    def test_release_unblocks_waiter(self):
        governor = MemoryGovernor(128 << 10, min_grant_bytes=128 << 10)
        holder = governor.acquire("q1")
        got = []

        def waiter():
            grant = governor.acquire("q2", timeout_s=5.0)
            got.append(grant)
            grant.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        holder.release()
        thread.join(timeout=5)
        assert len(got) == 1
        assert governor.stats.grant_wait_s > 0

    def test_spill_accounting_high_watermark(self):
        governor = MemoryGovernor(1 << 20)
        first = governor.acquire("q1")
        second = governor.acquire("q2")
        first.record_spill(1000)
        second.record_spill(500)
        assert governor.concurrent_spill_bytes == 1500
        first.release()
        assert governor.concurrent_spill_bytes == 500
        second.record_spill(200)
        second.release()
        assert governor.concurrent_spill_bytes == 0
        assert governor.stats.peak_concurrent_spill_bytes == 1500

    def test_release_is_idempotent(self):
        governor = MemoryGovernor(1 << 20)
        grant = governor.acquire("q1")
        grant.release()
        grant.release()
        assert governor.active_grants == 0
        assert governor.stats.grants_issued == 1

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ServiceError):
            MemoryGovernor(0)


# --------------------------------------------------------------------- #
# Result cache unit tests
# --------------------------------------------------------------------- #


class TestResultCache:
    def test_key_normalizes_whitespace(self):
        versions = (("t", 1),)
        assert ResultCache.key(
            "SELECT  *\nFROM t   ORDER BY a", versions
        ) == ResultCache.key("SELECT * FROM t ORDER BY a", versions)

    def test_version_bump_changes_key(self):
        assert ResultCache.key("q", (("t", 1),)) != ResultCache.key(
            "q", (("t", 2),)
        )

    def test_lru_eviction(self, rng):
        cache = ResultCache(capacity=2)
        tables = [int_table(rng, 4) for _ in range(3)]
        keys = [ResultCache.key(f"q{i}", ()) for i in range(3)]
        cache.put(keys[0], tables[0])
        cache.put(keys[1], tables[1])
        assert cache.get(keys[0]) is tables[0]  # refresh key 0
        cache.put(keys[2], tables[2])  # evicts key 1, the LRU
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is tables[0]
        assert cache.get(keys[2]) is tables[2]
        assert cache.hits == 3 and cache.misses == 1

    def test_zero_capacity_disables(self, rng):
        cache = ResultCache(capacity=0)
        key = ResultCache.key("q", ())
        cache.put(key, int_table(rng, 2))
        assert cache.get(key) is None
        assert len(cache) == 0


# --------------------------------------------------------------------- #
# Service basics: results, cache wiring, lifecycle
# --------------------------------------------------------------------- #


class TestServiceBasics:
    def test_matches_serial_execution(self, rng):
        db = Database()
        db.register("t", int_table(rng, 3000))
        expected = db.execute("SELECT * FROM t ORDER BY a, seq")
        with SortService(db, memory_budget=4 << 20, workers=2) as service:
            result = service.execute("SELECT * FROM t ORDER BY a, seq")
        assert_byte_identical(result, expected)

    def test_topn_and_group_by_run_through_service(self, rng):
        db = Database()
        db.register("t", int_table(rng, 3000))
        with SortService(db, memory_budget=4 << 20, workers=2) as service:
            topn = service.execute(
                "SELECT a, seq FROM t ORDER BY a DESC LIMIT 7"
            )
            grouped = service.execute(
                "SELECT b, count(*) FROM t GROUP BY b"
            )
        assert topn.num_rows == 7
        assert grouped.num_rows == 50

    def test_cache_hit_and_invalidation_on_register(self, rng):
        db = Database()
        db.register("t", int_table(rng, 2000))
        sql = "SELECT * FROM t ORDER BY a, seq"
        with SortService(db, memory_budget=4 << 20, workers=2) as service:
            first = service.submit(sql)
            first.result(timeout=30)
            assert not first.from_cache
            again = service.submit("SELECT  *  FROM t ORDER BY a, seq")
            again.result(timeout=30)
            assert again.from_cache  # whitespace-normalized key matched
            assert again.result(timeout=1) is first.result(timeout=1)

            # A write bumps the table version: the cached entry's key is
            # never asked for again.
            replacement = int_table(rng, 500)
            db.register("t", replacement)
            fresh = service.submit(sql)
            result = fresh.result(timeout=30)
            assert not fresh.from_cache
            assert result.num_rows == 500
            stats = service.stats
            assert stats.cache_hits == 1
            assert stats.cache_misses == 2

    def test_shutdown_fails_queued_and_refuses_new(self, rng):
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        service = SortService(
            db, memory_budget=4 << 20, workers=1, queue_limit=8
        )
        running = service.submit("SELECT * FROM t ORDER BY a")
        assert db.entered.wait(5)  # the worker holds it at the gate
        queued = [
            service.submit("SELECT * FROM t ORDER BY seq") for _ in range(3)
        ]
        db.gate.set()
        service.shutdown()
        running.result(timeout=30)  # the in-flight query still finishes
        for ticket in queued[-2:]:  # the tail of the queue never ran
            if ticket.exception() is not None:
                assert isinstance(ticket.exception(), ServiceShutdownError)
        with pytest.raises(ServiceShutdownError):
            service.submit("SELECT * FROM t ORDER BY a")
        assert not service_threads()

    def test_result_timeout_is_typed(self, rng):
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        with SortService(db, memory_budget=4 << 20, workers=1) as service:
            ticket = service.submit("SELECT * FROM t ORDER BY a")
            with pytest.raises(ServiceError):
                ticket.result(timeout=0.05)
            db.gate.set()
            ticket.result(timeout=30)


# --------------------------------------------------------------------- #
# Admission control, shedding, deadlines, cancellation
# --------------------------------------------------------------------- #


class TestAdmissionAndCancellation:
    def test_full_queue_rejects_with_retry_after(self, rng):
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        with SortService(
            db, memory_budget=4 << 20, workers=1, queue_limit=2
        ) as service:
            tickets = [service.submit("SELECT * FROM t ORDER BY a")]
            assert db.entered.wait(5)  # worker parked; queue is empty
            # Worker holds ticket 0 at the gate; two more fill the queue.
            tickets += [
                service.submit("SELECT * FROM t ORDER BY seq"),
                service.submit("SELECT * FROM t ORDER BY a DESC"),
            ]
            with pytest.raises(ServiceOverloadError) as info:
                service.submit("SELECT * FROM t ORDER BY b")
            assert info.value.retry_after_s > 0
            assert not info.value.shed
            db.gate.set()
            for ticket in tickets:
                ticket.result(timeout=30)
            stats = service.stats
        assert stats.rejected == 1
        assert stats.admitted == 3
        assert stats.queue_peak == 2

    def test_high_priority_sheds_queued_low(self, rng):
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        with SortService(
            db, memory_budget=4 << 20, workers=1, queue_limit=2
        ) as service:
            service.submit("SELECT * FROM t ORDER BY a")  # parks at gate
            assert db.entered.wait(5)
            low = [
                service.submit(
                    "SELECT * FROM t ORDER BY seq", Priority.LOW
                ),
                service.submit(
                    "SELECT * FROM t ORDER BY a DESC", Priority.LOW
                ),
            ]
            high = service.submit(
                "SELECT * FROM t ORDER BY b", Priority.HIGH
            )
            # The *newest* LOW ticket was evicted, completed shed.
            error = low[1].exception(timeout=5)
            assert isinstance(error, ServiceOverloadError)
            assert error.shed
            # A second HIGH evicts the remaining LOW the same way...
            high2 = service.submit(
                "SELECT * FROM t ORDER BY b DESC", Priority.HIGH
            )
            assert low[0].exception(timeout=5).shed
            # ...but with only HIGH work queued, an equal-priority
            # newcomer is rejected, not shed.
            with pytest.raises(ServiceOverloadError) as info:
                service.submit("SELECT * FROM t ORDER BY b", Priority.HIGH)
            assert not info.value.shed
            db.gate.set()
            high.result(timeout=30)
            high2.result(timeout=30)
            assert service.stats.shed == 2

    def test_worker_prefers_high_priority(self, rng):
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        with SortService(
            db, memory_budget=4 << 20, workers=1, queue_limit=8
        ) as service:
            service.submit("SELECT * FROM t ORDER BY a")  # parks at gate
            assert db.entered.wait(5)
            low = service.submit("SELECT * FROM t ORDER BY seq", Priority.LOW)
            high = service.submit("SELECT * FROM t ORDER BY b", Priority.HIGH)
            order = []
            for name, ticket in (("low", low), ("high", high)):
                original = ticket._complete
                ticket._complete = (
                    lambda result, _name=name, _orig=original: (
                        order.append(_name),
                        _orig(result),
                    )[1]
                )
            db.gate.set()
            low.result(timeout=30)
            high.result(timeout=30)
            # The single worker drained HIGH first despite LOW being
            # submitted earlier.
            assert order == ["high", "low"]

    def test_cancel_queued_ticket_never_runs(self, rng):
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        with SortService(
            db, memory_budget=4 << 20, workers=1, queue_limit=8
        ) as service:
            service.submit("SELECT * FROM t ORDER BY a")  # parks at gate
            assert db.entered.wait(5)
            victim = service.submit("SELECT * FROM t ORDER BY seq")
            victim.cancel()
            db.gate.set()
            with pytest.raises(SortCancelledError):
                victim.result(timeout=30)
            assert service.stats.cancelled == 1

    def test_cancel_mid_external_sort_leaves_no_spill_files(self, rng):
        before = spill_dirs()
        db = Database(
            sort_config=SortConfig(external=True, run_threshold=1000)
        )
        db.register("t", mixed_table(rng, 60_000))
        with SortService(
            db, memory_budget=64 << 20, workers=1, cache_capacity=0
        ) as service:
            ticket = service.submit("SELECT * FROM t ORDER BY a, s, seq")
            time.sleep(0.05)
            ticket.cancel()
            with pytest.raises(SortCancelledError):
                ticket.result(timeout=30)
            assert service.stats.cancelled == 1
        assert service.governor.active_grants == 0
        assert spill_dirs() == before

    def test_deadline_expiry_is_a_timeout_error(self, rng):
        db = GatedDatabase(
            sort_config=SortConfig(external=True, run_threshold=1000)
        )
        db.register("t", int_table(rng, 100))
        with SortService(db, memory_budget=4 << 20, workers=1) as service:
            blocker = service.submit("SELECT * FROM t ORDER BY a")
            assert db.entered.wait(5)
            doomed = service.submit(
                "SELECT * FROM t ORDER BY seq", deadline_s=0.01
            )
            time.sleep(0.05)  # the deadline passes while doomed is queued
            db.gate.set()
            blocker.result(timeout=30)
            with pytest.raises(QueryTimeoutError):
                doomed.result(timeout=30)
            assert service.stats.timed_out == 1
        assert not service_threads()

    def test_governor_starvation_sheds_queued_low_work(self, rng):
        # Budget fits exactly one grant and the sole holder parks at the
        # gate, so the second worker's acquire starves; the on_starved
        # hook must shed the queued LOW ticket with a typed error.
        db = GatedDatabase()
        db.register("t", int_table(rng, 100))
        with SortService(
            db,
            memory_budget=128 << 10,
            min_grant_bytes=128 << 10,
            workers=2,
            queue_limit=8,
            admission_timeout_s=5.0,
        ) as service:
            first = service.submit("SELECT * FROM t ORDER BY a")
            assert db.entered.wait(5)  # the sole grant is now held
            second = service.submit("SELECT * FROM t ORDER BY seq")
            low = service.submit("SELECT * FROM t ORDER BY b", Priority.LOW)
            error = low.exception(timeout=10)
            assert isinstance(error, ServiceOverloadError)
            assert error.shed
            db.gate.set()
            first.result(timeout=30)
            second.result(timeout=30)
            assert service.stats.shed == 1
            assert service.stats.grant_waits >= 1


# --------------------------------------------------------------------- #
# Acceptance scenarios
# --------------------------------------------------------------------- #


class TestAcceptanceScenarios:
    def test_eight_sorts_under_budget_for_two(self, rng):
        """The ISSUE's headline scenario, executed literally.

        The budget admits two minimum grants; eight concurrent external
        sorts must all finish byte-identical to their serial runs, with
        the governor's revocations and forced early spills visible in
        stats, every grant returned, and zero spill files left behind.
        """
        before = spill_dirs()
        config = SortConfig(external=True, run_threshold=8192)
        db = Database(sort_config=config)
        queries = []
        for i in range(8):
            db.register(f"t{i}", mixed_table(rng, 12_000))
            queries.append(f"SELECT * FROM t{i} ORDER BY a, s DESC, seq")
        expected = {sql: db.execute(sql) for sql in queries}

        budget = 256 << 10
        with SortService(
            db,
            memory_budget=budget,
            min_grant_bytes=budget // 2,  # sized for exactly two queries
            workers=8,
            cache_capacity=0,
            admission_timeout_s=60.0,
        ) as service:
            tickets = [service.submit(sql) for sql in queries]
            for sql, ticket in zip(queries, tickets):
                assert_byte_identical(ticket.result(timeout=120), expected[sql])
                # Each query really sorted (no cache) and really spilled.
                assert not ticket.from_cache
                assert sum(
                    stats.runs_generated for stats in ticket.sort_stats
                ) > 2
            stats = service.stats

        assert stats.completed == 8
        assert stats.failed == 0
        # Two grants max, so six of eight queries waited their turn...
        assert stats.peak_active_grants == 2
        assert stats.grant_waits >= 1
        # ...and every admission shrank someone: with half the budget a
        # grant covers 2048 rows against the 8192-row threshold, so the
        # governor forced runs to cut (and spill) early.
        assert stats.governor_forced_spills > 0
        assert stats.peak_concurrent_spill_bytes > 0
        assert service.governor.active_grants == 0
        assert service.governor.concurrent_spill_bytes == 0
        assert spill_dirs() == before
        assert not service_threads()

    def test_overload_degrades_typed_not_oom(self, rng):
        """Deliberate overload: every outcome is a typed error or a result."""
        db = Database(
            sort_config=SortConfig(external=True, run_threshold=2000)
        )
        db.register("t", mixed_table(rng, 30_000))
        outcomes = {"ok": 0, "rejected": 0, "shed": 0}
        with SortService(
            db,
            memory_budget=256 << 10,
            workers=2,
            queue_limit=2,
            cache_capacity=0,
        ) as service:
            tickets = []
            for i in range(12):
                priority = [Priority.LOW, Priority.NORMAL, Priority.HIGH][
                    i % 3
                ]
                try:
                    tickets.append(
                        (
                            service.submit(
                                f"SELECT * FROM t ORDER BY a, seq OFFSET {i}",
                                priority,
                            )
                        )
                    )
                except ServiceOverloadError as error:
                    assert error.retry_after_s > 0
                    outcomes["rejected"] += 1
            for ticket in tickets:
                try:
                    ticket.result(timeout=120)
                    outcomes["ok"] += 1
                except ServiceOverloadError as error:
                    assert error.shed
                    outcomes["shed"] += 1
            stats = service.stats
        # Overload produced typed pushback, and whatever was admitted ran
        # to completion -- nothing hung, nothing died untyped.
        assert outcomes["rejected"] + outcomes["shed"] > 0
        assert outcomes["ok"] == stats.completed > 0
        assert stats.rejected == outcomes["rejected"]
        assert stats.shed == outcomes["shed"]
        assert service.governor.active_grants == 0


# --------------------------------------------------------------------- #
# Randomized concurrent stress
# --------------------------------------------------------------------- #


class TestConcurrentStress:
    def test_randomized_mixed_workload(self, rng):
        """N submitter threads, mixed queries, cancels, tight budget.

        Every ticket must land in exactly one bucket -- byte-identical
        result, typed overload/timeout, or cancellation -- and the
        session-level invariants (grants returned, no spill files, no
        threads) must hold afterwards.
        """
        before = spill_dirs()
        config = SortConfig(external=True, run_threshold=1500)
        db = Database(sort_config=config)
        db.register("u", mixed_table(rng, 6000))
        db.register("v", int_table(rng, 6000))
        queries = [
            "SELECT * FROM u ORDER BY a, s, seq",
            "SELECT * FROM u ORDER BY s DESC NULLS FIRST, seq",
            "SELECT * FROM u ORDER BY f DESC, a, seq",
            "SELECT a, seq FROM u ORDER BY a DESC LIMIT 25",
            "SELECT * FROM v ORDER BY a, seq",
            "SELECT * FROM v ORDER BY b DESC, seq",
            "SELECT seq FROM v ORDER BY a LIMIT 10 OFFSET 5",
            "SELECT b, count(*) FROM v GROUP BY b",
        ]
        expected = {sql: db.execute(sql) for sql in queries}

        service = SortService(
            db,
            memory_budget=192 << 10,
            min_grant_bytes=64 << 10,
            workers=6,
            queue_limit=6,
            cache_capacity=4,
            admission_timeout_s=60.0,
        )
        results: list[tuple[str, object]] = []
        results_lock = threading.Lock()

        def submitter(worker_id: int) -> None:
            local = np.random.default_rng(1000 + worker_id)
            for _ in range(12):
                sql = queries[int(local.integers(len(queries)))]
                priority = Priority(int(local.integers(3)))
                try:
                    ticket = service.submit(sql, priority)
                except ServiceOverloadError as error:
                    assert error.retry_after_s > 0
                    continue
                if local.random() < 0.2:
                    time.sleep(float(local.random()) * 0.01)
                    ticket.cancel()
                with results_lock:
                    results.append((sql, ticket))

        threads = [
            threading.Thread(target=submitter, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()

        outcomes = {"ok": 0, "cached": 0, "cancelled": 0, "shed": 0}
        for sql, ticket in results:
            try:
                result = ticket.result(timeout=120)
            except SortCancelledError:
                outcomes["cancelled"] += 1
            except ServiceOverloadError as error:
                assert error.shed
                outcomes["shed"] += 1
            else:
                assert_byte_identical(result, expected[sql])
                outcomes["ok"] += 1
                if ticket.from_cache:
                    outcomes["cached"] += 1
        service.shutdown()

        assert outcomes["ok"] > 0
        stats = service.stats
        assert stats.completed == outcomes["ok"]
        assert stats.cancelled == outcomes["cancelled"]
        assert stats.failed == 0
        assert service.governor.active_grants == 0
        assert service.governor.concurrent_spill_bytes == 0
        assert spill_dirs() == before
        assert not service_threads()
