"""Integration tests: the paper's scenarios end-to-end through the
public API (SQL engine + sort pipeline + workloads).
"""

import numpy as np
import pytest

from conftest import reference_sort
from repro import Table, SortSpec, sort_table, top_n
from repro.engine import Database
from repro.sort.operator import SortConfig
from repro.workloads.tpcds import catalog_sales, customer


class TestPaperExampleQuery:
    """Section II's example: ORDER BY c_birth_country DESC, c_birth_year."""

    def test_through_sql(self):
        db = Database()
        db.register("customer", customer(500, 100, seed=3))
        result = db.execute(
            "SELECT c_customer_sk, c_birth_year FROM customer "
            "ORDER BY c_birth_year DESC NULLS LAST, c_customer_sk ASC"
        )
        spec = SortSpec.of("c_birth_year DESC NULLS LAST", "c_customer_sk")
        expected = reference_sort(db.table("customer"), spec).select(
            ["c_customer_sk", "c_birth_year"]
        )
        assert result.equals(expected)


class TestBenchmarkQueryMethodology:
    """Section VII-A: the count-over-sorted-subquery trick."""

    def test_offset_forces_the_sort_and_count_is_n_minus_1(self, rng):
        db = Database()
        n = 2000
        db.register(
            "t",
            Table.from_numpy(
                {"a": rng.integers(0, 50, n).astype(np.int32)}
            ),
        )
        query = "SELECT count(*) FROM (SELECT a FROM t ORDER BY a OFFSET 1) q"
        assert "Sort" in db.explain(query)
        assert db.execute(query).to_pydict() == {"count_star": [n - 1]}

    def test_without_offset_sort_is_optimized_away(self, rng):
        db = Database()
        db.register(
            "t",
            Table.from_numpy({"a": rng.integers(0, 5, 100).astype(np.int32)}),
        )
        query = "SELECT count(*) FROM (SELECT a FROM t ORDER BY a) q"
        assert "Sort" not in db.explain(query)
        assert db.execute(query).to_pydict() == {"count_star": [100]}


class TestTpcdsScenarios:
    def test_catalog_sales_four_keys(self):
        table = catalog_sales(3000, 10, seed=8)
        spec = SortSpec.of(
            "cs_warehouse_sk",
            "cs_ship_mode_sk",
            "cs_promo_sk",
            "cs_quantity",
        )
        result = sort_table(table, spec, SortConfig(run_threshold=512))
        assert result.is_sorted_by(spec)
        assert result.num_rows == 3000
        # NULL foreign keys must sort last (default NULLS LAST).
        warehouse = result.column("cs_warehouse_sk").to_pylist()
        non_null_after_null = False
        seen_null = False
        for value in warehouse:
            if value is None:
                seen_null = True
            elif seen_null:
                non_null_after_null = True
        assert not non_null_after_null

    def test_customer_string_sort_matches_reference(self):
        table = customer(800, 100, seed=9)
        spec = SortSpec.of(
            "c_last_name NULLS FIRST", "c_first_name DESC NULLS LAST"
        )
        result = sort_table(table, spec, SortConfig(run_threshold=128))
        assert result.equals(reference_sort(table, spec))

    def test_window_style_topn(self):
        table = customer(2000, 100, seed=10)
        spec = SortSpec.of("c_birth_year NULLS LAST", "c_customer_sk")
        expected = sort_table(table, spec).slice(0, 25)
        assert top_n(table, spec, 25).equals(expected)


class TestLargerScaleSmoke:
    def test_hundred_thousand_rows_quickly(self, rng):
        n = 100_000
        table = Table.from_numpy(
            {
                "k1": rng.integers(0, 1000, n).astype(np.int32),
                "k2": rng.standard_normal(n).astype(np.float32),
                "payload": np.arange(n, dtype=np.int64),
            }
        )
        spec = SortSpec.of("k1", "k2 DESC")
        result = sort_table(table, spec)
        assert result.is_sorted_by(spec)
        # The payload is a permutation of the input.
        assert sorted(result.column("payload").to_pylist()) == list(range(n))
