"""Tests for whole-key normalization: the central invariant of the paper.

The key property: memcmp order over normalized keys equals tuple_compare
order over the original values, for every type mix, direction, and NULL
placement -- checked here exhaustively and with hypothesis.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyEncodingError
from repro.keys.decoder import decode_key_row
from repro.keys.normalizer import (
    build_layout,
    normalize_keys,
    normalized_key_for_row,
)
from repro.table.table import Table
from repro.types.sortspec import SortSpec, tuple_compare

SPEC_EXAMPLE = SortSpec.of(
    "c_birth_country DESC NULLS LAST", "c_birth_year ASC NULLS FIRST"
)


def paper_example_table() -> Table:
    return Table.from_pydict(
        {
            "c_birth_country": ["NETHERLANDS", "GERMANY", None],
            "c_birth_year": [1992, 1968, None],
        }
    )


class TestLayout:
    def test_widths(self):
        table = paper_example_table()
        layout = build_layout(table, SPEC_EXAMPLE, include_row_id=False)
        country, year = layout.segments
        # VARCHAR prefix = max string length (11, fits under the cap).
        assert country.value_width == 11
        assert year.value_width == 4
        assert layout.key_width == (1 + 11) + (1 + 4)
        assert layout.row_id_width == 0

    def test_prefix_cap_at_12(self):
        table = Table.from_pydict({"s": ["x" * 40]})
        layout = build_layout(table, SortSpec.of("s"), include_row_id=False)
        assert layout.segments[0].value_width == 12

    def test_forced_prefix(self):
        table = Table.from_pydict({"s": ["abcdef"]})
        layout = build_layout(
            table, SortSpec.of("s"), string_prefix=4, include_row_id=False
        )
        assert layout.segments[0].value_width == 4

    def test_row_id_width_override(self):
        table = paper_example_table()
        layout = build_layout(SPEC_EXAMPLE and table, SPEC_EXAMPLE, row_id_width=8)
        assert layout.row_id_width == 8

    def test_bad_row_id_width(self):
        with pytest.raises(KeyEncodingError):
            build_layout(paper_example_table(), SPEC_EXAMPLE, row_id_width=3)


class TestPaperFigure7:
    """The worked example of the paper's Figure 7."""

    def test_germany_padded_and_inverted_sorts_after_netherlands(self):
        # DESC on the country: NETHERLANDS must come before GERMANY.
        table = paper_example_table()
        keys = normalize_keys(table, SPEC_EXAMPLE, include_row_id=False)
        netherlands, germany, null_row = (
            keys.key_bytes(0),
            keys.key_bytes(1),
            keys.key_bytes(2),
        )
        assert netherlands < germany  # DESC inverted bytes
        assert germany < null_row  # NULLS LAST

    def test_year_null_first(self):
        table = Table.from_pydict(
            {
                "c_birth_country": ["GERMANY", "GERMANY"],
                "c_birth_year": [None, 1900],
            }
        )
        keys = normalize_keys(table, SPEC_EXAMPLE, include_row_id=False)
        assert keys.key_bytes(0) < keys.key_bytes(1)  # NULLS FIRST

    def test_scalar_reference_matches_vectorized(self):
        table = paper_example_table()
        layout = build_layout(table, SPEC_EXAMPLE, include_row_id=False)
        keys = normalize_keys(table, SPEC_EXAMPLE, include_row_id=False)
        for i in range(table.num_rows):
            row = (
                table.column("c_birth_country").value(i),
                table.column("c_birth_year").value(i),
            )
            assert keys.key_bytes(i) == normalized_key_for_row(
                row, SPEC_EXAMPLE, layout
            )


class TestRowIds:
    def test_row_ids_round_trip(self):
        table = paper_example_table()
        keys = normalize_keys(table, SPEC_EXAMPLE, row_id_base=7)
        assert keys.row_ids().tolist() == [7, 8, 9]

    def test_row_id_overflow_raises(self):
        table = paper_example_table()
        with pytest.raises(KeyEncodingError):
            normalize_keys(
                table, SPEC_EXAMPLE, row_id_base=2**32 - 1, row_id_width=4
            )

    def test_row_ids_require_suffix(self):
        keys = normalize_keys(
            paper_example_table(), SPEC_EXAMPLE, include_row_id=False
        )
        with pytest.raises(KeyEncodingError):
            keys.row_ids()


class TestDecodeRoundTrip:
    def test_fixed_types_round_trip(self):
        table = Table.from_pydict(
            {
                "i": [5, -3, None],
                "f": [1.5, -2.25, 0.0],
            }
        )
        spec = SortSpec.of("i DESC NULLS FIRST", "f")
        keys = normalize_keys(table, spec, include_row_id=False)
        for row_index in range(3):
            decoded = decode_key_row(keys.matrix[row_index], keys.layout)
            assert decoded == (
                table.column("i").value(row_index),
                table.column("f").value(row_index),
            )

    def test_string_prefix_decodes(self):
        table = Table.from_pydict({"s": ["GERMANY", None]})
        keys = normalize_keys(table, SortSpec.of("s DESC"), include_row_id=False)
        assert decode_key_row(keys.matrix[0], keys.layout) == ("GERMANY",)
        assert decode_key_row(keys.matrix[1], keys.layout) == (None,)


@st.composite
def typed_rows(draw):
    """Random (int, float-or-null, short-string) rows plus a random spec."""
    n = draw(st.integers(2, 25))
    ints = draw(
        st.lists(
            st.one_of(st.none(), st.integers(-1000, 1000)),
            min_size=n,
            max_size=n,
        )
    )
    floats = draw(
        st.lists(
            st.one_of(
                st.none(),
                st.floats(allow_nan=False, allow_infinity=True, width=32),
            ),
            min_size=n,
            max_size=n,
        )
    )
    strings = draw(
        st.lists(
            st.one_of(st.none(), st.text(alphabet="abcXYZ", max_size=6)),
            min_size=n,
            max_size=n,
        )
    )
    directions = [draw(st.sampled_from(["ASC", "DESC"])) for _ in range(3)]
    nulls = [draw(st.sampled_from(["NULLS FIRST", "NULLS LAST"])) for _ in range(3)]
    return ints, floats, strings, directions, nulls


class TestMemcmpEqualsTupleCompare:
    @settings(max_examples=60, deadline=None)
    @given(typed_rows())
    def test_property(self, data):
        ints, floats, strings, directions, nulls = data
        table = Table.from_pydict({"i": ints, "f": floats, "s": strings})
        spec = SortSpec.of(
            f"i {directions[0]} {nulls[0]}",
            f"f {directions[1]} {nulls[1]}",
            f"s {directions[2]} {nulls[2]}",
        )
        keys = normalize_keys(table, spec, include_row_id=False)
        assert keys.prefix_exact  # strings are short enough
        n = table.num_rows
        key_rows = [
            (
                table.column("i").value(i),
                table.column("f").value(i),
                table.column("s").value(i),
            )
            for i in range(n)
        ]
        for a in range(n):
            for b in range(n):
                byte_cmp = (keys.key_bytes(a) > keys.key_bytes(b)) - (
                    keys.key_bytes(a) < keys.key_bytes(b)
                )
                tup_cmp = tuple_compare(key_rows[a], key_rows[b], spec)
                sign = (tup_cmp > 0) - (tup_cmp < 0)
                assert byte_cmp == sign, (key_rows[a], key_rows[b], spec)


class TestPrefixExactness:
    def test_exact_when_strings_fit(self):
        table = Table.from_pydict({"s": ["short", "tiny"]})
        keys = normalize_keys(table, SortSpec.of("s"))
        assert keys.prefix_exact

    def test_inexact_when_truncated(self):
        table = Table.from_pydict({"s": ["a" * 20, "b"]})
        keys = normalize_keys(table, SortSpec.of("s"))
        assert not keys.prefix_exact

    def test_inexact_when_forced_short(self):
        table = Table.from_pydict({"s": ["abcdef", "abcxyz"]})
        keys = normalize_keys(table, SortSpec.of("s"), string_prefix=3)
        assert not keys.prefix_exact
