"""Fault tolerance of the external sort: integrity, injection, recovery.

Every failure the spill path can hit is driven through the deterministic
injection harness (:mod:`repro.sort.faults`) -- no monkeypatching of
``os`` internals.  The acceptance bar: for any injected single fault the
sort either completes with byte-identical output to the fault-free run
(after retry / failover / memory fallback) or raises a typed
:class:`SpillError` subclass naming the offending run file -- never a
bare numpy/OS error -- and leaves zero temp files behind either way.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

import numpy as np
import pytest

from test_external_kway import assert_byte_identical, mixed_table
from repro.engine import Database
from repro.errors import (
    SortCancelledError,
    SortError,
    SpillCapacityError,
    SpillCorruptionError,
    SpillError,
)
from repro.sort.external import ExternalSortOperator, InMemoryRun, SpilledRun
from repro.sort.faults import FaultInjector, InjectedFault, SpillIO
from repro.sort.operator import SortConfig, sort_table
from repro.sort.spillfile import FORMAT_VERSION, MAGIC, read_header
from repro.table.chunk import chunk_table
from repro.types.sortspec import SortSpec

SPEC = "a, s DESC, f"

_FIXED = struct.Struct("<4sIIQIIQIII")  # mirror of spillfile._FIXED


def fast_config(**overrides):
    defaults = dict(
        run_threshold=500,
        spill_retries=2,
        spill_retry_backoff_s=0.0,
    )
    defaults.update(overrides)
    return SortConfig(**defaults)


def build_operator(table, tmp_path, io=None, config=None, **config_overrides):
    return ExternalSortOperator(
        table.schema,
        SortSpec.of(*[part.strip() for part in SPEC.split(",")]),
        config or fast_config(**config_overrides),
        spill_directory=str(tmp_path),
        io=io,
    )


def run_sort(operator, table, chunk_rows=256):
    with operator:
        for chunk in chunk_table(table, chunk_rows):
            operator.sink(chunk)
        return operator.finalize()


def expected_result(table):
    return sort_table(table, SPEC, SortConfig())


def assert_no_spill_files(*directories):
    for directory in directories:
        assert os.path.isdir(directory)
        assert os.listdir(directory) == []


class TestSpillIntegrity:
    def test_clean_run_verifies_checksums(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        operator = build_operator(table, tmp_path)
        result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        # Per-run header re-validation plus CRC pages on every block read.
        assert operator.stats.checksum_verifications > (
            operator.stats.runs_generated
        )
        assert operator.stats.checksum_failures == 0
        assert_no_spill_files(tmp_path)

    def test_silently_truncated_spill_detected(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector(
            [InjectedFault("truncate", at=1)], seed=7
        )
        operator = build_operator(table, tmp_path, io=injector)
        with pytest.raises(SpillCorruptionError) as info:
            run_sort(operator, table)
        assert info.value.path is not None
        assert str(tmp_path) in info.value.path
        assert_no_spill_files(tmp_path)

    def test_bit_flipped_read_detected(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector(
            [InjectedFault("bitflip", at=9)], seed=3
        )
        operator = build_operator(table, tmp_path, io=injector)
        with pytest.raises(SpillCorruptionError) as info:
            run_sort(operator, table)
        assert info.value.path is not None
        assert operator.stats.checksum_failures <= 1
        assert_no_spill_files(tmp_path)

    def test_wrong_magic_rejected(self, rng, tmp_path):
        table = mixed_table(rng, 1200)
        operator = build_operator(table, tmp_path)
        with operator:
            for chunk in chunk_table(table, 256):
                operator.sink(chunk)
            path = operator._runs[0].path
            with open(path, "r+b") as fh:
                fh.write(b"NOPE")
            with pytest.raises(SpillCorruptionError, match="magic"):
                operator.finalize()
        assert_no_spill_files(tmp_path)

    def test_wrong_version_rejected(self, rng, tmp_path):
        table = mixed_table(rng, 1200)
        operator = build_operator(table, tmp_path)
        with operator:
            for chunk in chunk_table(table, 256):
                operator.sink(chunk)
            path = operator._runs[0].path
            # Repack the fixed header with a future version and a *valid*
            # CRC so the version check itself must reject the file.
            with open(path, "r+b") as fh:
                fixed = fh.read(_FIXED.size)
                fields = list(_FIXED.unpack(fixed))
                fields[1] = FORMAT_VERSION + 1
                crc_count = fields[8]
                fh.seek(_FIXED.size)
                table_bytes = fh.read(4 * crc_count)
                fields[9] = 0
                crc = zlib.crc32(table_bytes, zlib.crc32(_FIXED.pack(*fields)))
                fields[9] = crc
                fh.seek(0)
                fh.write(_FIXED.pack(*fields))
            with pytest.raises(SpillCorruptionError, match="version"):
                operator.finalize()
        assert_no_spill_files(tmp_path)

    def test_spilled_run_open_round_trip(self, rng, tmp_path):
        table = mixed_table(rng, 1200)
        operator = build_operator(table, tmp_path)
        with operator:
            for chunk in chunk_table(table, 256):
                operator.sink(chunk)
            original = operator._runs[0]
            reopened = SpilledRun.open(original.path)
            assert reopened.header == original.header
            assert MAGIC == b"RSPL"
            assert (
                reopened.read_key_block(0, reopened.num_rows).tobytes()
                == original.read_key_block(0, original.num_rows).tobytes()
            )
            assert reopened.read_heap() == original.read_heap()

    def test_corrupt_header_never_reaches_numpy(self, rng, tmp_path):
        """Garbage over the whole header still fails typed, not numpy."""
        table = mixed_table(rng, 1200)
        operator = build_operator(table, tmp_path)
        with operator:
            for chunk in chunk_table(table, 256):
                operator.sink(chunk)
            path = operator._runs[0].path
            with open(path, "r+b") as fh:
                fh.write(bytes(range(48)))
            with pytest.raises(SpillCorruptionError):
                operator.finalize()
        assert_no_spill_files(tmp_path)


class TestRetryFailoverFallback:
    def test_transient_enospc_retried(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector(
            [InjectedFault("enospc", at=1, times=2)]
        )
        operator = build_operator(table, tmp_path, io=injector)
        result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        assert operator.stats.spill_retries >= 2
        assert operator.stats.spill_failovers == 0
        assert operator.stats.memory_run_fallbacks == 0
        assert_no_spill_files(tmp_path)

    def test_short_write_retried(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector(
            [InjectedFault("short_write", at=0, times=1)]
        )
        operator = build_operator(table, tmp_path, io=injector)
        result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        assert operator.stats.spill_retries >= 1
        assert_no_spill_files(tmp_path)

    def test_persistent_enospc_fails_over_to_secondary(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        primary = tmp_path / "primary"
        secondary = tmp_path / "secondary"
        primary.mkdir()
        injector = FaultInjector(
            [
                InjectedFault(
                    "enospc", times=None, path_substring=str(primary)
                )
            ]
        )
        operator = build_operator(
            table,
            primary,
            io=injector,
            config=fast_config(spill_directories=(str(secondary),)),
        )
        result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        assert operator.stats.spill_failovers == (
            operator.stats.runs_generated
        )
        assert operator.stats.memory_run_fallbacks == 0
        assert_no_spill_files(primary, secondary)

    def test_no_writable_target_degrades_to_memory(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector([InjectedFault("enospc", times=None)])
        operator = build_operator(
            table, tmp_path, io=injector, spill_retries=1
        )
        with pytest.warns(RuntimeWarning, match="degrading"):
            result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        assert operator.stats.memory_run_fallbacks == (
            operator.stats.runs_generated
        )
        assert operator.stats.memory_run_fallbacks > 0
        # Disk was only attempted for the first run; later runs skip it.
        assert injector.stats.writes <= operator.config.spill_retries + 1
        assert all(isinstance(r, InMemoryRun) for r in operator._runs)
        assert_no_spill_files(tmp_path)

    def test_degraded_mode_halves_run_threshold(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector([InjectedFault("enospc", times=None)])
        operator = build_operator(
            table, tmp_path, io=injector, spill_retries=0, run_threshold=1000
        )
        with pytest.warns(RuntimeWarning):
            with operator:
                for chunk in chunk_table(table, 250):
                    operator.sink(chunk)
                # After degradation the threshold halves: 2000 rows cut
                # into 1000-row first run + 500-row reduced runs.
                assert operator._run_threshold == 500
                assert operator.stats.runs_generated >= 3
                operator.finalize()

    def test_memory_fallback_disabled_raises_capacity_error(
        self, rng, tmp_path
    ):
        table = mixed_table(rng, 2000)
        injector = FaultInjector([InjectedFault("enospc", times=None)])
        operator = build_operator(
            table,
            tmp_path,
            io=injector,
            spill_retries=0,
            allow_memory_fallback=False,
        )
        with pytest.raises(SpillCapacityError) as info:
            run_sort(operator, table)
        assert info.value.path is not None
        assert_no_spill_files(tmp_path)

    def test_uncreatable_failover_directory_skipped(self, rng, tmp_path):
        table = mixed_table(rng, 1200)
        primary = tmp_path / "primary"
        primary.mkdir()
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        injector = FaultInjector(
            [InjectedFault("enospc", times=None, path_substring=str(primary))]
        )
        operator = build_operator(
            table,
            primary,
            io=injector,
            config=fast_config(
                spill_retries=0,
                spill_directories=(str(blocker / "sub"),),
            ),
        )
        # The only failover target cannot be created (its parent is a
        # file); it must be skipped, landing on the memory fallback
        # instead of crashing with NotADirectoryError.
        with pytest.warns(RuntimeWarning, match="degrading"):
            result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        assert operator.stats.memory_run_fallbacks > 0
        assert_no_spill_files(primary)


class TestLifecycleAndCleanup:
    def test_context_manager_cleans_up_when_sink_raises(self, rng):
        table = mixed_table(rng, 2000)
        injector = FaultInjector([InjectedFault("enospc", times=None)])
        operator = ExternalSortOperator(
            table.schema,
            SortSpec.of("a"),
            fast_config(spill_retries=0, allow_memory_fallback=False),
            io=injector,
        )
        own_dir = operator._dir
        with pytest.raises(SpillCapacityError):
            with operator:
                for chunk in chunk_table(table, 256):
                    operator.sink(chunk)
                operator.finalize()
        # The operator-owned mkdtemp directory is gone, not leaked.
        assert not os.path.exists(own_dir)
        assert operator._closed

    def test_own_directory_removed_without_finalize(self, rng):
        table = mixed_table(rng, 300)
        operator = ExternalSortOperator(
            table.schema, SortSpec.of("a"), fast_config()
        )
        own_dir = operator._dir
        with operator:
            for chunk in chunk_table(table, 100):
                operator.sink(chunk)
            # finalize never called: __exit__ must still clean up
        assert not os.path.exists(own_dir)

    def test_close_is_idempotent_and_blocks_reuse(self, rng, tmp_path):
        table = mixed_table(rng, 300)
        operator = build_operator(table, tmp_path)
        operator.close()
        operator.close()
        with pytest.raises(SortError):
            operator.sink(next(chunk_table(table, 100)))
        with pytest.raises(SortError):
            operator.finalize()

    def test_cancel_before_finalize_cleans_up(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        operator = build_operator(table, tmp_path)
        for chunk in chunk_table(table, 256):
            operator.sink(chunk)
        assert operator.spilled_runs > 0
        operator.cancel()
        assert_no_spill_files(tmp_path)
        with pytest.raises(SortCancelledError):
            operator.finalize()

    @pytest.mark.parametrize("use_vector_kernels", [True, False])
    def test_cancel_mid_merge(self, rng, tmp_path, use_vector_kernels):
        table = mixed_table(rng, 2000)
        state = {"operator": None, "merge_reads": 0}

        def on_op(op, path, index):
            operator = state["operator"]
            if operator is None or not operator._merging or op != "read":
                return
            state["merge_reads"] += 1
            if state["merge_reads"] == 4:
                operator.cancel()

        injector = FaultInjector(on_op=on_op)
        operator = build_operator(
            table,
            tmp_path,
            io=injector,
            config=fast_config(use_vector_kernels=use_vector_kernels),
        )
        state["operator"] = operator
        with pytest.raises(SortCancelledError):
            run_sort(operator, table)
        assert state["merge_reads"] >= 4
        assert_no_spill_files(tmp_path)

    def test_cancel_at_every_op_index(self, rng, tmp_path):
        """Cancel fired before *every* spill I/O op never leaks a file.

        The injection hook drives ``operator.cancel()`` at one global op
        index per trial, sweeping every index a fault-free run performs:
        writes (mid run generation), reads (mid merge, including on
        prefetch pool threads) and removes (mid cleanup).  Whatever the
        index, the sort either raises :class:`SortCancelledError` or --
        when the cancel lands after the last checkpoint -- completes
        byte-identical; either way zero temp files and zero prefetch
        threads survive.
        """
        table = mixed_table(rng, 1200)
        config = fast_config(run_threshold=400, prefetch_blocks=2)

        # Fault-free pass: learn the op schedule and the expected bytes.
        ops = []
        baseline_io = FaultInjector(
            on_op=lambda op, path, index: ops.append(op)
        )
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        operator = build_operator(
            table, baseline_dir, io=baseline_io, config=config
        )
        expected = run_sort(operator, table)
        assert len(ops) >= 10

        for cancel_at in range(len(ops)):
            state = {"operator": None, "count": 0}

            def on_op(op, path, index):
                state["count"] += 1
                if state["count"] == cancel_at + 1:
                    state["operator"].cancel()

            injector = FaultInjector(on_op=on_op)
            spill_dir = tmp_path / f"cancel-{cancel_at}"
            spill_dir.mkdir()
            operator = build_operator(
                table, spill_dir, io=injector, config=config
            )
            state["operator"] = operator
            try:
                result = run_sort(operator, table)
            except SortCancelledError:
                pass
            else:
                assert_byte_identical(result, expected)
            leaked = [
                thread.name
                for thread in threading.enumerate()
                if thread.name.startswith("spill-prefetch")
            ]
            assert not leaked, (cancel_at, leaked)
            assert_no_spill_files(spill_dir), cancel_at

    def test_cleanup_errors_recorded_not_swallowed(self, rng, tmp_path):
        table = mixed_table(rng, 2000)
        injector = FaultInjector(
            [InjectedFault("cleanup_error", at=0, times=1)]
        )
        operator = build_operator(table, tmp_path, io=injector)
        with pytest.warns(RuntimeWarning, match="clean up"):
            result = run_sort(operator, table)
        assert_byte_identical(result, expected_result(table))
        assert len(operator.stats.cleanup_errors) == 1
        assert "-00000.bin" in operator.stats.cleanup_errors[0]
        # The one file whose removal failed is still there; the rest went.
        leftovers = os.listdir(tmp_path)
        assert len(leftovers) == 1

    def test_merge_failure_still_cleans_up(self, rng, tmp_path):
        """finalize() cleanup runs even when the merge itself raises."""
        table = mixed_table(rng, 2000)
        injector = FaultInjector([InjectedFault("short_read", at=6)])
        operator = build_operator(table, tmp_path, io=injector)
        with pytest.raises(SpillError):
            run_sort(operator, table)
        assert_no_spill_files(tmp_path)


class TestRandomizedSingleFault:
    """The acceptance criterion, executed literally.

    For every fault kind at every plausible injection point: either the
    sort completes byte-identical to the fault-free run, or it raises a
    typed :class:`SpillError` subclass carrying the run path -- and in
    both cases no temp files survive.
    """

    KINDS = ("enospc", "short_write", "truncate", "bitflip", "short_read")

    @pytest.mark.parametrize("use_vector_kernels", [True, False])
    def test_any_single_fault_recovers_or_raises_typed(
        self, rng, tmp_path, use_vector_kernels
    ):
        table = mixed_table(rng, 1500)
        config = fast_config(
            run_threshold=400, use_vector_kernels=use_vector_kernels
        )

        # Fault-free pass: learn the op counts and the expected bytes.
        baseline_io = FaultInjector()
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        operator = build_operator(
            table, baseline_dir, io=baseline_io, config=config
        )
        expected = run_sort(operator, table)
        op_counts = {
            "write": baseline_io.stats.writes,
            "read": baseline_io.stats.reads,
        }
        assert op_counts["write"] >= 3 and op_counts["read"] >= 6

        draw = np.random.default_rng(20260806 + use_vector_kernels)
        for trial in range(24):
            kind = self.KINDS[int(draw.integers(len(self.KINDS)))]
            op = "write" if kind in ("enospc", "short_write", "truncate") else "read"
            at = int(draw.integers(op_counts[op]))
            injector = FaultInjector(
                [InjectedFault(kind, at=at)], seed=trial
            )
            spill_dir = tmp_path / f"trial-{trial}"
            spill_dir.mkdir()
            operator = build_operator(
                table, spill_dir, io=injector, config=config
            )
            try:
                result = run_sort(operator, table)
            except SpillError as error:
                assert error.path is not None, (kind, at)
            else:
                assert_byte_identical(result, expected)
            assert injector.stats.fired.get(kind) == 1, (kind, at)
            assert_no_spill_files(spill_dir)


class TestRandomizedConcurrentFaults:
    """Faults firing inside prefetch worker threads.

    With read-ahead enabled, spill reads (and their CRC verification)
    happen on ``spill-prefetch`` pool threads; an injected fault there
    must surface exactly like a synchronous one -- byte-identical
    recovery or a typed :class:`SpillError` raised on the consumer
    thread -- and must never leak a thread or a temp file, whichever
    thread the fault fired on.
    """

    KINDS = ("short_read", "bitflip", "slow_io")

    @staticmethod
    def _assert_no_prefetch_threads():
        import threading

        leaked = [
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith("spill-prefetch")
        ]
        assert not leaked, leaked

    def test_prefetch_thread_faults(self, rng, tmp_path):
        table = mixed_table(rng, 1500)
        config = fast_config(run_threshold=400, prefetch_blocks=2)

        # Fault-free pass: learn the read count and the expected bytes.
        baseline_io = FaultInjector()
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        operator = build_operator(
            table, baseline_dir, io=baseline_io, config=config
        )
        expected = run_sort(operator, table)
        reads = baseline_io.stats.reads
        assert reads >= 6
        assert (
            operator.stats.prefetch_hits + operator.stats.prefetch_misses
        ) > 0
        self._assert_no_prefetch_threads()

        draw = np.random.default_rng(20260808)
        for trial in range(18):
            kind = self.KINDS[int(draw.integers(len(self.KINDS)))]
            at = int(draw.integers(reads))
            fault = InjectedFault(kind, at=at)
            if kind == "slow_io":
                fault.delay_s = 0.001
            injector = FaultInjector([fault], seed=100 + trial)
            spill_dir = tmp_path / f"trial-{trial}"
            spill_dir.mkdir()
            operator = build_operator(
                table, spill_dir, io=injector, config=config
            )
            try:
                result = run_sort(operator, table)
            except SpillError as error:
                assert error.path is not None, (kind, at)
            else:
                assert_byte_identical(result, expected)
            assert injector.stats.fired.get(kind, 0) >= 1, (kind, at)
            self._assert_no_prefetch_threads()
            assert_no_spill_files(spill_dir)

    def test_corruption_under_slow_concurrent_reads(self, rng, tmp_path):
        # Latency on every read forces genuine thread overlap while a
        # bitflip corrupts one block read ahead by a worker; the typed
        # error must still surface on the consumer thread.
        table = mixed_table(rng, 1500)
        config = fast_config(run_threshold=400, prefetch_blocks=2)
        injector = FaultInjector(
            [
                InjectedFault("slow_io", at=0, times=None, delay_s=0.0005),
                InjectedFault("bitflip", at=10),
            ],
            seed=11,
        )
        operator = build_operator(
            table, tmp_path, io=injector, config=config
        )
        with pytest.raises(SpillCorruptionError) as info:
            run_sort(operator, table)
        assert info.value.path is not None
        self._assert_no_prefetch_threads()
        assert_no_spill_files(tmp_path)


class TestEngineWiring:
    def test_database_order_by_through_external_sort(self, rng):
        table = mixed_table(rng, 1500)
        external_db = Database(
            sort_config=fast_config(external=True, run_threshold=300)
        )
        in_memory_db = Database()
        external_db.register("t", table)
        in_memory_db.register("t", table)
        query = "SELECT a, s, f, seq FROM t ORDER BY a DESC, s"
        assert_byte_identical(
            external_db.execute(query), in_memory_db.execute(query)
        )

    def test_cli_external_sort_with_spill_dir(self, rng, tmp_path):
        from repro.cli import main
        from repro.table.io import read_csv, write_csv

        table = mixed_table(rng, 400).select(["a", "f", "seq"])
        source = tmp_path / "in.csv"
        target = tmp_path / "out.csv"
        write_csv(table, str(source))
        code = main(
            [
                "sort",
                str(source),
                "--by",
                "a DESC, seq",
                "--external",
                "--run-threshold",
                "100",
                "--spill-dir",
                str(tmp_path / "failover"),
                "-o",
                str(target),
            ]
        )
        assert code == 0
        result = read_csv(str(target))
        assert result.num_rows == table.num_rows
        expected = sort_table(table, "a DESC, seq", SortConfig())
        assert [
            result.column("seq").data[i] for i in range(result.num_rows)
        ] == [
            expected.column("seq").data[i] for i in range(expected.num_rows)
        ]


class TestSpillIOContract:
    def test_real_spill_io_round_trip(self, tmp_path):
        io = SpillIO()
        path = str(tmp_path / "x.bin")
        io.write_file(path, [b"abc", b"defg"])
        assert io.read(path, 0, 7) == b"abcdefg"
        assert io.read(path, 3, 4) == b"defg"
        assert io.file_size(path) == 7
        io.remove(path)
        assert not os.path.exists(path)

    def test_injected_fault_validation(self):
        with pytest.raises(ValueError):
            InjectedFault("meteor-strike")
        with pytest.raises(ValueError):
            InjectedFault("enospc", at=-1)

    def test_header_reader_rejects_truncation(self, tmp_path):
        path = str(tmp_path / "tiny.bin")
        with open(path, "wb") as fh:
            fh.write(b"RSPL")
        with pytest.raises(SpillCorruptionError, match="truncated"):
            read_header(SpillIO(), path)
