"""Tests for the workload generators: distributions and TPC-DS tables."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads.distributions import (
    CORRELATED_UNIQUE_VALUES,
    correlated_distribution,
    generate_key_columns,
    random_distribution,
)
from repro.workloads.tpcds import (
    PAPER_CARDINALITIES,
    catalog_sales,
    customer,
    scaled_rows,
)


class TestDistributions:
    def test_random_shape_and_dtype(self):
        values = generate_key_columns(random_distribution(), 100, 3)
        assert values.shape == (100, 3) and values.dtype == np.uint32

    def test_random_virtually_no_duplicates(self):
        values = generate_key_columns(random_distribution(), 4096, 1)
        assert len(np.unique(values)) > 4090

    def test_correlated_unique_values_capped(self):
        values = generate_key_columns(correlated_distribution(0.5), 5000, 3)
        for c in range(3):
            assert len(np.unique(values[:, c])) <= CORRELATED_UNIQUE_VALUES

    def test_correlation_one_is_functional(self):
        values = generate_key_columns(correlated_distribution(1.0), 2000, 2)
        # Equal in column 0 => equal in column 1.
        mapping = {}
        for v0, v1 in values:
            assert mapping.setdefault(int(v0), int(v1)) == int(v1)

    def test_correlation_probability_approximates_p(self):
        p = 0.5
        values = generate_key_columns(correlated_distribution(p), 6000, 2, seed=3)
        order = np.argsort(values[:, 0], kind="stable")
        v = values[order]
        same0 = v[:-1, 0] == v[1:, 0]
        same1 = v[:-1, 1] == v[1:, 1]
        conditional = same1[same0].mean()
        assert abs(conditional - p) < 0.12

    def test_correlation_zero_is_nearly_independent(self):
        values = generate_key_columns(correlated_distribution(0.0), 6000, 2, seed=4)
        order = np.argsort(values[:, 0], kind="stable")
        v = values[order]
        same0 = v[:-1, 0] == v[1:, 0]
        same1 = v[:-1, 1] == v[1:, 1]
        conditional = same1[same0].mean()
        assert conditional < 0.05  # only chance collisions (1/128)

    def test_deterministic_by_seed(self):
        dist = correlated_distribution(0.5)
        a = generate_key_columns(dist, 64, 2, seed=7)
        b = generate_key_columns(dist, 64, 2, seed=7)
        assert np.array_equal(a, b)

    def test_invalid_correlation(self):
        with pytest.raises(ReproError):
            correlated_distribution(1.5)

    def test_invalid_shape(self):
        with pytest.raises(ReproError):
            generate_key_columns(random_distribution(), 10, 0)

    def test_names(self):
        assert random_distribution().name == "Random"
        assert correlated_distribution(0.5).name == "Correlated0.5"


class TestCatalogSales:
    def test_schema(self):
        table = catalog_sales(100)
        assert table.schema.names == (
            "cs_warehouse_sk",
            "cs_ship_mode_sk",
            "cs_promo_sk",
            "cs_quantity",
            "cs_item_sk",
        )

    def test_cardinalities(self):
        table = catalog_sales(20000, scale_factor=10, seed=1)
        warehouse = table.column("cs_warehouse_sk")
        values = [v for v in warehouse.to_pylist() if v is not None]
        assert 1 <= min(values) and max(values) <= 10
        ship = [
            v
            for v in table.column("cs_ship_mode_sk").to_pylist()
            if v is not None
        ]
        assert max(ship) <= 20

    def test_contains_some_nulls(self):
        table = catalog_sales(20000, seed=2)
        assert table.column("cs_warehouse_sk").null_count > 0
        assert table.column("cs_item_sk").null_count == 0

    def test_scale_factor_grows_dimensions(self):
        small = catalog_sales(20000, scale_factor=10, seed=3)
        large = catalog_sales(20000, scale_factor=100, seed=3)
        max_small = max(
            v for v in small.column("cs_promo_sk").to_pylist() if v
        )
        max_large = max(
            v for v in large.column("cs_promo_sk").to_pylist() if v
        )
        assert max_large > max_small

    def test_negative_rows_rejected(self):
        with pytest.raises(ReproError):
            catalog_sales(-1)


class TestCustomer:
    def test_schema_and_types(self):
        table = customer(50)
        assert "c_last_name" in table.schema
        assert table.schema.column("c_last_name").dtype.is_variable_width

    def test_birth_ranges(self):
        table = customer(5000, seed=5)
        years = [v for v in table.column("c_birth_year").to_pylist() if v]
        assert min(years) >= 1924 and max(years) <= 1992
        months = [v for v in table.column("c_birth_month").to_pylist() if v]
        assert min(months) >= 1 and max(months) <= 12

    def test_names_duplicate_heavily(self):
        table = customer(5000, seed=6)
        names = [v for v in table.column("c_last_name").to_pylist() if v]
        assert len(set(names)) < 200  # drawn from a fixed pool

    def test_null_fraction(self):
        table = customer(10000, seed=7)
        fraction = table.column("c_first_name").null_count / 10000
        assert 0.01 < fraction < 0.08

    def test_customer_sk_is_dense(self):
        table = customer(10)
        assert table.column("c_customer_sk").to_pylist() == list(range(1, 11))


class TestScaledRows:
    def test_paper_cardinalities_recorded(self):
        assert PAPER_CARDINALITIES[("catalog_sales", 10)] == 14_401_261

    def test_scaling(self):
        assert scaled_rows("customer", 100, 100) == 20_000

    def test_unknown_combination(self):
        with pytest.raises(ReproError):
            scaled_rows("customer", 42, 100)

    def test_bad_scale_down(self):
        with pytest.raises(ReproError):
            scaled_rows("customer", 100, 0)
