"""Tests for the extension features: heuristic algorithm choice, MSD+pdq
fallback, CSV I/O, compression/zone-map analysis, and SQL GROUP BY.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    rle_compression_ratio,
    rle_runs,
    sorting_benefit,
    zone_map_selectivity,
    zone_map_stats,
)
from repro.engine import Database
from repro.errors import BindError, ReproError, SortError, TypeError_
from repro.sort.heuristic import (
    KeyStatistics,
    choose_algorithm,
    estimate_costs,
)
from repro.sort.operator import SortConfig, sort_table
from repro.sort.radix import RadixStats, msd_radix_argsort
from repro.table.column import ColumnVector
from repro.table.io import read_csv, table_to_csv_string, write_csv
from repro.table.table import Table
from repro.types.datatypes import INTEGER, VARCHAR
from repro.types.sortspec import SortSpec


class TestHeuristic:
    def test_statistics_effective_bytes(self):
        matrix = np.zeros((100, 6), dtype=np.uint8)
        matrix[:, 2] = np.arange(100, dtype=np.uint8)
        matrix[:, 5] = 1  # constant: not effective
        stats = KeyStatistics.measure(matrix)
        assert stats.effective_bytes == 1

    def test_statistics_duplicates(self):
        matrix = np.zeros((100, 4), dtype=np.uint8)
        matrix[:, 3] = np.arange(100) % 4
        stats = KeyStatistics.measure(matrix)
        assert stats.duplicate_fraction > 0.9
        assert stats.distinct_ratio == pytest.approx(4 / 100)

    def test_statistics_validation(self):
        with pytest.raises(SortError):
            KeyStatistics.measure(np.zeros((2, 2), dtype=np.int32))
        with pytest.raises(SortError):
            KeyStatistics.measure(np.zeros((2, 2), dtype=np.uint8), key_bytes=5)

    def test_narrow_uniform_keys_choose_radix(self, rng):
        matrix = rng.integers(0, 256, size=(4096, 5)).astype(np.uint8)
        assert choose_algorithm(matrix) == "radix"

    def test_wide_nearly_unique_small_input_chooses_pdq(self, rng):
        # 64 rows with 64 varying bytes: radix would do 64 passes.
        matrix = rng.integers(0, 256, size=(64, 64)).astype(np.uint8)
        assert choose_algorithm(matrix) == "pdqsort"

    def test_cost_estimate_fields(self, rng):
        matrix = rng.integers(0, 256, size=(256, 8)).astype(np.uint8)
        estimate = estimate_costs(KeyStatistics.measure(matrix))
        assert estimate.radix_cost > 0 and estimate.pdqsort_cost > 0
        assert estimate.choice in ("radix", "pdqsort")

    def test_operator_heuristic_mode_correct(self, rng):
        table = Table.from_numpy(
            {"a": rng.integers(0, 1000, 2000).astype(np.int32)}
        )
        config = SortConfig(force_algorithm="heuristic")
        spec = SortSpec.of("a")
        result = sort_table(table, spec, config)
        assert result.is_sorted_by(spec)

    def test_operator_heuristic_with_strings(self):
        values = ["x" * 20 + str(i) for i in (3, 1, 2)]
        table = Table.from_pydict({"s": values})
        config = SortConfig(force_algorithm="heuristic")
        result = sort_table(table, "s", config)
        assert result.column("s").to_pylist() == sorted(values)


class TestMsdPdqFallback:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(0, 150),
        width=st.integers(1, 8),
        seed=st.integers(0, 999),
    )
    def test_matches_plain_msd(self, n, width, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 8, size=(n, width)).astype(np.uint8)
        plain = msd_radix_argsort(matrix)
        hybrid = msd_radix_argsort(matrix, pdq_threshold=64)
        assert plain.tolist() == hybrid.tolist()

    def test_pdq_buckets_counted(self, rng):
        matrix = rng.integers(0, 4, size=(500, 8)).astype(np.uint8)
        stats = RadixStats()
        msd_radix_argsort(matrix, stats, pdq_threshold=200)
        assert stats.insertion_sorted_buckets > 0


class TestCsvIO:
    def test_round_trip_with_nulls(self, tmp_path):
        table = Table.from_pydict(
            {
                "i": [1, None, -3],
                "f": [1.5, 2.25, None],
                "s": ["a,b", None, "line"],
                "b": [True, False, None],
            }
        )
        path = str(tmp_path / "t.csv")
        write_csv(table, path)
        back = read_csv(path)
        assert back.equals(table)

    def test_type_inference(self):
        source = io.StringIO("a,b,c,d\n1,1.5,x,true\n2,2.5,y,false\n")
        table = read_csv(source)
        assert table.schema.column("a").dtype.name == "INTEGER"
        assert table.schema.column("b").dtype.name == "DOUBLE"
        assert table.schema.column("c").dtype.name == "VARCHAR"
        assert table.schema.column("d").dtype.name == "BOOLEAN"

    def test_bigint_inference(self):
        source = io.StringIO(f"a\n{2**40}\n")
        assert read_csv(source).schema.column("a").dtype.name == "BIGINT"

    def test_explicit_dtypes(self):
        source = io.StringIO("a\n1\n")
        table = read_csv(source, dtypes={"a": VARCHAR})
        assert table.column("a").to_pylist() == ["1"]

    def test_bad_value_for_dtype(self):
        source = io.StringIO("a\nxyz\n")
        with pytest.raises(TypeError_):
            read_csv(source, dtypes={"a": INTEGER})

    def test_missing_header(self):
        with pytest.raises(ReproError):
            read_csv(io.StringIO(""))

    def test_ragged_rows(self):
        with pytest.raises(ReproError):
            read_csv(io.StringIO("a,b\n1\n"))

    def test_to_string(self):
        table = Table.from_pydict({"a": [1, None]})
        # A lone NULL field is quoted ("") so it isn't an empty row.
        assert table_to_csv_string(table) == 'a\r\n1\r\n""\r\n' 

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-1000, 1000)),
                st.one_of(
                    st.none(),
                    st.text(
                        alphabet=st.characters(
                            blacklist_categories=("Cs", "Cc")
                        ),
                        min_size=1,
                        max_size=8,
                    ),
                ),
            ),
            max_size=20,
        )
    )
    def test_round_trip_property(self, rows):
        table = Table.from_pydict(
            {"i": [r[0] for r in rows], "s": [r[1] for r in rows]},
            dtypes={"i": INTEGER, "s": VARCHAR},
        )
        buffer = io.StringIO()
        write_csv(table, buffer)
        buffer.seek(0)
        back = read_csv(buffer, dtypes={"i": INTEGER, "s": VARCHAR})
        assert back.equals(table)


class TestCompressionAnalysis:
    def test_rle_runs_constant(self):
        col = ColumnVector.from_values([5, 5, 5])
        assert rle_runs(col) == 1

    def test_rle_runs_alternating(self):
        col = ColumnVector.from_values([1, 2, 1, 2])
        assert rle_runs(col) == 4

    def test_rle_nulls_form_runs(self):
        col = ColumnVector.from_values([1, None, None, 1])
        assert rle_runs(col) == 3

    def test_rle_strings(self):
        col = ColumnVector.from_values(["a", "a", "b"])
        assert rle_runs(col) == 2

    def test_compression_ratio(self):
        col = ColumnVector.from_values([7] * 100)
        assert rle_compression_ratio(col) == 100.0

    def test_zone_map_disjoint_after_sort(self):
        values = np.arange(1000, dtype=np.int32)
        col = ColumnVector.from_numpy(values)
        zone_map = zone_map_stats(col, block_size=100)
        assert zone_map.num_blocks == 10
        assert zone_map.blocks_matching(250, 260) == 1

    def test_zone_map_selectivity_random_is_high(self, rng):
        col = ColumnVector.from_numpy(
            rng.integers(0, 1000, 1000).astype(np.int32)
        )
        assert zone_map_selectivity(col, 400, 410, block_size=100) > 0.9

    def test_sorting_benefit_improves_both(self, rng):
        col = ColumnVector.from_numpy(
            rng.integers(0, 50, 5000).astype(np.int32)
        )
        benefit = sorting_benefit(col, 10, 12, block_size=128)
        assert benefit.rle_improvement > 10
        assert benefit.pruning_improvement > 2

    def test_zone_map_validation(self):
        with pytest.raises(ReproError):
            zone_map_stats(ColumnVector.from_values([1]), block_size=0)


class TestSqlGroupBy:
    @pytest.fixture
    def db(self, rng):
        database = Database()
        database.register(
            "sales",
            Table.from_pydict(
                {
                    "region": [["n", "s", "e"][i % 3] for i in range(90)],
                    "amount": [i % 10 for i in range(90)],
                }
            ),
        )
        return database

    def test_group_by_counts(self, db):
        out = db.execute(
            "SELECT region, count(*) FROM sales GROUP BY region ORDER BY region"
        )
        assert out.to_pydict() == {
            "region": ["e", "n", "s"],
            "count_star": [30, 30, 30],
        }

    def test_group_by_sum_avg(self, db):
        out = db.execute(
            "SELECT region, sum(amount), avg(amount) FROM sales "
            "GROUP BY region ORDER BY region"
        )
        assert out.column("sum_amount").to_pylist() == [135.0, 135.0, 135.0]
        assert out.column("avg_amount").to_pylist() == [4.5, 4.5, 4.5]

    def test_distinct_via_group_by(self, db):
        out = db.execute("SELECT region FROM sales GROUP BY region")
        assert sorted(out.column("region").to_pylist()) == ["e", "n", "s"]

    def test_order_by_aggregate_output(self, db):
        out = db.execute(
            "SELECT region, max(amount) FROM sales GROUP BY region "
            "ORDER BY max_amount DESC, region LIMIT 1"
        )
        assert out.num_rows == 1

    def test_count_star_with_group_by(self, db):
        out = db.execute("SELECT count(*) FROM sales GROUP BY region")
        assert out.column("count_star").to_pylist() == [30, 30, 30]

    def test_plain_column_must_be_grouped(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT amount, count(*) FROM sales GROUP BY region")

    def test_aggregate_without_group_by_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT sum(amount) FROM sales")

    def test_unknown_group_column(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT count(*) FROM sales GROUP BY ghost")

    def test_unknown_aggregate_column(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT region, sum(ghost) FROM sales GROUP BY region")

    def test_group_by_over_subquery(self, db):
        out = db.execute(
            "SELECT region, count(*) FROM "
            "(SELECT region, amount FROM sales ORDER BY amount LIMIT 30) q "
            "GROUP BY region ORDER BY region"
        )
        assert sum(out.column("count_star").to_pylist()) == 30
