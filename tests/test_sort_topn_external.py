"""Tests for the top-N operator and the external (spilling) sort."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import reference_sort
from repro.errors import SortError
from repro.sort.external import ExternalSortOperator, external_sort_table
from repro.sort.operator import SortConfig, sort_table
from repro.sort.topn import TopNOperator, top_n
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec


def random_table(rng, n=2000):
    return Table.from_numpy(
        {
            "a": rng.integers(0, 25, n).astype(np.int32),
            "b": rng.standard_normal(n).astype(np.float32),
            "c": np.arange(n, dtype=np.int32),
        }
    )


class TestTopN:
    def test_equals_sort_plus_slice(self, rng):
        table = random_table(rng)
        spec = SortSpec.of("a", "b DESC")
        expected = sort_table(table, spec).slice(3, 13)
        got = top_n(table, spec, limit=10, offset=3)
        assert got.equals(expected)

    def test_limit_larger_than_input(self, rng):
        table = random_table(rng, 5)
        spec = SortSpec.of("a")
        assert top_n(table, spec, limit=100).num_rows == 5

    def test_zero_limit(self, rng):
        table = random_table(rng, 10)
        assert top_n(table, "a", 0).num_rows == 0

    def test_offset_beyond_input(self, rng):
        table = random_table(rng, 5)
        assert top_n(table, "a", 10, offset=10).num_rows == 0

    def test_negative_limit_raises(self, rng):
        with pytest.raises(SortError):
            TopNOperator(random_table(rng, 1).schema, SortSpec.of("a"), -1)

    def test_with_nulls_and_desc(self):
        table = Table.from_pydict({"x": [3, None, 1, None, 2], "id": [1, 2, 3, 4, 5]})
        spec = SortSpec.of("x DESC NULLS FIRST")
        expected = sort_table(table, spec).slice(0, 3)
        assert top_n(table, spec, 3).equals(expected)

    def test_long_string_ties_exact(self):
        base = "z" * 14
        values = [f"{base}{i}" for i in (3, 1, 2, 0)]
        table = Table.from_pydict({"s": values})
        got = top_n(table, "s", 2)
        assert got.column("s").to_pylist() == sorted(values)[:2]

    def test_stability(self):
        table = Table.from_pydict({"k": [1, 1, 1, 1], "seq": [0, 1, 2, 3]})
        got = top_n(table, "k", 2)
        assert got.column("seq").to_pylist() == [0, 1]

    @settings(max_examples=30, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 5), min_size=1, max_size=60),
        limit=st.integers(0, 20),
        offset=st.integers(0, 10),
    )
    def test_property_matches_full_sort(self, keys, limit, offset):
        table = Table.from_pydict(
            {"k": keys, "seq": list(range(len(keys)))}
        )
        spec = SortSpec.of("k")
        expected = sort_table(table, spec).slice(
            min(offset, len(keys)), min(offset + limit, len(keys))
        )
        assert top_n(table, spec, limit, offset).equals(expected)


class TestExternalSort:
    def test_matches_in_memory(self, rng, tmp_path):
        table = random_table(rng)
        spec = SortSpec.of("a", "b DESC")
        config = SortConfig(run_threshold=256)
        external = external_sort_table(
            table, spec, config, spill_directory=str(tmp_path)
        )
        assert external.equals(sort_table(table, spec, config))

    def test_spills_multiple_runs(self, rng, tmp_path):
        table = random_table(rng, 1000)
        operator = ExternalSortOperator(
            table.schema,
            SortSpec.of("a"),
            SortConfig(run_threshold=128),
            spill_directory=str(tmp_path),
        )
        for chunk in chunk_table(table, 128):
            operator.sink(chunk)

        assert operator.spilled_runs >= 7
        assert operator.spilled_bytes > 0
        result = operator.finalize()
        assert result.equals(sort_table(table, SortSpec.of("a")))

    def test_spill_files_cleaned_up(self, rng, tmp_path):
        table = random_table(rng, 600)
        operator = ExternalSortOperator(
            table.schema,
            SortSpec.of("a"),
            SortConfig(run_threshold=100),
            spill_directory=str(tmp_path),
        )
        for chunk in chunk_table(table, 100):
            operator.sink(chunk)
        operator.finalize()
        assert os.listdir(tmp_path) == []

    def test_strings_supported_when_prefix_exact(self, tmp_path):
        table = Table.from_pydict(
            {"s": ["pear", "apple", None, "fig"], "v": [1, 2, 3, 4]}
        )
        spec = SortSpec.of("s NULLS FIRST")
        result = external_sort_table(
            table, spec, spill_directory=str(tmp_path)
        )
        assert result.equals(reference_sort(table, spec))

    def test_truncated_strings_sort_exactly(self, tmp_path):
        # Strings longer than the key prefix used to raise at finalize;
        # the external sort now refines them to exact byte order.
        values = ["x" * 30, "x" * 29 + "a", "y", "x" * 29]
        table = Table.from_pydict({"s": values})
        operator = ExternalSortOperator(
            table.schema, SortSpec.of("s"), spill_directory=str(tmp_path)
        )
        with operator:
            for chunk in chunk_table(table):
                operator.sink(chunk)
            result = operator.finalize()
        assert result.column("s").to_pylist() == sorted(values)
        assert operator.stats.scalar_kway_merges == 0

    def test_empty_input(self, tmp_path):
        table = Table.from_pydict({"a": []})
        result = external_sort_table(table, "a", spill_directory=str(tmp_path))
        assert result.num_rows == 0

    def test_sink_after_finalize_raises(self, rng, tmp_path):
        table = random_table(rng, 10)
        operator = ExternalSortOperator(
            table.schema, SortSpec.of("a"), spill_directory=str(tmp_path)
        )
        operator.finalize()
        with pytest.raises(SortError):
            operator.sink(next(chunk_table(table)))

    def test_nulls_round_trip_through_spill(self, tmp_path):
        table = Table.from_pydict(
            {"a": [3, None, 1, None, 2], "s": ["x", None, "y", "z", None]}
        )
        spec = SortSpec.of("a NULLS FIRST")
        result = external_sort_table(
            table, spec, SortConfig(run_threshold=2),
            spill_directory=str(tmp_path),
        )
        assert result.equals(reference_sort(table, spec))
