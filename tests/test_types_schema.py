"""Tests for schemas and the key/payload split."""

import pytest

from repro.errors import SchemaError
from repro.types.datatypes import INTEGER, VARCHAR
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortSpec


def make_schema() -> Schema:
    return Schema.of(
        ("country", VARCHAR),
        ("year", INTEGER),
        ColumnDef("id", INTEGER, nullable=False),
    )


class TestSchema:
    def test_names_in_order(self):
        assert make_schema().names == ("country", "year", "id")

    def test_len(self):
        assert len(make_schema()) == 3

    def test_contains(self):
        schema = make_schema()
        assert "year" in schema
        assert "month" not in schema

    def test_column_lookup(self):
        col = make_schema().column("id")
        assert col.dtype is INTEGER and not col.nullable

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            make_schema().column("nope")

    def test_index_of(self):
        assert make_schema().index_of("year") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            make_schema().index_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", INTEGER), ("a", VARCHAR))

    def test_select_preserves_requested_order(self):
        selected = make_schema().select(["id", "country"])
        assert selected.names == ("id", "country")

    def test_str_mentions_not_null(self):
        assert "NOT NULL" in str(make_schema())


class TestKeyPayloadSplit:
    def test_split(self):
        schema = make_schema()
        spec = SortSpec.of("year", "country DESC")
        keys, payload = schema.split_key_payload(spec)
        # Keys come in spec order, payload keeps schema order.
        assert keys.names == ("year", "country")
        assert payload.names == ("id",)

    def test_split_unknown_key_raises(self):
        with pytest.raises(SchemaError):
            make_schema().split_key_payload(SortSpec.of("ghost"))

    def test_split_all_keys_empty_payload(self):
        schema = Schema.of(("a", INTEGER))
        keys, payload = schema.split_key_payload(SortSpec.of("a"))
        assert keys.names == ("a",) and payload.names == ()
