"""The bench-matrix regression gate's contract (benchmarks/regress.py).

The gate compares a candidate BENCH_matrix.json against the committed
baseline.  These tests drive it with synthetic matrices: the required
negative test (an injected >15% hot-path slowdown MUST fail the gate),
the hardware-robustness property (a uniformly slower machine must NOT
fail it, because cells are normalized by the same run's reference
cell), and the dispatch-flip / shape-loss / scale-mismatch rules.
"""

from __future__ import annotations

import copy
import json
import os
import subprocess
import sys

import pytest

_BENCHMARKS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

from regress import compare, dominant_vector_path, main  # noqa: E402


def make_matrix() -> dict:
    """A small but structurally faithful BENCH_matrix.json payload."""

    def cell(seconds, vector_paths=None, rungen=None):
        dispatch = None
        if vector_paths is not None:
            dispatch = {
                "vector_sort_paths": vector_paths,
                "rungen_path": rungen or "",
            }
        return {"seconds": seconds, "identical": True, "dispatch": dispatch}

    return {
        "rows": 24_000,
        "seed": 17,
        "reference_cell": ["uniform", "in_memory"],
        "scenarios": {
            "uniform": {
                "paths": {
                    "in_memory": cell(0.10, {"radix": 2}),
                    "external": cell(0.20, {"radix": 2}, rungen="argsort"),
                    "topn": cell(0.05),
                }
            },
            "near_sorted": {
                "paths": {
                    "in_memory": cell(0.08, {"radix": 2}),
                    "external": cell(
                        0.15, {"radix": 1}, rungen="replacement_selection"
                    ),
                    "topn": cell(0.04),
                }
            },
            "long_string": {
                "paths": {
                    "in_memory": cell(0.40, {"lexsort": 2}),
                    "external": cell(0.60, {"lexsort": 2}, rungen="argsort"),
                    "topn": cell(0.30),
                }
            },
        },
    }


def test_identical_matrices_pass():
    baseline = make_matrix()
    assert compare(baseline, copy.deepcopy(baseline)) == []


def test_injected_slowdown_fails():
    """The ISSUE's negative test: a 1.3x hot-cell slowdown must gate."""
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    cell = candidate["scenarios"]["long_string"]["paths"]["external"]
    cell["seconds"] *= 1.3
    violations = compare(baseline, candidate, threshold=0.15)
    assert len(violations) == 1
    assert "long_string/external" in violations[0]
    assert "hot-path slowdown" in violations[0]


def test_uniformly_slower_machine_passes():
    """2x slower hardware scales the reference too; ratios cancel."""
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    for entry in candidate["scenarios"].values():
        for cell in entry["paths"].values():
            cell["seconds"] *= 2.0
    assert compare(baseline, candidate) == []


def test_reference_speedup_flags_relative_slowdowns():
    """A reference-cell speedup makes unchanged cells relatively slower."""
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    # Candidate reference got 2x faster; other cells unchanged would look
    # "relatively slower" -- and genuinely are, relative to the pipeline
    # baseline.  The gate flags them: asserting the behavior documents it.
    candidate["scenarios"]["uniform"]["paths"]["in_memory"]["seconds"] /= 2
    violations = compare(baseline, candidate)
    assert all("hot-path slowdown" in v for v in violations)


def test_dispatch_flip_fails():
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    flipped = candidate["scenarios"]["long_string"]["paths"]["in_memory"]
    flipped["dispatch"]["vector_sort_paths"] = {"radix": 2}
    violations = compare(baseline, candidate)
    assert any(
        "dominant vector sort path flipped" in v
        and "long_string/in_memory" in v
        for v in violations
    )


def test_rungen_flip_fails():
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    cell = candidate["scenarios"]["near_sorted"]["paths"]["external"]
    cell["dispatch"]["rungen_path"] = "argsort"
    violations = compare(baseline, candidate)
    assert any("run-generation path flipped" in v for v in violations)


def test_missing_path_and_scenario_fail():
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    del candidate["scenarios"]["near_sorted"]["paths"]["external"]
    del candidate["scenarios"]["long_string"]
    violations = compare(baseline, candidate)
    assert any("path missing" in v for v in violations)
    assert any("scenario missing" in v for v in violations)


def test_identity_loss_fails():
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    candidate["scenarios"]["uniform"]["paths"]["external"]["identical"] = False
    violations = compare(baseline, candidate)
    assert any("not byte-identical" in v for v in violations)


def test_scale_mismatch_refused():
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    candidate["rows"] = 6_000
    violations = compare(baseline, candidate)
    assert violations and "scale mismatch" in violations[0]


def test_sub_floor_cells_skip_timing_but_keep_dispatch():
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    # topn cells are below the default 0.02s floor after scaling down.
    for matrix in (baseline, candidate):
        for entry in matrix["scenarios"].values():
            entry["paths"]["topn"]["seconds"] = 0.001
    candidate["scenarios"]["uniform"]["paths"]["topn"]["seconds"] = 0.01
    assert compare(baseline, candidate) == []


def test_dominant_vector_path_tiebreak_deterministic():
    assert dominant_vector_path({"vector_sort_paths": {"b": 2, "a": 2}}) == "a"
    assert dominant_vector_path({"vector_sort_paths": {}}) is None
    assert dominant_vector_path(None) is None


def test_cli_exit_codes(tmp_path):
    """End to end through the argparse entry point, as CI invokes it."""
    baseline = make_matrix()
    candidate = copy.deepcopy(baseline)
    base_path = tmp_path / "baseline.json"
    cand_path = tmp_path / "candidate.json"
    base_path.write_text(json.dumps(baseline))
    cand_path.write_text(json.dumps(candidate))
    assert (
        main(["--baseline", str(base_path), "--candidate", str(cand_path)])
        == 0
    )
    candidate["scenarios"]["long_string"]["paths"]["external"]["seconds"] *= 1.3
    cand_path.write_text(json.dumps(candidate))
    assert (
        main(["--baseline", str(base_path), "--candidate", str(cand_path)])
        == 1
    )


@pytest.mark.slow
def test_gate_against_committed_baseline_subprocess(tmp_path):
    """The committed BENCH_matrix.json gates a copy of itself (exit 0)."""
    repo = os.path.dirname(_BENCHMARKS)
    baseline = os.path.join(repo, "BENCH_matrix.json")
    assert os.path.exists(baseline), "committed baseline missing"
    candidate = tmp_path / "candidate.json"
    candidate.write_text(open(baseline).read())
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(_BENCHMARKS, "regress.py"),
            "--baseline",
            baseline,
            "--candidate",
            str(candidate),
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
