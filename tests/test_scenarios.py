"""The workload scenario catalog: determinism, rng hygiene, shapes.

The generators' whole value is *reproducibility*: the bench matrix, the
regression gate, the dispatch-stability table, and the differential
oracle suite all assume that ``Scenario.table(n, seed)`` yields the
same bytes forever.  These tests pin that property (including
independence from global numpy RNG state), the catalog's declared
stress shapes (long strings really exceed the key prefix, null
fractions really produce NULLs), and the back-compat entry point the
PR 7/8 recorded benchmarks import.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_external_kway import assert_byte_identical
from repro.errors import ReproError
from repro.keys.normalizer import MAX_STRING_PREFIX
from repro.workloads.scenarios import (
    SCENARIOS,
    ColumnSpec,
    scenario_table,
)

ROWS = 500


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_same_bytes(name):
    scenario = SCENARIOS[name]
    assert_byte_identical(
        scenario.table(ROWS, seed=11), scenario.table(ROWS, seed=11)
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_different_seed_different_bytes(name):
    if name == "reverse":
        pytest.skip("reverse is deliberately seed-independent")
    scenario = SCENARIOS[name]
    first = scenario.table(ROWS, seed=1)
    second = scenario.table(ROWS, seed=2)
    assert any(
        not np.array_equal(
            first.column(col).data, second.column(col).data
        )
        for col in first.schema.names
    )


def test_generators_ignore_global_rng_state():
    """Interleaved legacy np.random calls must not perturb a scenario."""
    before = SCENARIOS["zipf_skew"].table(ROWS, seed=3)
    np.random.seed(12345)
    np.random.random(1000)
    after = SCENARIOS["zipf_skew"].table(ROWS, seed=3)
    assert_byte_identical(before, after)


def test_unknown_generator_raises():
    spec = ColumnSpec("x", "no-such-generator")
    with pytest.raises(ReproError, match="unknown value generator"):
        spec.build(np.random.default_rng(0), 10)


def test_scenario_table_backcompat_alias():
    """The pre-catalog name "zipf_dups" still resolves (PR 7 artifacts)."""
    assert_byte_identical(
        scenario_table("zipf_dups", ROWS, seed=5),
        SCENARIOS["zipf_skew"].table(ROWS, seed=5),
    )
    with pytest.raises(ReproError, match="unknown scenario"):
        scenario_table("no-such-scenario", ROWS)


def test_long_strings_exceed_key_prefix():
    """The scenario only stresses refinement if truncation actually
    happens: shared stems past MAX_STRING_PREFIX, ties on the prefix."""
    table = SCENARIOS["long_string"].table(ROWS, seed=9)
    values = table.column("s").data
    assert all(len(v.encode()) > MAX_STRING_PREFIX for v in values)
    prefixes = {v[:MAX_STRING_PREFIX] for v in values}
    assert len(prefixes) < ROWS / 10  # prefix ties are the common case


def test_mixed_null_fractions_materialize():
    table = SCENARIOS["mixed_null"].table(2000, seed=13)
    for col, fraction in (("a", 0.08), ("f", 0.05), ("s", 0.05)):
        validity = table.column(col).validity
        assert validity is not None
        nulls = int((~validity).sum())
        assert 0 < nulls < 2000
        assert abs(nulls / 2000 - fraction) < 0.03
    # NULL slots carry the canonical sentinels (what the sort writes).
    validity = table.column("s").validity
    assert all(v == "" for v in table.column("s").data[~validity])


def test_near_sorted_is_a_permutation_with_local_order():
    table = SCENARIOS["near_sorted"].table(2000, seed=7)
    values = np.sort(table.column("a").data)
    assert np.array_equal(values, np.arange(2000))


def test_sql_rendering():
    scenario = SCENARIOS["mixed_null"]
    assert scenario.sql() == (
        "SELECT * FROM t ORDER BY a NULLS FIRST, f DESC, s"
    )
    assert scenario.sql(limit=10) == (
        "SELECT * FROM t ORDER BY a NULLS FIRST, f DESC, s LIMIT 10"
    )
    assert scenario.sql(limit=10, offset=3).endswith("LIMIT 10 OFFSET 3")


def test_every_scenario_declares_order_and_description():
    for name, scenario in SCENARIOS.items():
        assert scenario.name == name
        assert scenario.description
        assert scenario.order_by
        table = scenario.table(8, seed=1)
        assert table.num_rows == 8
        for part in scenario.order_by.split(","):
            column = part.strip().split()[0]
            assert column in table.schema.names
