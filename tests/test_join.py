"""Tests for merge join and inequality joins, against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.join import Predicate, ie_join, inequality_join, merge_join
from repro.table.table import Table

OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def pairs_of(result: Table, left_id="lid", right_id="rid"):
    return sorted(
        zip(result.column(left_id).to_pylist(), result.column(right_id).to_pylist())
    )


class TestMergeJoin:
    def test_basic_inner_join(self):
        left = Table.from_pydict({"k": [1, 2, 2, 3], "lid": [0, 1, 2, 3]})
        right = Table.from_pydict({"k": [2, 3, 3, 4], "rid": [0, 1, 2, 3]})
        result = merge_join(left, right, ["k"], ["k"])
        assert pairs_of(result) == [(1, 0), (2, 0), (3, 1), (3, 2)]

    def test_null_keys_never_match(self):
        left = Table.from_pydict({"k": [None, 1], "lid": [0, 1]})
        right = Table.from_pydict({"k": [None, 1], "rid": [0, 1]})
        result = merge_join(left, right, ["k"], ["k"])
        assert pairs_of(result) == [(1, 1)]

    def test_colliding_names_prefixed(self):
        left = Table.from_pydict({"k": [1], "v": [10]})
        right = Table.from_pydict({"k": [1], "v": [20]})
        result = merge_join(left, right, ["k"], ["k"])
        assert set(result.schema.names) == {"l_k", "l_v", "r_k", "r_v"}

    def test_different_key_names(self):
        left = Table.from_pydict({"a": [1, 2], "lid": [0, 1]})
        right = Table.from_pydict({"b": [2, 2], "rid": [0, 1]})
        result = merge_join(left, right, ["a"], ["b"])
        assert pairs_of(result) == [(1, 0), (1, 1)]

    def test_multi_key(self):
        left = Table.from_pydict(
            {"a": [1, 1, 2], "b": [1, 2, 1], "lid": [0, 1, 2]}
        )
        right = Table.from_pydict(
            {"a": [1, 1, 2], "b": [2, 2, 9], "rid": [0, 1, 2]}
        )
        result = merge_join(left, right, ["a", "b"], ["a", "b"])
        assert pairs_of(result) == [(1, 0), (1, 1)]

    def test_string_keys(self):
        left = Table.from_pydict({"k": ["x", "y", None], "lid": [0, 1, 2]})
        right = Table.from_pydict({"k": ["y", "z"], "rid": [0, 1]})
        result = merge_join(left, right, ["k"], ["k"])
        assert pairs_of(result) == [(1, 0)]

    def test_long_string_keys_beyond_prefix(self):
        base = "p" * 14
        left = Table.from_pydict(
            {"k": [f"{base}1", f"{base}2"], "lid": [0, 1]}
        )
        right = Table.from_pydict(
            {"k": [f"{base}2", f"{base}3"], "rid": [0, 1]}
        )
        result = merge_join(left, right, ["k"], ["k"])
        assert pairs_of(result) == [(1, 0)]

    def test_empty_inputs(self):
        left = Table.from_pydict({"k": [], "lid": []})
        right = Table.from_pydict({"k": [1], "rid": [0]})
        assert merge_join(left, right, ["k"], ["k"]).num_rows == 0

    def test_key_count_mismatch(self):
        left = Table.from_pydict({"a": [1]})
        right = Table.from_pydict({"b": [1]})
        with pytest.raises(SortError):
            merge_join(left, right, ["a"], [])

    def test_type_mismatch(self):
        left = Table.from_pydict({"a": [1]})
        right = Table.from_pydict({"b": ["x"]})
        with pytest.raises(SortError):
            merge_join(left, right, ["a"], ["b"])

    @settings(max_examples=30, deadline=None)
    @given(
        left_keys=st.lists(
            st.one_of(st.none(), st.integers(0, 6)), max_size=25
        ),
        right_keys=st.lists(
            st.one_of(st.none(), st.integers(0, 6)), max_size=25
        ),
    )
    def test_property_matches_nested_loop(self, left_keys, right_keys):
        left = Table.from_pydict(
            {"k": left_keys, "lid": list(range(len(left_keys)))}
        )
        right = Table.from_pydict(
            {"k": right_keys, "rid": list(range(len(right_keys)))}
        )
        result = merge_join(left, right, ["k"], ["k"])
        expected = sorted(
            (i, j)
            for i, lk in enumerate(left_keys)
            for j, rk in enumerate(right_keys)
            if lk is not None and lk == rk
        )
        assert pairs_of(result) == expected


class TestPredicate:
    def test_parse(self):
        p = Predicate.parse("x <= y")
        assert p == Predicate("x", "<=", "y")

    def test_parse_strict(self):
        assert Predicate.parse("a>b").op == ">"

    def test_parse_no_op(self):
        with pytest.raises(SortError):
            Predicate.parse("a = b")

    def test_invalid_op(self):
        with pytest.raises(SortError):
            Predicate("a", "!=", "b")


class TestInequalityJoin:
    @settings(max_examples=40, deadline=None)
    @given(
        left_values=st.lists(
            st.one_of(st.none(), st.integers(0, 9)), max_size=20
        ),
        right_values=st.lists(
            st.one_of(st.none(), st.integers(0, 9)), max_size=20
        ),
        op=st.sampled_from(["<", "<=", ">", ">="]),
    )
    def test_property_matches_nested_loop(self, left_values, right_values, op):
        left = Table.from_pydict(
            {"x": left_values, "lid": list(range(len(left_values)))}
        )
        right = Table.from_pydict(
            {"y": right_values, "rid": list(range(len(right_values)))}
        )
        result = inequality_join(left, right, f"x {op} y")
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_values)
            for j, rv in enumerate(right_values)
            if lv is not None and rv is not None and OPS[op](lv, rv)
        )
        assert pairs_of(result) == expected

    def test_string_columns_rejected(self):
        left = Table.from_pydict({"x": ["a"]})
        right = Table.from_pydict({"y": ["b"]})
        with pytest.raises(SortError):
            inequality_join(left, right, "x < y")


class TestIEJoin:
    @settings(max_examples=30, deadline=None)
    @given(
        n_left=st.integers(0, 15),
        n_right=st.integers(0, 15),
        op1=st.sampled_from(["<", "<=", ">", ">="]),
        op2=st.sampled_from(["<", "<=", ">", ">="]),
        seed=st.integers(0, 1000),
    )
    def test_property_matches_nested_loop(self, n_left, n_right, op1, op2, seed):
        rng = np.random.default_rng(seed)
        left = Table.from_pydict(
            {
                "a": [int(v) for v in rng.integers(0, 6, n_left)],
                "b": [int(v) for v in rng.integers(0, 6, n_left)],
                "lid": list(range(n_left)),
            }
        )
        right = Table.from_pydict(
            {
                "a": [int(v) for v in rng.integers(0, 6, n_right)],
                "b": [int(v) for v in rng.integers(0, 6, n_right)],
                "rid": list(range(n_right)),
            }
        )
        result = ie_join(left, right, f"a {op1} a", f"b {op2} b")
        expected = sorted(
            (i, j)
            for i in range(n_left)
            for j in range(n_right)
            if OPS[op1](left.row(i)[0], right.row(j)[0])
            and OPS[op2](left.row(i)[1], right.row(j)[1])
        )
        assert pairs_of(result) == expected

    def test_nulls_dropped(self):
        left = Table.from_pydict({"a": [None, 1], "b": [1, None], "lid": [0, 1]})
        right = Table.from_pydict({"a": [5], "b": [5], "rid": [0]})
        result = ie_join(left, right, "a < a", "b < b")
        assert result.num_rows == 0

    def test_paper_style_overlap_query(self):
        # Rows of left whose duration exceeds right's but revenue trails:
        # the canonical IEJoin example.
        left = Table.from_pydict(
            {"dur": [140, 100, 90], "rev": [9, 12, 5], "lid": [0, 1, 2]}
        )
        right = Table.from_pydict(
            {"dur": [100, 140, 80], "rev": [12, 11, 10], "rid": [0, 1, 2]}
        )
        result = ie_join(left, right, "dur > dur", "rev < rev")
        assert pairs_of(result) == [(0, 0), (0, 2), (2, 2)]
