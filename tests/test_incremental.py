"""The incremental sorter: maintained-view semantics, unit by unit.

The scenario differential suite (tests/test_oracle.py) already proves
the view equals the one-shot sort for every workload generator; these
tests pin the *contract* -- argument validation, run buffering and
auto-compaction, view caching, the deferred-string edge the harness
exposed, and the SortService integration (appends/snapshots as
governed tickets).
"""

from __future__ import annotations

import pytest

from test_external_kway import assert_byte_identical
from repro.engine.database import Database
from repro.errors import SchemaError, ServiceError, SortError
from repro.service.core import SortService
from repro.sort.incremental import IncrementalSorter
from repro.sort.operator import SortConfig, sort_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec


def _table(values: dict) -> Table:
    return Table.from_pydict(values)


def _ints(n: int, start: int = 0) -> Table:
    return _table(
        {"a": [(start + i) * 7 % 23 for i in range(n)], "p": list(range(n))}
    )


def oracle(table: Table, spec: str) -> Table:
    parsed = SortSpec.of(*[p.strip() for p in spec.split(",")])
    return sort_table(table, parsed, SortConfig(use_vector_kernels=False))


# --------------------------------------------------------------------- #
# Construction and validation
# --------------------------------------------------------------------- #


def test_compact_threshold_must_be_at_least_two():
    table = _ints(4)
    with pytest.raises(SortError, match="at least 2"):
        IncrementalSorter(table.schema, "a", compact_threshold=1)


def test_requires_vector_kernels():
    table = _ints(4)
    with pytest.raises(SortError, match="use_vector_kernels"):
        IncrementalSorter(
            table.schema, "a", config=SortConfig(use_vector_kernels=False)
        )


def test_unknown_sort_column_rejected_at_construction():
    table = _ints(4)
    with pytest.raises(SchemaError):
        IncrementalSorter(table.schema, "nope")


def test_delta_schema_must_match():
    table = _ints(4)
    sorter = IncrementalSorter(table.schema, "a")
    with pytest.raises(SortError, match="does not match view"):
        sorter.insert(_table({"b": [1]}))


def test_prefix_only_views_rejected():
    # exact_varchar=False would let truncated prefixes decide the view
    # order, which drifts as deltas arrive; the sorter refuses.
    table = _table({"s": ["x" * 20, "y" * 20], "p": [0, 1]})
    sorter = IncrementalSorter(
        table.schema,
        "s",
        config=SortConfig(exact_varchar=False, string_prefix=4),
    )
    with pytest.raises(SortError, match="exact_varchar"):
        sorter.insert(table)


# --------------------------------------------------------------------- #
# Run buffering, compaction, caching
# --------------------------------------------------------------------- #


def test_empty_insert_and_empty_view():
    table = _ints(4)
    sorter = IncrementalSorter(table.schema, "a")
    sorter.insert(table.slice(0, 0))
    assert sorter.num_rows == 0
    assert sorter.pending_runs == 0
    assert sorter.view().num_rows == 0
    assert sorter.stats.deltas_inserted == 0


def test_runs_buffer_until_threshold_then_compact():
    table = _ints(40)
    sorter = IncrementalSorter(table.schema, "a", compact_threshold=3)
    sorter.insert(table.slice(0, 10))
    sorter.insert(table.slice(10, 20))
    assert sorter.pending_runs == 2
    assert sorter.stats.compactions == 0
    sorter.insert(table.slice(20, 30))  # third run triggers compaction
    assert sorter.pending_runs == 1
    assert sorter.stats.compactions == 1
    assert sorter.stats.runs_compacted == 3
    assert sorter.stats.rows_compacted == 30
    assert sorter.stats.peak_runs == 3
    assert sorter.num_rows == 30
    sorter.insert(table.slice(30, 40))
    assert sorter.num_rows == 40
    assert_byte_identical(oracle(table, "a, p"), sorter.view())
    # view() compacted the trailing run into the single view run.
    assert sorter.pending_runs == 1


def test_view_snapshot_cached_until_next_insert():
    table = _ints(30)
    sorter = IncrementalSorter(table.schema, "a")
    sorter.insert(table.slice(0, 15))
    first = sorter.view()
    assert sorter.view() is first  # steady reads are free
    sorter.insert(table.slice(15, 30))
    second = sorter.view()
    assert second is not first
    assert_byte_identical(oracle(table, "a, p"), second)


def test_stable_tie_order_across_deltas():
    # Equal keys across deltas must keep arrival order (row-id suffix +
    # earlier-run-wins merge), exactly like the one-shot stable sort.
    table = _table({"a": [5] * 12, "p": list(range(12))})
    sorter = IncrementalSorter(table.schema, "a", compact_threshold=2)
    for start in range(0, 12, 3):
        sorter.insert(table.slice(start, start + 3))
    assert_byte_identical(table, sorter.view())


def test_deferred_string_refinement_through_compaction():
    # Duplicate full strings beyond the 12-byte prefix with a trailing
    # tiebreak key: refinement must not scramble the trailing key bytes
    # before compaction merges (the deferred-refinement bug the bench
    # matrix exposed in the one-shot operators).
    strings = [f"prefix-{'pad' * 4}-{i % 3:02d}" for i in range(24)]
    table = _table({"s": strings, "p": [23 - i for i in range(24)]})
    sorter = IncrementalSorter(table.schema, "s, p", compact_threshold=2)
    for start in range(0, 24, 6):
        sorter.insert(table.slice(start, start + 6))
    assert_byte_identical(oracle(table, "s, p"), sorter.view())
    assert sorter.stats.sort.full_key_compares >= 0  # refine ran per view


# --------------------------------------------------------------------- #
# Service integration: appends and snapshots as governed tickets
# --------------------------------------------------------------------- #


def _service(db: Database) -> SortService:
    return SortService(
        db, memory_budget=8 << 20, workers=1, cache_capacity=0
    )


def test_service_maintained_view_round_trip():
    table = _ints(36)
    db = Database()
    db.register("t", table)
    with _service(db) as service:
        service.maintain_view("v", "t", "a, p", compact_threshold=3)
        for start in range(0, 36, 9):
            delta = table.slice(start, start + 9)
            # result() is the write barrier that pins arrival order.
            assert service.append_delta("v", delta).result(10.0) is delta
        snapshot = service.view_snapshot("v").result(10.0)
        assert_byte_identical(oracle(table, "a, p"), snapshot)
        stats = service.view_stats("v")
        assert stats.deltas_inserted == 4
        assert stats.rows_inserted == 36
        assert service.stats.view_deltas == 4
        assert service.stats.view_snapshots == 1


def test_service_duplicate_and_missing_views_rejected():
    db = Database()
    db.register("t", _ints(4))
    with _service(db) as service:
        service.maintain_view("v", "t", "a")
        with pytest.raises(ServiceError, match="already maintained"):
            service.maintain_view("v", "t", "a")
        with pytest.raises(ServiceError, match="no maintained view"):
            service.view_snapshot("ghost")
        with pytest.raises(ServiceError, match="no maintained view"):
            service.append_delta("ghost", _ints(1))
