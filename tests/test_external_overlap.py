"""Overlapped prefetch, replacement selection, and multipass merging.

Three properties anchor every test here:

* **Byte identity.**  Normalized keys carry a unique ascending row-id
  suffix, so the final output is a function of the input alone -- not of
  run partitioning, read-ahead timing, or merge pass shape.  Every
  feature configuration must therefore produce byte-identical output.
* **Bounded resources.**  Read-ahead stays within its block budget, no
  prefetch thread survives a sort, and spill directories end empty.
* **Honest dispatch.**  The presortedness probe picks replacement
  selection only where it helps, and the exact-string gate keeps it
  (and multipass merging) off paths whose key bytes are refined later.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from test_external_kway import SPECS, assert_byte_identical, mixed_table
from repro.errors import SortError
from repro.sort.external import ExternalSortOperator
from repro.sort.faults import SlowStorageIO
from repro.sort.operator import SortConfig
from repro.sort.prefetch import prefetch_budget_blocks
from repro.sort.rungen import (
    PROBE_THRESHOLD,
    RUN_CAP_FACTOR,
    presortedness,
)
from repro.sort.spillfile import VerifiedTailCache
from repro.table.chunk import chunk_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec


def sort_external(table, spec, directory, io=None, **overrides):
    config_kwargs = dict(run_threshold=1000)
    config_kwargs.update(overrides)
    os.makedirs(directory, exist_ok=True)
    operator = ExternalSortOperator(
        table.schema,
        SortSpec.of(*[part.strip() for part in spec.split(",")]),
        SortConfig(**config_kwargs),
        spill_directory=str(directory),
        io=io,
    )
    with operator:
        for chunk in chunk_table(table, 512):
            operator.sink(chunk)
        result = operator.finalize()
    return result, operator.stats


def near_sorted_table(rng, n, jitter=40):
    """Sorted int64 keys with bounded local displacement."""
    base = np.arange(n, dtype=np.int64)
    order = np.argsort(
        base + rng.integers(-jitter, jitter + 1, n), kind="stable"
    )
    return Table.from_pydict(
        {
            "a": [int(v) for v in base[order]],
            "p": [int(v) for v in rng.integers(0, 1 << 30, n)],
        }
    )


def no_prefetch_threads():
    return not any(
        thread.name.startswith("spill-prefetch")
        for thread in threading.enumerate()
    )


class TestPrefetchByteIdentity:
    @pytest.mark.parametrize("spec", SPECS)
    def test_on_off_identical(self, rng, tmp_path, spec):
        table = mixed_table(rng, 6000)
        off, _ = sort_external(
            table, spec, tmp_path / "off", prefetch_blocks=0
        )
        on, stats = sort_external(
            table, spec, tmp_path / "on", prefetch_blocks=2
        )
        assert_byte_identical(on, off)
        assert stats.prefetch_hits + stats.prefetch_misses > 0
        assert stats.prefetch_peak_blocks >= 1

    def test_budget_bounds_read_ahead(self, rng, tmp_path):
        table = mixed_table(rng, 6000)
        _, stats = sort_external(
            table, "a", tmp_path, prefetch_blocks=2
        )
        runs = stats.runs_generated
        budget = prefetch_budget_blocks(2, runs, 4096, 1000)
        # Scheduled read-ahead respects the budget; synchronous fallback
        # windows (needed-now data, not read-ahead) may add at most one
        # buffered block per run on top.
        assert 1 <= stats.prefetch_peak_blocks <= budget + runs

    def test_zero_depth_disables_prefetch(self, rng, tmp_path):
        table = mixed_table(rng, 6000)
        result, stats = sort_external(
            table, "a", tmp_path, prefetch_blocks=0
        )
        assert result.num_rows == 6000
        assert stats.prefetch_hits == 0
        assert stats.prefetch_misses == 0
        assert stats.prefetch_peak_blocks == 0

    def test_no_leaked_threads(self, rng, tmp_path):
        table = mixed_table(rng, 4000)
        sort_external(table, "a, s DESC", tmp_path, prefetch_blocks=2)
        assert no_prefetch_threads()

    def test_spill_directory_left_empty(self, rng, tmp_path):
        table = mixed_table(rng, 4000)
        sort_external(table, "a", tmp_path, prefetch_blocks=2)
        assert os.listdir(tmp_path) == []


class TestSlowStorageOverlap:
    def test_slow_reads_overlap_and_stay_identical(self, rng, tmp_path):
        table = mixed_table(rng, 5000)
        reference, _ = sort_external(table, "a", tmp_path / "raw")
        io = SlowStorageIO(read_delay_s=0.0002)
        result, stats = sort_external(
            table, "a", tmp_path / "slow", io=io, prefetch_blocks=2
        )
        assert_byte_identical(result, reference)
        assert io.reads > 0
        # Background read+verify time is attributed to the overlapped
        # phase, not to the critical-path spill_io counter.
        assert stats.phase_seconds.get("spill_io_overlap", 0.0) > 0.0
        assert no_prefetch_threads()


class TestReplacementSelection:
    @pytest.mark.parametrize("spec", SPECS)
    def test_forced_rs_byte_identical(self, rng, tmp_path, spec):
        table = mixed_table(rng, 6000)
        plain, _ = sort_external(
            table, spec, tmp_path / "plain", replacement_selection=False
        )
        forced, stats = sort_external(
            table, spec, tmp_path / "forced", replacement_selection=True
        )
        assert_byte_identical(forced, plain)
        if any(part.strip().startswith("s") for part in spec.split(",")):
            # Exact string sorting refines key bytes during the merge;
            # replacement selection must stay gated off.
            assert stats.rungen_path == "argsort"
        else:
            assert stats.rungen_path == "replacement_selection"

    def test_near_sorted_longer_fewer_runs(self, rng, tmp_path):
        table = near_sorted_table(rng, 8000)
        plain, plain_stats = sort_external(
            table, "a", tmp_path / "plain", replacement_selection=False
        )
        forced, stats = sort_external(
            table, "a", tmp_path / "forced", replacement_selection=True
        )
        assert_byte_identical(forced, plain)
        assert stats.runs_generated < plain_stats.runs_generated
        assert max(stats.run_lengths) > 1000  # beyond the run threshold
        # The cap closes a run within one selection step of the limit.
        assert max(stats.run_lengths) <= RUN_CAP_FACTOR * 1000 + 2048

    def test_auto_dispatch_probes(self, rng, tmp_path):
        near = near_sorted_table(rng, 6000)
        _, near_stats = sort_external(table=near, spec="a", directory=tmp_path / "near")
        assert near_stats.rungen_path == "replacement_selection"
        assert near_stats.rungen_probe >= PROBE_THRESHOLD

        random_table = Table.from_pydict(
            {
                "a": [int(v) for v in rng.integers(0, 1 << 40, 6000)],
                "p": list(range(6000)),
            }
        )
        _, random_stats = sort_external(
            table=random_table, spec="a", directory=tmp_path / "random"
        )
        assert random_stats.rungen_path == "argsort"
        assert 0.0 <= random_stats.rungen_probe < PROBE_THRESHOLD

    def test_desc_nulls_first(self, rng, tmp_path):
        values = [
            None if int(v) % 17 == 0 else int(v)
            for v in rng.integers(0, 500, 6000)
        ]
        table = Table.from_pydict({"a": values, "p": list(range(6000))})
        spec = "a DESC NULLS FIRST"
        plain, _ = sort_external(
            table, spec, tmp_path / "plain", replacement_selection=False
        )
        forced, stats = sort_external(
            table, spec, tmp_path / "forced", replacement_selection=True
        )
        assert stats.rungen_path == "replacement_selection"
        assert_byte_identical(forced, plain)

    def test_duplicate_heavy(self, rng, tmp_path):
        table = Table.from_pydict(
            {
                "a": sorted(int(v) for v in rng.integers(0, 25, 6000)),
                "p": list(range(6000)),
            }
        )
        plain, plain_stats = sort_external(
            table, "a", tmp_path / "plain", replacement_selection=False
        )
        forced, stats = sort_external(
            table, "a", tmp_path / "forced", replacement_selection=True
        )
        assert_byte_identical(forced, plain)
        assert stats.runs_generated < plain_stats.runs_generated

    def test_reverse_worst_case(self, rng, tmp_path):
        table = Table.from_pydict(
            {
                "a": list(range(6000, 0, -1)),
                "p": [int(v) for v in rng.integers(0, 1 << 30, 6000)],
            }
        )
        plain, _ = sort_external(
            table, "a", tmp_path / "plain", replacement_selection=False
        )
        forced, _ = sort_external(
            table, "a", tmp_path / "forced", replacement_selection=True
        )
        assert_byte_identical(forced, plain)

    def test_mixed_numeric_types(self, rng, tmp_path):
        table = mixed_table(rng, 6000)
        spec = "a, f DESC"
        plain, _ = sort_external(
            table, spec, tmp_path / "plain", replacement_selection=False
        )
        forced, stats = sort_external(
            table, spec, tmp_path / "forced", replacement_selection=True
        )
        assert stats.rungen_path == "replacement_selection"
        assert_byte_identical(forced, plain)

    def test_probe_shapes(self):
        rng = np.random.default_rng(5)
        sorted_keys = np.sort(
            rng.integers(0, 1 << 62, 4096).astype(np.uint64)
        ).astype(">u8").view(np.uint8).reshape(4096, 8)
        assert presortedness(sorted_keys) == 1.0
        assert presortedness(sorted_keys[::-1]) == 0.0
        shuffled = sorted_keys[rng.permutation(4096)]
        assert 0.2 < presortedness(shuffled) < 0.8


class TestMultipassMerge:
    def test_fan_in_multipass_byte_identical(self, rng, tmp_path):
        table = mixed_table(rng, 6000)
        single, single_stats = sort_external(
            table, "a", tmp_path / "single", run_threshold=500
        )
        multi, stats = sort_external(
            table, "a", tmp_path / "multi", run_threshold=500, merge_fan_in=4
        )
        assert_byte_identical(multi, single)
        assert single_stats.merge_passes == 1
        assert stats.merge_passes >= 2
        assert os.listdir(tmp_path / "multi") == []

    def test_fan_in_multipass_with_string_heaps(self, rng, tmp_path):
        # mixed_table strings fit inside the key prefix, so byte order
        # is exact and multipass is allowed -- intermediate runs must
        # rebuild their string heaps correctly.
        table = mixed_table(rng, 6000)
        spec = "s NULLS FIRST, a"
        single, _ = sort_external(
            table, spec, tmp_path / "single", run_threshold=500
        )
        multi, stats = sort_external(
            table,
            spec,
            tmp_path / "multi",
            run_threshold=500,
            merge_fan_in=2,
        )
        assert_byte_identical(multi, single)
        assert stats.merge_passes >= 2

    def test_fan_in_gated_off_for_inexact_strings(self, rng, tmp_path):
        # Strings longer than the key prefix need exact-varchar
        # refinement, which rewrites key bytes at the final merge;
        # intermediate runs cannot be cut from unrefined keys.
        long_strings = [
            f"shared-long-prefix-{int(v):012d}"
            for v in rng.integers(0, 2000, 6000)
        ]
        table = Table.from_pydict(
            {"s": long_strings, "p": list(range(6000))}
        )
        single, _ = sort_external(
            table, "s", tmp_path / "single", run_threshold=500
        )
        multi, stats = sort_external(
            table, "s", tmp_path / "multi", run_threshold=500, merge_fan_in=2
        )
        assert_byte_identical(multi, single)
        assert stats.merge_passes == 1

    def test_fan_in_validation(self):
        with pytest.raises(SortError):
            SortConfig(merge_fan_in=1)
        with pytest.raises(SortError):
            SortConfig(prefetch_blocks=-1)

    def test_fan_in_composes_with_rs_and_prefetch(self, rng, tmp_path):
        table = near_sorted_table(rng, 8000)
        reference, _ = sort_external(
            table,
            "a",
            tmp_path / "ref",
            run_threshold=500,
            prefetch_blocks=0,
            replacement_selection=False,
        )
        combined, stats = sort_external(
            table,
            "a",
            tmp_path / "combined",
            run_threshold=500,
            prefetch_blocks=2,
            replacement_selection=True,
            merge_fan_in=4,
        )
        assert_byte_identical(combined, reference)
        assert stats.rungen_path == "replacement_selection"
        assert no_prefetch_threads()


class TestVerifiedTailCache:
    def test_cache_semantics(self):
        cache = VerifiedTailCache()
        assert cache.get(0, 3) is None
        cache.put(0, 3, b"abc")
        assert cache.get(0, 3) == b"abc"
        assert cache.get(0, 4) is None  # different page misses
        assert cache.get(1, 3) is None  # different section misses
        cache.put(0, 4, b"def")  # replaces: one page per section
        assert cache.get(0, 3) is None
        assert cache.get(0, 4) == b"def"

    def test_straddling_reads_skip_reverification(self, rng, tmp_path):
        table = mixed_table(rng, 4000)
        operator = ExternalSortOperator(
            table.schema,
            SortSpec.of("a"),
            SortConfig(run_threshold=1000),
            spill_directory=str(tmp_path),
        )
        with operator:
            for chunk in chunk_table(table, 512):
                operator.sink(chunk)
            run = operator._runs[0]
            stats = operator.stats
            page = run.header.page_size
            # First row whose bytes start inside page 1 (rows do not
            # align to page boundaries, so round up).
            inside = -(-page // run.key_width)
            # Warm: verifies every page the range touches, caches the
            # tail page (page 1).
            first = run.read_key_block(0, inside + 2, stats)
            before = stats.checksum_verifications
            # Entirely inside the cached tail page: zero new
            # verifications, served from memory.
            again = run.read_key_block(inside, inside + 2, stats)
            assert stats.checksum_verifications == before
            assert again.tobytes() == first[inside:].tobytes()
            operator.finalize()
