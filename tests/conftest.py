"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import functools
import os
import sys

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec, tuple_compare  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_table() -> Table:
    """The paper's running example: customers with NULLs and strings."""
    return Table.from_pydict(
        {
            "c_birth_country": [
                "NETHERLANDS",
                "GERMANY",
                None,
                "GERMANY",
                "BELGIUM",
            ],
            "c_birth_year": [1992, 1968, 1990, None, 1968],
            "c_customer_sk": [1, 2, 3, 4, 5],
        }
    )


def reference_sort(table: Table, spec: SortSpec) -> Table:
    """Ground-truth sort: stable Python sort with tuple_compare.

    Every fast path in the library (normalized keys, radix, pdqsort,
    merges, external sort) is checked against this.
    """
    key_indices = [table.schema.index_of(name) for name in spec.column_names]
    rows = list(range(table.num_rows))

    def compare(i: int, j: int) -> int:
        left = tuple(table.row(i)[c] for c in key_indices)
        right = tuple(table.row(j)[c] for c in key_indices)
        return tuple_compare(left, right, spec)

    rows.sort(key=functools.cmp_to_key(compare))
    return table.take(np.array(rows, dtype=np.int64))


@pytest.fixture(autouse=True, scope="session")
def no_resource_leaks():
    """Session guard: tests must not leak spill dirs, shm, or threads.

    Any ``repro-spill-*`` directory under the system temp root or
    ``repro-sort-*`` POSIX shared-memory segment created during the run
    and still present at teardown is a cleanup bug in an operator (or a
    test that bypassed ``tmp_path``), so the whole session fails.  The
    same goes for background threads: every ``repro-service-*`` worker
    or deadline timer and every ``spill-prefetch-*`` pool thread must
    have been joined by the service/operator that started it.
    """
    import glob
    import tempfile
    import threading

    spill_pattern = os.path.join(tempfile.gettempdir(), "repro-spill-*")
    shm_pattern = "/dev/shm/repro-sort-*"
    before = set(glob.glob(spill_pattern)) | set(glob.glob(shm_pattern))
    yield
    after = set(glob.glob(spill_pattern)) | set(glob.glob(shm_pattern))
    leaked = sorted(after - before)
    assert not leaked, f"tests leaked spill/shared-memory resources: {leaked}"
    leaked_threads = sorted(
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("repro-service", "spill-prefetch"))
    )
    assert not leaked_threads, (
        f"tests leaked background threads: {leaked_threads}"
    )
