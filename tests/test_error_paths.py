"""Error-path and edge-case coverage across the library."""

import numpy as np
import pytest

from repro.errors import (
    KeyEncodingError,
    ReproError,
    SimulationError,
    SortError,
)
from repro.keys.decoder import decode_key_row, decode_segment
from repro.keys.normalizer import build_layout, normalize_keys
from repro.sort.analysis import (
    comparison_budget,
    crossover_runs,
    merge_comparisons,
    run_generation_comparisons,
    run_generation_share,
)
from repro.sort.operator import SortConfig, SortOperator, sort_table
from repro.table.table import Table
from repro.types.sortspec import SortSpec


class TestDecoderErrors:
    def test_segment_wrong_length(self):
        table = Table.from_pydict({"a": [1]})
        layout = build_layout(table, SortSpec.of("a"), include_row_id=False)
        with pytest.raises(KeyEncodingError):
            decode_segment(b"\x00", layout.segments[0])

    def test_invalid_null_indicator(self):
        table = Table.from_pydict({"a": [1]})
        layout = build_layout(table, SortSpec.of("a"), include_row_id=False)
        segment = layout.segments[0]
        bad = bytes([0x7F]) + b"\x00" * segment.value_width
        with pytest.raises(KeyEncodingError):
            decode_segment(bad, segment)

    def test_decode_row_accepts_ndarray(self):
        table = Table.from_pydict({"a": [7]})
        keys = normalize_keys(table, SortSpec.of("a"), include_row_id=False)
        assert decode_key_row(keys.matrix[0], keys.layout) == (7,)

    def test_descending_decode_round_trip(self):
        table = Table.from_pydict({"a": [-5, 0, 5]})
        keys = normalize_keys(table, SortSpec.of("a DESC"), include_row_id=False)
        for i, expected in enumerate((-5, 0, 5)):
            assert decode_key_row(keys.matrix[i], keys.layout) == (expected,)


class TestAnalysisValidation:
    @pytest.mark.parametrize("n,k", [(0, 1), (10, 0), (4, 5)])
    def test_rejects_bad_shapes(self, n, k):
        with pytest.raises(SortError):
            run_generation_comparisons(n, k)
        with pytest.raises(SortError):
            merge_comparisons(n, k)

    def test_crossover_positive_only(self):
        with pytest.raises(SortError):
            crossover_runs(0)

    def test_single_run_no_merge(self):
        budget = comparison_budget(1024, 1)
        assert budget.merge == 0.0
        assert not budget.merge_dominates

    def test_n_equals_k(self):
        assert run_generation_comparisons(8, 8) == 0.0
        assert run_generation_share(8, 8) == 0.0

    def test_merge_dominates_past_sqrt_n(self):
        n = 1 << 16
        assert not comparison_budget(n, 4).merge_dominates
        assert comparison_budget(n, 1024).merge_dominates


class TestOperatorEdgeCases:
    def test_all_nulls_key_column(self):
        table = Table.from_pydict({"a": [None, None, None], "b": [3, 1, 2]})
        result = sort_table(table, "a, b")
        assert result.column("b").to_pylist() == [1, 2, 3]

    def test_single_distinct_value_radix(self):
        table = Table.from_pydict({"a": [42] * 100, "seq": list(range(100))})
        result = sort_table(table, "a", SortConfig(run_threshold=16))
        assert result.column("seq").to_pylist() == list(range(100))

    def test_empty_strings_sort_before_others(self):
        table = Table.from_pydict({"s": ["b", "", "a", None]})
        result = sort_table(table, "s NULLS LAST")
        assert result.column("s").to_pylist() == ["", "a", "b", None]

    def test_negative_and_positive_floats(self):
        values = [0.0, -0.0, 1.5, -1.5, float("inf"), float("-inf")]
        table = Table.from_pydict({"f": values})
        result = sort_table(table, "f")
        out = result.column("f").to_pylist()
        assert out[0] == float("-inf") and out[-1] == float("inf")
        assert out[1] == -1.5 and out[-2] == 1.5

    def test_nan_sorts_last_ascending(self):
        table = Table.from_pydict({"f": [float("nan"), 1.0, None, -1.0]})
        result = sort_table(table, "f NULLS LAST")
        out = result.column("f").to_pylist()
        assert out[0] == -1.0 and out[1] == 1.0
        assert out[2] != out[2]  # NaN
        assert out[3] is None

    def test_date_column_sorts_as_days(self):
        from repro.types.datatypes import DATE

        table = Table.from_pydict(
            {"d": [20000, -1, 0, 11000]}, dtypes={"d": DATE}
        )
        result = sort_table(table, "d")
        assert result.column("d").to_pylist() == [-1, 0, 11000, 20000]

    def test_smallint_and_boolean_keys(self):
        from repro.types.datatypes import BOOLEAN, SMALLINT

        table = Table.from_pydict(
            {"s": [3, -2, 0], "b": [True, False, True]},
            dtypes={"s": SMALLINT, "b": BOOLEAN},
        )
        result = sort_table(table, "b, s")
        assert result.column("b").to_pylist() == [False, True, True]
        assert result.column("s").to_pylist() == [-2, -2 + 2, 3]

    def test_many_key_columns(self):
        rng = np.random.default_rng(0)
        data = {
            f"k{i}": [int(v) for v in rng.integers(0, 3, 200)]
            for i in range(8)
        }
        table = Table.from_pydict(data)
        spec = SortSpec.of(*[f"k{i}" for i in range(8)])
        result = sort_table(table, spec, SortConfig(run_threshold=64))
        assert result.is_sorted_by(spec)

    def test_operator_reports_prefix_exact_flag(self):
        table = Table.from_pydict({"s": ["x" * 30, "y"]})
        from repro.table.chunk import chunk_table

        operator = SortOperator(table.schema, SortSpec.of("s"))
        for chunk in chunk_table(table):
            operator.sink(chunk)
        operator.finalize()
        assert not operator.stats.prefix_exact


class TestTopNSmallCapacities:
    def test_limit_one_is_min(self, rng):
        from repro.sort.topn import top_n

        values = [int(v) for v in rng.integers(0, 10_000, 500)]
        table = Table.from_pydict({"a": values})
        out = top_n(table, "a", 1)
        assert out.column("a").to_pylist() == [min(values)]

    def test_desc_limit_one_is_max(self, rng):
        from repro.sort.topn import top_n

        values = [int(v) for v in rng.integers(0, 10_000, 500)]
        table = Table.from_pydict({"a": values})
        out = top_n(table, "a DESC", 1)
        assert out.column("a").to_pylist() == [max(values)]


class TestWorkloadEdges:
    def test_zero_rows(self):
        from repro.workloads.distributions import (
            generate_key_columns,
            random_distribution,
        )

        values = generate_key_columns(random_distribution(), 0, 2)
        assert values.shape == (0, 2)

    def test_tpcds_zero_rows(self):
        from repro.workloads.tpcds import catalog_sales, customer

        assert catalog_sales(0).num_rows == 0
        assert customer(0).num_rows == 0


class TestSimValidation:
    def test_machine_measure_nested_regions(self):
        from repro.sim.machine import Machine

        machine = Machine()
        region = machine.arena.alloc(64)
        with machine.measure() as outer:
            machine.read(region.base, 4)
            with machine.measure() as inner:
                machine.read(region.base, 4)
        assert inner.counters.reads == 1
        assert outer.counters.reads == 2

    def test_cost_model_zero_counters(self):
        from repro.sim.counters import PerfCounters
        from repro.sim.machine import CostModel

        assert CostModel().cycles(PerfCounters()) == 0.0

    def test_run_micro_rejects_bad_values(self):
        from repro.simsort.harness import run_micro

        with pytest.raises(SimulationError):
            run_micro(
                np.zeros((2, 2, 2), dtype=np.uint32), "row", "tuple"
            )
