"""Tests for the WHERE clause and the command-line interface."""

import numpy as np
import pytest

from repro.engine import Database
from repro.engine.expressions import Comparison, Conjunction, filter_chunk
from repro.errors import BindError, EngineError, ParseError
from repro.cli import EXPERIMENTS, main
from repro.table.chunk import DataChunk
from repro.table.io import read_csv, write_csv
from repro.table.table import Table


@pytest.fixture
def db(rng) -> Database:
    database = Database()
    database.register(
        "t",
        Table.from_pydict(
            {
                "a": [int(v) for v in rng.integers(0, 100, 400)],
                "s": [["x", "longer", None][i % 3] for i in range(400)],
            }
        ),
    )
    return database


class TestComparisonObjects:
    def test_invalid_op(self):
        with pytest.raises(EngineError):
            Comparison("a", "!=", 1)

    def test_empty_conjunction(self):
        with pytest.raises(EngineError):
            Conjunction(())

    def test_filter_chunk(self):
        table = Table.from_pydict({"a": [1, 5, None, 9]})
        chunk = DataChunk.from_table(table)
        out = filter_chunk(chunk, Conjunction((Comparison("a", ">", 2),)))
        assert out.vector("a").to_pylist() == [5, 9]

    def test_filter_all_pass_returns_same_chunk(self):
        table = Table.from_pydict({"a": [1, 2]})
        chunk = DataChunk.from_table(table)
        out = filter_chunk(chunk, Conjunction((Comparison("a", ">=", 0),)))
        assert out is chunk


class TestWhereClause:
    def test_numeric_predicates(self, db):
        out = db.execute("SELECT a FROM t WHERE a < 10")
        assert all(v < 10 for v in out.column("a").to_pylist())

    def test_and_conjunction(self, db):
        out = db.execute("SELECT a FROM t WHERE a >= 10 AND a <= 20")
        values = out.column("a").to_pylist()
        assert values and all(10 <= v <= 20 for v in values)

    def test_string_equality(self, db):
        out = db.execute("SELECT s FROM t WHERE s = 'x'")
        assert set(out.column("s").to_pylist()) == {"x"}

    def test_string_quoting_escape(self, db):
        db.register("q", Table.from_pydict({"s": ["it's", "plain"]}))
        out = db.execute("SELECT s FROM q WHERE s = 'it''s'")
        assert out.column("s").to_pylist() == ["it's"]

    def test_not_equal(self, db):
        out = db.execute("SELECT s FROM t WHERE s <> 'x'")
        assert set(out.column("s").to_pylist()) == {"longer"}

    def test_nulls_fail_comparisons(self, db):
        total = db.execute("SELECT count(*) FROM t").to_pydict()["count_star"][0]
        eq = db.execute("SELECT count(*) FROM (SELECT s FROM t WHERE s = 'x') q")
        ne = db.execute("SELECT count(*) FROM (SELECT s FROM t WHERE s <> 'x') q")
        nul = db.execute(
            "SELECT count(*) FROM (SELECT s FROM t WHERE s IS NULL) q"
        )
        counted = (
            eq.to_pydict()["count_star"][0]
            + ne.to_pydict()["count_star"][0]
            + nul.to_pydict()["count_star"][0]
        )
        assert counted == total

    def test_is_not_null(self, db):
        out = db.execute("SELECT s FROM t WHERE s IS NOT NULL")
        assert None not in out.column("s").to_pylist()

    def test_where_with_group_by_and_order(self, db):
        out = db.execute(
            "SELECT s, count(*) FROM t WHERE a < 50 AND s IS NOT NULL "
            "GROUP BY s ORDER BY s"
        )
        assert out.column("s").to_pylist() == ["longer", "x"]

    def test_where_matches_python_filter(self, db):
        out = db.execute("SELECT a, s FROM t WHERE a > 42 AND s = 'longer'")
        table = db.table("t")
        expected = [
            (a, s)
            for a, s in zip(
                table.column("a").to_pylist(), table.column("s").to_pylist()
            )
            if a is not None and a > 42 and s == "longer"
        ]
        got = list(
            zip(out.column("a").to_pylist(), out.column("s").to_pylist())
        )
        assert sorted(got) == sorted(expected)

    def test_type_mismatch_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT a FROM t WHERE a = 'x'")
        with pytest.raises(BindError):
            db.execute("SELECT s FROM t WHERE s < 5")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("SELECT a FROM t WHERE ghost = 1")

    def test_parse_errors(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT a FROM t WHERE a ==")
        with pytest.raises(ParseError):
            db.execute("SELECT a FROM t WHERE a <")
        with pytest.raises(ParseError):
            db.execute("SELECT a FROM t WHERE a IS MAYBE NULL")

    def test_float_literal(self, db):
        db.register("f", Table.from_pydict({"x": [0.5, 1.5, 2.5]}))
        out = db.execute("SELECT x FROM f WHERE x > 1.0")
        assert out.column("x").to_pylist() == [1.5, 2.5]

    def test_explain_shows_filter(self, db):
        text = db.explain("SELECT a FROM t WHERE a < 3")
        assert "Filter(a <" in text


def make_csv(tmp_path, name="in.csv"):
    path = tmp_path / name
    table = Table.from_pydict(
        {
            "country": ["NETHERLANDS", "GERMANY", None, "GERMANY"],
            "year": [1992, 1968, 1990, None],
        }
    )
    write_csv(table, str(path))
    return str(path)


class TestCli:
    def test_sort_to_file(self, tmp_path, capsys):
        source = make_csv(tmp_path)
        out = str(tmp_path / "out.csv")
        code = main(
            ["sort", source, "--by", "country DESC NULLS LAST, year", "-o", out]
        )
        assert code == 0
        result = read_csv(out)
        assert result.column("country").to_pylist() == [
            "NETHERLANDS", "GERMANY", "GERMANY", None,
        ]

    def test_sort_to_stdout(self, tmp_path, capsys):
        source = make_csv(tmp_path)
        assert main(["sort", source, "--by", "year"]) == 0
        captured = capsys.readouterr().out
        assert captured.startswith("country,year")

    def test_sort_external_and_algorithm(self, tmp_path, capsys):
        source = make_csv(tmp_path)
        code = main(
            ["sort", source, "--by", "year", "--algorithm", "pdqsort",
             "--run-threshold", "2"]
        )
        assert code == 0

    def test_sql(self, tmp_path, capsys):
        source = make_csv(tmp_path)
        code = main(
            [
                "sql",
                "SELECT country, count(*) FROM c WHERE country IS NOT NULL "
                "GROUP BY country ORDER BY country",
                "--table",
                f"c={source}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GERMANY,2" in out

    def test_sql_explain(self, tmp_path, capsys):
        source = make_csv(tmp_path)
        code = main(
            ["sql", "SELECT year FROM c ORDER BY year LIMIT 1",
             "--table", f"c={source}", "--explain"]
        )
        assert code == 0
        assert "TopN" in capsys.readouterr().out

    def test_sql_bad_table_spec(self, capsys):
        assert main(["sql", "SELECT 1 FROM t", "--table", "oops"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure-9" in out and "ablation-merge-path" in out

    def test_bench_runs_experiment(self, capsys):
        assert main(["bench", "table-4"]) == 0
        assert "catalog_sales" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "figure-99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "simulator" in capsys.readouterr().out

    def test_experiment_registry_complete(self):
        # Every paper exhibit with a bench target is reachable by id.
        for required in (
            "table-1", "table-2", "table-3", "table-4",
            "figure-2", "figure-4", "figure-6", "figure-8",
            "figure-9", "figure-10", "figure-12", "figure-13", "figure-14",
        ):
            assert required in EXPERIMENTS
