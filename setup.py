"""Setup shim.

Metadata lives in pyproject.toml; this file exists so ``pip install -e .``
works on environments whose setuptools lacks PEP 660 editable-wheel support
(legacy develop-mode installs go through setup.py).
"""

from setuptools import setup

setup()
