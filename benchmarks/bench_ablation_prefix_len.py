"""Ablation: normalized-key string prefix length (DuckDB caps at 12)."""

from repro.bench import ablation_string_prefix


def test_prefix_length(report):
    result = report(ablation_string_prefix, num_rows=10_000)
    assert {r["prefix_bytes"] for r in result.rows} == {2, 4, 8, 12}
