"""Smoke benchmark of the vectorized kernel layer; writes BENCH_kernels.json.

Times the two kernels from :mod:`repro.sort.kernels` against the scalar
code they replace, on the exact representation the operator feeds them
(normalized-key uint8 matrices with a 9-byte single-int64 layout):

* **merge** -- :func:`merge_indices` vs. the two-pointer Python merge over
  materialized ``bytes`` rows (the operator's scalar fallback),
* **run-generation** -- :func:`argsort_rows` vs. ``pdq_argsort`` over
  ``bytes`` rows (the operator's scalar pdqsort path),
* **end-to-end** -- ``sort_table`` of 200k random int64 rows with
  ``use_vector_kernels`` on vs. off (the acceptance headline),
* **k-way merge** -- the external sort's block-streaming k-way merge
  kernel (:func:`repro.sort.kernels.kway_merge_blocks`) vs. the scalar
  tournament heap, on 8 spilled runs of 50k int64 rows each; speedup is
  measured on the merge phase alone (``SortStats.phase_seconds``) so
  run generation and spill I/O -- identical on both sides -- do not
  dilute it.

Results land in ``BENCH_kernels.json`` at the repository root so future
changes have a perf trajectory to regress against.  Runs standalone
(``python benchmarks/bench_kernels.py``) or under pytest.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.kernels import argsort_rows, merge_indices  # noqa: E402
from repro.sort.operator import SortConfig, sort_table  # noqa: E402
from repro.sort.pdqsort import pdq_argsort  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_kernels.json")

KEY_WIDTH = 9  # null byte + big-endian int64: the single-int64-key layout
MERGE_N = 200_000  # per input run
RUNGEN_N = 100_000
END_TO_END_N = 200_000
KWAY_RUNS = 8  # spilled runs in the external-sort k-way benchmark
KWAY_RUN_ROWS = 50_000  # rows per spilled run
ROUNDS = 3  # best-of for the vectorized sides; scalar sides run once


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _scalar_merge(raw_a, raw_b):
    """The operator's scalar fallback: two-pointer merge over bytes rows.

    Like :func:`merge_indices`, produces the gather permutation over the
    concatenated inputs (plus the merged raw rows the scalar cascade
    carries between rounds).
    """
    perm = []
    merged_raw = []
    i = j = 0
    n, m = len(raw_a), len(raw_b)
    while i < n and j < m:
        if raw_b[j] < raw_a[i]:
            perm.append(n + j)
            merged_raw.append(raw_b[j])
            j += 1
        else:
            perm.append(i)
            merged_raw.append(raw_a[i])
            i += 1
    while i < n:
        perm.append(i)
        merged_raw.append(raw_a[i])
        i += 1
    while j < m:
        perm.append(n + j)
        merged_raw.append(raw_b[j])
        j += 1
    return perm, merged_raw


def bench_merge(rng):
    a = rng.integers(0, 256, size=(MERGE_N, KEY_WIDTH)).astype(np.uint8)
    b = rng.integers(0, 256, size=(MERGE_N, KEY_WIDTH)).astype(np.uint8)
    a, b = a[argsort_rows(a)], b[argsort_rows(b)]
    rows = 2 * MERGE_N
    kernel = _best_of(lambda: merge_indices(a, b))
    raw_a = [a[i].tobytes() for i in range(MERGE_N)]
    raw_b = [b[i].tobytes() for i in range(MERGE_N)]
    scalar = _best_of(lambda: _scalar_merge(raw_a, raw_b), rounds=1)
    return {
        "rows": rows,
        "key_width": KEY_WIDTH,
        "kernel_rows_per_s": rows / kernel,
        "scalar_rows_per_s": rows / scalar,
        "speedup": scalar / kernel,
    }


def bench_run_generation(rng):
    matrix = rng.integers(0, 256, size=(RUNGEN_N, KEY_WIDTH)).astype(np.uint8)
    kernel = _best_of(lambda: argsort_rows(matrix))
    raw = [matrix[i].tobytes() for i in range(RUNGEN_N)]
    scalar = _best_of(lambda: pdq_argsort(raw), rounds=1)
    return {
        "rows": RUNGEN_N,
        "key_width": KEY_WIDTH,
        "kernel_rows_per_s": RUNGEN_N / kernel,
        "scalar_rows_per_s": RUNGEN_N / scalar,
        "speedup": scalar / kernel,
    }


def bench_end_to_end(rng):
    table = Table.from_numpy(
        {"v": rng.integers(-(1 << 62), 1 << 62, END_TO_END_N).astype(np.int64)}
    )
    spec = SortSpec.of("v")
    kernel = _best_of(lambda: sort_table(table, spec, SortConfig()))
    scalar = _best_of(
        lambda: sort_table(table, spec, SortConfig(use_vector_kernels=False)),
        rounds=1,
    )
    return {
        "rows": END_TO_END_N,
        "kernel_rows_per_s": END_TO_END_N / kernel,
        "scalar_rows_per_s": END_TO_END_N / scalar,
        "speedup": scalar / kernel,
    }


def _external_sort(table, spec, use_vector_kernels):
    """Spill KWAY_RUNS sorted runs to disk, merge them, return the stats."""
    with tempfile.TemporaryDirectory(prefix="bench_kway_") as spill_dir:
        operator = ExternalSortOperator(
            table.schema,
            spec,
            SortConfig(
                run_threshold=KWAY_RUN_ROWS,
                use_vector_kernels=use_vector_kernels,
            ),
            spill_directory=spill_dir,
        )
        for chunk in chunk_table(table, 10_000):
            operator.sink(chunk)
        operator.finalize()
        return operator.stats


def bench_kway_merge(rng):
    rows = KWAY_RUNS * KWAY_RUN_ROWS
    table = Table.from_numpy(
        {"v": rng.integers(-(1 << 62), 1 << 62, rows).astype(np.int64)}
    )
    spec = SortSpec.of("v")

    def merge_seconds(use_vector_kernels, rounds):
        best = float("inf")
        stats = None
        for _ in range(rounds):
            stats = _external_sort(table, spec, use_vector_kernels)
            best = min(best, stats.phase_seconds["merge"])
        return best, stats

    kernel, kernel_stats = merge_seconds(True, ROUNDS)
    scalar, _ = merge_seconds(False, 1)
    assert kernel_stats.runs_generated == KWAY_RUNS
    assert kernel_stats.kernel_kway_merges == 1
    return {
        "rows": rows,
        "runs": KWAY_RUNS,
        "rows_per_run": KWAY_RUN_ROWS,
        "kway_rounds": kernel_stats.kway_rounds,
        "peak_frontier_rows": kernel_stats.kway_peak_frontier_rows,
        "kernel_rows_per_s": rows / kernel,
        "scalar_rows_per_s": rows / scalar,
        "speedup": scalar / kernel,
    }


def main():
    rng = np.random.default_rng(11)
    results = {
        "merge": bench_merge(rng),
        "run_generation": bench_run_generation(rng),
        "end_to_end_200k_int64": bench_end_to_end(rng),
        "kway_merge": bench_kway_merge(rng),
    }
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    for name, numbers in results.items():
        print(
            f"{name}: kernel {numbers['kernel_rows_per_s']:,.0f} rows/s, "
            f"scalar {numbers['scalar_rows_per_s']:,.0f} rows/s, "
            f"speedup {numbers['speedup']:.1f}x"
        )
    print(f"wrote {OUTPUT}")
    return results


def test_kernels_smoke(capsys):
    with capsys.disabled():
        print()
        results = main()
    for name in ("run_generation", "end_to_end_200k_int64"):
        assert results[name]["speedup"] > 1.0, f"{name} regressed below scalar"
    assert results["kway_merge"]["speedup"] >= 5.0, (
        "k-way merge kernel fell below the 5x acceptance bar"
    )
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    main()
