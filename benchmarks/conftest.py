"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and prints the
reproduced rows (the same series the paper reports) alongside the
pytest-benchmark timing of the harness itself.  Scales are reduced from
the paper's (see DESIGN.md); EXPERIMENTS.md records the measured outcomes.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.report import FigureResult  # noqa: E402
from repro.workloads.distributions import (  # noqa: E402
    correlated_distribution,
    random_distribution,
)

BENCH_SIZES = (64, 256, 1024, 2048)
"""Micro-benchmark row counts (paper: 2^12..2^24; see DESIGN.md)."""

BENCH_KEYS = (1, 2, 4)

BENCH_DISTS = (random_distribution(), correlated_distribution(0.5))


def run_and_report(benchmark, capsys, fn, *args, **kwargs) -> FigureResult:
    """Run one experiment once under pytest-benchmark and print its rows."""
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    return result


@pytest.fixture
def report(benchmark, capsys):
    def runner(fn, *args, **kwargs):
        return run_and_report(benchmark, capsys, fn, *args, **kwargs)

    return runner
