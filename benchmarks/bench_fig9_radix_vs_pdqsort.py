"""Figure 9: radix sort vs pdqsort with dynamic memcmp, normalized keys."""

from conftest import BENCH_DISTS, BENCH_KEYS, BENCH_SIZES
from repro.bench import figure9_radix_vs_pdqsort


def test_figure9(report):
    result = report(
        figure9_radix_vs_pdqsort, BENCH_SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: radix wins on Random everywhere (we reproduce that for all
    # but the tiniest inputs, where fixed pass overhead dominates).
    random_rows = [
        r for r in result.rows if r["distribution"] == "Random"
        and r["rows"] >= 256
    ]
    assert all(r["relative"] > 1.0 for r in random_rows)
    # And radix wins most cells overall across distributions.
    wins = sum(r["relative"] > 1.0 for r in result.rows)
    assert wins >= 0.8 * len(result.rows)
