"""Cost of spill integrity; writes BENCH_faults.json.

The external sort's spill files carry a versioned header plus
page-granular CRC32 checksums that every block read verifies
(:mod:`repro.sort.spillfile`).  This benchmark measures what that
integrity layer costs on the PR 2 block-streaming k-way merge path:
the same out-of-core sort (8 spilled runs of 50k int64 rows, kernel
merge) is timed with checksum verification **on** vs. **off** in the
same process, so machine noise hits both sides equally.  The headline
number is the end-to-end overhead ratio, which the tier-2 ``slow``
test asserts stays under 10%.

For trajectory, the verified run is also recorded next to the
fault-free ``kway_merge`` timing in ``BENCH_kernels.json`` when that
baseline file exists (informational: the two are from different
processes, so only the in-run on/off ratio is asserted).

Results land in ``BENCH_faults.json`` at the repository root.  Runs
standalone (``python benchmarks/bench_fault_overhead.py``) or under
pytest.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.operator import SortConfig  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402

from scenarios import uniform_values  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_faults.json")
KERNELS_BASELINE = os.path.join(os.path.dirname(_SRC), "BENCH_kernels.json")

KWAY_RUNS = 8  # matches the BENCH_kernels.json kway_merge workload
KWAY_RUN_ROWS = 50_000
ROUNDS = 3  # best-of on both sides: the ratio is the deliverable
MAX_OVERHEAD = 0.10  # acceptance bar: checksums+header cost < 10%


def _timed_external_sort(table, spec, verify):
    """One spilling sort; returns (elapsed_seconds, stats)."""
    with tempfile.TemporaryDirectory(prefix="bench_faults_") as spill_dir:
        start = time.perf_counter()
        with ExternalSortOperator(
            table.schema,
            spec,
            SortConfig(
                run_threshold=KWAY_RUN_ROWS,
                verify_spill_checksums=verify,
            ),
            spill_directory=spill_dir,
        ) as operator:
            for chunk in chunk_table(table, 10_000):
                operator.sink(chunk)
            operator.finalize()
        return time.perf_counter() - start, operator.stats


def bench_checksum_overhead():
    rows = KWAY_RUNS * KWAY_RUN_ROWS
    rng = np.random.default_rng(13)
    table = Table.from_numpy({"v": uniform_values(rng, rows)})
    spec = SortSpec.of("v")

    def best_of(verify):
        best = float("inf")
        stats = None
        for _ in range(ROUNDS):
            elapsed, stats = _timed_external_sort(table, spec, verify)
            best = min(best, elapsed)
        return best, stats

    # Interleaving would be fairer still, but best-of-N per side already
    # drops the outliers that matter; warm the page cache with the
    # unverified side first so the verified side never looks cheaper
    # only because of cache state.
    unverified, _ = best_of(False)
    verified, verified_stats = best_of(True)

    assert verified_stats.runs_generated == KWAY_RUNS
    assert verified_stats.checksum_verifications > 0
    assert verified_stats.checksum_failures == 0

    result = {
        "rows": rows,
        "runs": KWAY_RUNS,
        "rows_per_run": KWAY_RUN_ROWS,
        "verified_seconds": verified,
        "unverified_seconds": unverified,
        "verified_rows_per_s": rows / verified,
        "unverified_rows_per_s": rows / unverified,
        "overhead_ratio": verified / unverified - 1.0,
        "checksum_verifications": verified_stats.checksum_verifications,
        "spill_io_seconds": verified_stats.phase_seconds.get("spill_io", 0.0),
    }
    if os.path.exists(KERNELS_BASELINE):
        with open(KERNELS_BASELINE) as fh:
            baseline = json.load(fh).get("kway_merge", {})
        if "kernel_rows_per_s" in baseline:
            result["baseline_kway_rows_per_s"] = baseline["kernel_rows_per_s"]
            result["verified_vs_baseline_merge"] = (
                baseline["kernel_rows_per_s"] / result["verified_rows_per_s"]
            )
    return result


def main():
    results = {"checksum_overhead": bench_checksum_overhead()}
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    numbers = results["checksum_overhead"]
    print(
        f"checksum_overhead: verified {numbers['verified_rows_per_s']:,.0f} "
        f"rows/s, unverified {numbers['unverified_rows_per_s']:,.0f} rows/s, "
        f"overhead {numbers['overhead_ratio'] * 100:.1f}%"
    )
    print(f"wrote {OUTPUT}")
    return results


@pytest.mark.slow
def test_fault_overhead(capsys):
    with capsys.disabled():
        print()
        results = main()
    overhead = results["checksum_overhead"]["overhead_ratio"]
    assert overhead < MAX_OVERHEAD, (
        f"spill header+checksum overhead {overhead * 100:.1f}% exceeds "
        f"the {MAX_OVERHEAD * 100:.0f}% acceptance bar"
    )
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    main()
