"""Ablation: pdqsort inside MSD radix recursion (Section IX)."""

from repro.bench import ablation_msd_pdq_fallback


def test_msd_pdq_fallback(report):
    result = report(ablation_msd_pdq_fallback, num_rows=30_000)
    assert len(result.rows) == 2
