"""Table IV: TPC-DS table cardinalities (paper vs reproduction scale)."""

from repro.bench import table4_cardinalities


def test_table4(report):
    result = report(table4_cardinalities)
    assert len(result.rows) == 4
