"""Figure 8: normalized keys + dynamic memcmp vs static comparator."""

from conftest import BENCH_DISTS, BENCH_KEYS, BENCH_SIZES
from repro.bench import figure8_normalized_keys


def test_figure8(report):
    result = report(
        figure8_normalized_keys, BENCH_SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: normalized keys match or outperform the static comparator,
    # especially with more key columns and higher correlation.
    for row in result.rows:
        assert row["relative"] > 0.7
    multi_key_correlated = [
        r["relative"]
        for r in result.rows
        if r["keys"] == 4 and r["distribution"] != "Random"
        and r["rows"] >= 1024
    ]
    assert max(multi_key_correlated) > 1.0
