"""Figure 2: subsort vs tuple-at-a-time on columnar data, std::sort."""

from conftest import BENCH_DISTS, BENCH_KEYS, BENCH_SIZES
from repro.bench import figure2_subsort_columnar


def test_figure2(report):
    result = report(
        figure2_subsort_columnar, BENCH_SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: ~1.0 for one key column; > 1 for correlated multi-key data
    # at the larger sizes.
    big_correlated = [
        r["relative"]
        for r in result.rows
        if r["distribution"] != "Random"
        and r["keys"] == 4
        and r["rows"] >= 1024
    ]
    assert all(rel > 1.0 for rel in big_correlated)
