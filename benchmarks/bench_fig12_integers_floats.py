"""Figure 12: end-to-end sorting of random integers and floats."""

from repro.bench import figure12_integers_floats


def test_figure12(report):
    result = report(figure12_integers_floats)
    for row in result.rows:
        # Paper: MonetDB is far slower than every parallel system.
        parallel = [
            row[f"{name}_s"]
            for name in ("DuckDB", "ClickHouse", "HyPer", "Umbra")
        ]
        assert row["MonetDB_s"] > 4 * max(parallel)
        # Paper: DuckDB's row-based radix sort leads the field.
        assert row["DuckDB_s"] <= min(parallel) * 1.05
