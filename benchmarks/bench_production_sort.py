"""Real wall-clock benchmarks of the production sort operator itself.

Unlike the figure benchmarks (which time the simulation harness), these
time the actual numpy-backed sort: radix vs pdqsort run generation,
multi-run merging, top-N, and external sort.
"""

import numpy as np
import pytest

from repro.sort.external import external_sort_table
from repro.sort.operator import SortConfig, sort_table
from repro.sort.topn import top_n
from repro.table.table import Table
from repro.types.sortspec import SortSpec
from repro.workloads.tpcds import catalog_sales, customer

N = 100_000


@pytest.fixture(scope="module")
def int_table():
    rng = np.random.default_rng(0)
    return Table.from_numpy(
        {
            "a": rng.integers(0, 1000, N).astype(np.int32),
            "b": rng.integers(0, 1 << 30, N).astype(np.int32),
        }
    )


def test_radix_sort_two_int_keys(benchmark, int_table):
    spec = SortSpec.of("a", "b")
    result = benchmark(lambda: sort_table(int_table, spec))
    assert result.is_sorted_by(spec)


def test_multi_run_merge(benchmark, int_table):
    spec = SortSpec.of("a", "b")
    config = SortConfig(run_threshold=N // 8)
    result = benchmark(lambda: sort_table(int_table, spec, config))
    assert result.is_sorted_by(spec)


def test_string_sort_pdq(benchmark):
    table = customer(20_000, 100, seed=4)
    spec = SortSpec.of("c_last_name", "c_first_name")
    result = benchmark(lambda: sort_table(table, spec))
    assert result.is_sorted_by(spec)


def test_catalog_sales_four_keys(benchmark):
    table = catalog_sales(50_000, 10, seed=4)
    spec = SortSpec.of(
        "cs_warehouse_sk", "cs_ship_mode_sk", "cs_promo_sk", "cs_quantity"
    )
    result = benchmark(lambda: sort_table(table, spec))
    assert result.is_sorted_by(spec)


def test_top_100(benchmark, int_table):
    spec = SortSpec.of("a", "b")
    result = benchmark(lambda: top_n(int_table, spec, 100))
    assert result.num_rows == 100


def test_external_sort(benchmark, int_table, tmp_path):
    spec = SortSpec.of("a", "b")
    config = SortConfig(run_threshold=N // 4)
    result = benchmark.pedantic(
        lambda: external_sort_table(
            int_table, spec, config, spill_directory=str(tmp_path)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.is_sorted_by(spec)


# --------------------------------------------------------------------- #
# Vectorized kernels: before/after comparison (see repro.sort.kernels)
# --------------------------------------------------------------------- #

KERNEL_N = 200_000


@pytest.fixture(scope="module")
def int64_table():
    rng = np.random.default_rng(7)
    return Table.from_numpy(
        {"v": rng.integers(-(1 << 62), 1 << 62, KERNEL_N).astype(np.int64)}
    )


def test_kernel_sort_200k_int64(benchmark, int64_table):
    spec = SortSpec.of("v")
    result = benchmark(lambda: sort_table(int64_table, spec))
    assert result.is_sorted_by(spec)


def test_scalar_sort_200k_int64(benchmark, int64_table):
    spec = SortSpec.of("v")
    config = SortConfig(use_vector_kernels=False)
    result = benchmark.pedantic(
        lambda: sort_table(int64_table, spec, config), rounds=1, iterations=1
    )
    assert result.is_sorted_by(spec)


def test_kernel_speedup_200k_int64(int64_table, capsys):
    """The headline number: kernels on vs. off, measured in one process."""
    import time

    spec = SortSpec.of("v")

    def best_of(config, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            result = sort_table(int64_table, spec, config)
            times.append(time.perf_counter() - start)
        assert result.is_sorted_by(spec)
        return min(times)

    kernel = best_of(SortConfig())
    scalar = best_of(SortConfig(use_vector_kernels=False), rounds=1)
    speedup = scalar / kernel
    with capsys.disabled():
        print(
            f"\n200k int64 end-to-end: kernels {KERNEL_N / kernel:,.0f} rows/s, "
            f"scalar {KERNEL_N / scalar:,.0f} rows/s, speedup {speedup:.1f}x"
        )
    assert speedup >= 5.0
