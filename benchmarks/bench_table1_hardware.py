"""Table I: the (simulated) hardware specification."""

from repro.bench import table1_hardware


def test_table1_hardware(report):
    result = report(table1_hardware)
    assert result.rows
