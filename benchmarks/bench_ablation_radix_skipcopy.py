"""Ablation: the radix skip-copy optimization on low-entropy bytes."""

from repro.bench import ablation_radix_skip_copy


def test_skip_copy(report):
    result = report(ablation_radix_skip_copy, num_rows=1 << 10)
    by_variant = {r["variant"]: r for r in result.rows}
    assert (
        by_variant["skip-copy"]["cycles"]
        < by_variant["always-copy"]["cycles"]
    )
