"""Ablation: LSD vs MSD radix across key widths (switch at 4 bytes)."""

from repro.bench import ablation_radix_switch


def test_radix_switch(report):
    result = report(ablation_radix_switch, num_rows=1 << 10)
    narrow = result.rows[0]
    wide = result.rows[-1]
    # MSD's relative advantage grows with the key width.
    assert wide["msd_over_lsd"] > narrow["msd_over_lsd"]
