"""Table II: perf counters of columnar tuple-at-a-time vs subsort."""

from repro.bench import table2_counters_columnar


def test_table2_counters(report):
    result = report(table2_counters_columnar, num_rows=1 << 12)
    by_approach = {r["approach"]: r for r in result.rows}
    # Paper: subsort incurs fewer cache misses and branch mispredictions.
    assert (
        by_approach["subsort"]["l1_misses"]
        < by_approach["tuple"]["l1_misses"]
    )
    assert (
        by_approach["subsort"]["branch_mispredictions"]
        < by_approach["tuple"]["branch_mispredictions"]
    )
