"""Table III: perf counters on the row format (vs Table II's columnar)."""

from repro.bench import table2_counters_columnar, table3_counters_row


def test_table3_counters(report):
    result = report(table3_counters_row, num_rows=1 << 12)
    columnar = table2_counters_columnar(num_rows=1 << 12)
    # Paper: the row format incurs far fewer cache misses than columnar.
    assert result.rows[0]["l1_misses"] * 2 < columnar.rows[0]["l1_misses"]
