"""Section II's implicit sorting benefits: RLE and zone maps."""

from repro.bench import ablation_sorting_side_benefits


def test_side_benefits(report):
    result = report(ablation_sorting_side_benefits, num_rows=50_000)
    for row in result.rows:
        assert row["rle_sorted"] >= row["rle_unsorted"]
        assert row["zone_sorted"] <= row["zone_unsorted"]
