"""Section II's implicit sorting benefits: RLE, zone maps, order reuse."""

from repro.bench import ablation_sorting_side_benefits


def test_side_benefits(report):
    result = report(ablation_sorting_side_benefits, num_rows=50_000)
    storage_rows = [r for r in result.rows if "rle_sorted" in r]
    assert storage_rows
    for row in storage_rows:
        assert row["rle_sorted"] >= row["rle_unsorted"]
        assert row["zone_sorted"] <= row["zone_unsorted"]
    groupby_rows = [r for r in result.rows if "groupby_presorted_s" in r]
    assert len(groupby_rows) == 1
    # The presorted path skips a full 50k-row sort; it must not be
    # slower than the forced re-sort (identical output is asserted
    # inside the ablation itself).
    row = groupby_rows[0]
    assert row["groupby_presorted_s"] <= row["groupby_full_s"]
