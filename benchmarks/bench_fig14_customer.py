"""Figure 14: TPC-DS customer sorted by integer vs string keys."""

from repro.bench import figure14_customer


def test_figure14(report):
    result = report(figure14_customer)
    by_workload = {r["workload"]: r for r in result.rows}
    for sf in (100, 300):
        ints = by_workload[
            next(k for k in by_workload if k.startswith(f"SF{sf} integer"))
        ]
        strings = by_workload[
            next(k for k in by_workload if k.startswith(f"SF{sf} string"))
        ]
        # Paper: strings are slower than integers for all five systems.
        for name in ("DuckDB", "ClickHouse", "MonetDB", "HyPer", "Umbra"):
            assert strings[f"{name}_s"] > ints[f"{name}_s"]
