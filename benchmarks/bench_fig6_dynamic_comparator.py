"""Figure 6: dynamic vs static tuple-at-a-time comparator on rows."""

from conftest import BENCH_DISTS, BENCH_KEYS, BENCH_SIZES
from repro.bench import figure6_dynamic_comparator


def test_figure6(report):
    result = report(
        figure6_dynamic_comparator, BENCH_SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: dynamic calls cost roughly a factor of 2.
    for row in result.rows:
        assert 0.25 < row["relative"] < 0.9
