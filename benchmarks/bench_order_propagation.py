"""Planner order-propagation benchmark; writes BENCH_planner.json.

Measures what the planner's order-property framework buys when the
data's physical order is already known (declared via
``Database.declare_ordering``, e.g. by an incremental sorted view):

* **ordered_view** -- ``SELECT * FROM v ORDER BY s, p`` over a view
  already sorted on exactly that spec: the sort is *elided* and the
  query degenerates to a scan.
* **groupby_sorted** -- ``GROUP BY s`` over input sorted on ``s``: the
  group-by's internal sort is skipped and groups are detected by the
  exact boundary kernel alone.
* **merge_join** -- an equality join whose *both* inputs are pre-sorted
  on the join key: the merge join elides both of its per-side sorts and
  goes straight to group alignment.
* **topn_cached_prefix** -- a ``LIMIT`` query answered by slicing a
  cached full ORDER BY result (:meth:`ResultCache.serve_prefix`): zero
  sort work, proven by the service's ``cache_prefix_hits`` counter
  (prefix-served tickets never reach execution).

Every *forced* baseline is the same query under
``propagate_order=False`` -- the differential oracle that re-sorts in
full -- and every elided result is asserted **value-identical** to it
(stable sorts of already-sorted input are identities, so the fast paths
must not change a single row).  The sort-savings counters
(``sorts_elided`` per cell) are asserted, recorded, and gated by
``benchmarks/regress.py --planner-candidate`` against the committed
``BENCH_planner.json``: each cell carries its own ``min_speedup`` floor
(3x for the two single-input elisions, parity for the join) so a future
planner change that silently stops eliding fails the build.

String-heavy scenarios are used deliberately: exact VARCHAR sorting is
the most expensive thing the pipeline does, so it is where order reuse
pays the most (and where a byte-identity bug would surface first).

Runs standalone (``python benchmarks/bench_order_propagation.py
[--rows N]``) or under pytest (small-scale smoke; speedup floors are
only enforced at gate scale, identity and counters always).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.engine import Database  # noqa: E402
from repro.service import SortService  # noqa: E402
from repro.sort.operator import sort_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402
from repro.workloads.scenarios import SCENARIOS  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_planner.json")

DEFAULT_ROWS = 40_000
SEED = 17
REPS = 3
# Speedup floors are only meaningful once the forced sort costs real
# time; below this scale the smoke test checks identity and counters.
GATE_ROWS = 20_000
TOPN_LIMIT = 100


def _best(fn, reps: int = REPS):
    """(best wall-clock of ``reps`` runs, last result)."""
    best = None
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _assert_identical(cell: str, elided: Table, forced: Table) -> None:
    if not elided.equals(forced):
        raise AssertionError(
            f"{cell}: elided result diverged from the forced-resort "
            f"oracle ({elided.num_rows} vs {forced.num_rows} rows)"
        )


def _elision_counters(stats_list) -> tuple[int, int]:
    elided = sum(s.sorts_elided for s in stats_list)
    subsumed = sum(s.sorts_subsumed for s in stats_list)
    return elided, subsumed


def cell_ordered_view(rows: int) -> dict:
    """ORDER BY over an incremental-view-style pre-sorted table."""
    sc = SCENARIOS["long_string"]
    spec = SortSpec.of(*(part.strip() for part in sc.order_by.split(",")))
    db = Database()
    db.register("v", sort_table(sc.table(rows, seed=SEED), spec))
    db.declare_ordering("v", sc.order_by)
    sql = f"SELECT * FROM v ORDER BY {sc.order_by}"

    forced_s, forced = _best(lambda: db.execute(sql, propagate_order=False))
    elided_s, (elided, stats) = _best(lambda: db.execute_detailed(sql))
    _assert_identical("ordered_view", elided, forced)
    sorts_elided, sorts_subsumed = _elision_counters(stats)
    assert sorts_elided == 1, f"expected 1 elided sort, saw {sorts_elided}"
    assert "elided" in db.explain(sql), "plan does not show the elision"
    return {
        "scenario": "long_string",
        "rows": rows,
        "sql": sql,
        "forced_s": forced_s,
        "elided_s": elided_s,
        "speedup": forced_s / elided_s,
        "min_speedup": 3.0,
        "identical": True,
        "sorts_elided": sorts_elided,
        "sorts_subsumed": sorts_subsumed,
    }


def cell_groupby_sorted(rows: int) -> dict:
    """GROUP BY whose keys match the input's declared ordering."""
    db = Database()
    table = SCENARIOS["long_string"].table(rows, seed=SEED)
    db.register("v", sort_table(table, SortSpec.of("s")))
    db.declare_ordering("v", "s")
    sql = "SELECT s, count(*), sum(p) FROM v GROUP BY s"

    forced_s, forced = _best(lambda: db.execute(sql, propagate_order=False))
    elided_s, (elided, stats) = _best(lambda: db.execute_detailed(sql))
    _assert_identical("groupby_sorted", elided, forced)
    sorts_elided, sorts_subsumed = _elision_counters(stats)
    assert sorts_elided == 1, f"expected 1 elided sort, saw {sorts_elided}"
    return {
        "scenario": "long_string",
        "rows": rows,
        "sql": sql,
        "forced_s": forced_s,
        "elided_s": elided_s,
        "speedup": forced_s / elided_s,
        "min_speedup": 3.0,
        "identical": True,
        "sorts_elided": sorts_elided,
        "sorts_subsumed": sorts_subsumed,
    }


def cell_merge_join(rows: int) -> dict:
    """Merge join with both inputs pre-sorted on the join key.

    The forced baseline sorts both sides before aligning; the elided
    plan goes straight to group alignment.  The floor is parity
    (``min_speedup`` 1.0): alignment, NULL filtering, and output
    materialization are shared by both paths, so the saving is the two
    sorts -- real but bounded.
    """
    sc = SCENARIOS["tpcds_catalog"]
    big = sc.table(rows * 5, seed=SEED)
    small = sc.table(max(rows // 2, 200), seed=SEED + 1)
    key = SortSpec.of("cs_item_sk")
    db = Database()
    db.register("big", sort_table(big, key))
    db.declare_ordering("big", "cs_item_sk")
    db.register("small", sort_table(small, key))
    db.declare_ordering("small", "cs_item_sk")
    sql = "SELECT * FROM big JOIN small ON cs_item_sk = cs_item_sk"

    forced_s, forced = _best(lambda: db.execute(sql, propagate_order=False))
    elided_s, (elided, stats) = _best(lambda: db.execute_detailed(sql))
    _assert_identical("merge_join", elided, forced)
    sorts_elided, sorts_subsumed = _elision_counters(stats)
    assert sorts_elided == 2, (
        f"expected both join-side sorts elided, saw {sorts_elided}"
    )
    return {
        "scenario": "tpcds_catalog",
        "rows_big": big.num_rows,
        "rows_small": small.num_rows,
        "rows_joined": elided.num_rows,
        "sql": sql,
        "forced_s": forced_s,
        "elided_s": elided_s,
        "speedup": forced_s / elided_s,
        "min_speedup": 1.0,
        "identical": True,
        "sorts_elided": sorts_elided,
        "sorts_subsumed": sorts_subsumed,
    }


def cell_topn_cached_prefix(rows: int) -> dict:
    """Top-N served by slicing a cached full ORDER BY result."""
    sc = SCENARIOS["uniform"]
    db = Database()
    db.register("t", sc.table(rows * 5, seed=SEED))
    full_sql = f"SELECT * FROM t ORDER BY {sc.order_by}"
    topn_sql = f"{full_sql} LIMIT {TOPN_LIMIT}"

    forced_s, forced = _best(
        lambda: db.execute(topn_sql, propagate_order=False)
    )
    with SortService(
        db, memory_budget=64 << 20, workers=1, cache_capacity=8
    ) as service:
        service.submit(full_sql).result(timeout=600)  # populate the cache
        served_s, served = _best(
            lambda: service.submit(topn_sql).result(timeout=600)
        )
        stats = service.stats
    _assert_identical("topn_cached_prefix", served, forced)
    # Prefix-served tickets are answered before execution: each serve
    # MUST be a prefix hit, which is the proof of zero sort work.
    assert stats.cache_prefix_hits == REPS, (
        f"expected {REPS} prefix hits, saw {stats.cache_prefix_hits}"
    )
    return {
        "scenario": "uniform",
        "rows": rows * 5,
        "sql": topn_sql,
        "forced_s": forced_s,
        "elided_s": served_s,
        "speedup": forced_s / served_s,
        "min_speedup": None,  # serve latency is thread-handoff bound
        "identical": True,
        "cache_prefix_hits": stats.cache_prefix_hits,
        "sorts_elided": 0,
        "sorts_subsumed": 0,
    }


CELLS = {
    "ordered_view": cell_ordered_view,
    "groupby_sorted": cell_groupby_sorted,
    "merge_join": cell_merge_join,
    "topn_cached_prefix": cell_topn_cached_prefix,
}


def main(rows: int = DEFAULT_ROWS, out: str = OUTPUT) -> dict:
    gated = rows >= GATE_ROWS
    results = {
        "rows": rows,
        "seed": SEED,
        "reps": REPS,
        "gated": gated,
        "cells": {},
    }
    for name, fn in CELLS.items():
        cell = fn(rows)
        results["cells"][name] = cell
        floor = cell.get("min_speedup")
        if gated and floor is not None and cell["speedup"] < floor:
            raise AssertionError(
                f"{name}: speedup {cell['speedup']:.2f}x below the "
                f"{floor:.1f}x floor (forced {cell['forced_s']:.4f}s, "
                f"elided {cell['elided_s']:.4f}s)"
            )
        print(
            f"{name}: forced {cell['forced_s']:.4f}s -> elided "
            f"{cell['elided_s']:.4f}s ({cell['speedup']:.2f}x, "
            f"floor {floor if floor is not None else 'none'})"
        )
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out} (gated={gated})")
    return results


def test_order_propagation_bench_smoke(tmp_path, capsys):
    with capsys.disabled():
        print()
        results = main(rows=4_000, out=str(tmp_path / "planner.json"))
    # Identity and the elision/prefix-hit counters are asserted inside
    # each cell; speedup floors only apply at gate scale.
    assert set(results["cells"]) == set(CELLS)
    for cell in results["cells"].values():
        assert cell["identical"] is True


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--out", default=OUTPUT)
    arguments = parser.parse_args()
    main(rows=arguments.rows, out=arguments.out)
