"""Ablation: Merge Path vs naive cascaded merge (parallel makespan)."""

from repro.bench import ablation_merge_path


def test_merge_path(report):
    result = report(ablation_merge_path)
    for row in result.rows:
        assert row["speedup"] >= 1.0
    assert result.rows[-1]["speedup"] > 4.0
