"""Ablation: ingest vector (block) size of the real sort operator."""

from repro.bench import ablation_block_size


def test_block_size(report):
    result = report(ablation_block_size, num_rows=100_000)
    assert len(result.rows) == 4
    for row in result.rows:
        assert row["seconds"] > 0
