"""Scenario x sort-path benchmark matrix; writes BENCH_matrix.json.

Sweeps every scenario in the catalog (:mod:`repro.workloads.scenarios`)
across every sort path the repo grew -- in-memory multi-run, external
spilling, streaming Top-N, multi-core parallel, the concurrent query
service, and the incremental (maintained-view) sorter -- and records one
cell per (scenario, path):

* wall-clock seconds and rows/s (best of ``REPS`` measured runs, so a
  single scheduler hiccup does not poison the recorded artifact);
* the heuristic dispatch decisions that run actually made
  (``vector_sort_paths`` / ``vector_sort_reasons`` per generated run,
  the external ``rungen_path`` + presortedness probe, the chosen
  algorithm) -- these are **deterministic** for a given (rows, seed),
  which is what lets ``benchmarks/regress.py`` gate on them;
* the run-length histogram summary, merge passes, k-way rounds, and the
  degradation/spill counters.

Every cell's output is asserted **byte-identical** to the scalar oracle
(``SortConfig(use_vector_kernels=False)`` -- the row-at-a-time reference
path) before its timing is recorded; the Top-N cell compares against the
oracle's ``[offset, offset+limit)`` slice.  A cell that diverges raises
with the scenario name, path, rows, and seed in the message.

The recorded ``BENCH_matrix.json`` at the repository root is the
committed trajectory baseline: CI re-runs this script at the same
(rows, seed) and ``regress.py`` fails the build on a >15% normalized
hot-path slowdown or a dispatch-path flip that arrives without an
accompanying baseline update (see ``docs/sort-pipeline.md``).

Runs standalone (``python benchmarks/bench_matrix.py [--rows N]
[--out PATH]``) or under pytest (slow-marked smoke).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.engine import Database  # noqa: E402
from repro.service import SortService  # noqa: E402
from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.incremental import IncrementalSorter  # noqa: E402
from repro.sort.operator import SortConfig, SortOperator, sort_table  # noqa: E402
from repro.sort.parallel_exec import parallel_platform_supported  # noqa: E402
from repro.sort.topn import TopNOperator  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402
from repro.workloads.scenarios import SCENARIOS  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_matrix.json")

# The committed baseline and the CI gate run at exactly this scale and
# seed: dispatch decisions (radix vs lexsort, replacement selection vs
# argsort) depend on row count, so regress.py refuses to compare runs
# recorded at different scales.
DEFAULT_ROWS = 24_000
SEED = 17
REPS = 2

PATHS = ("in_memory", "external", "topn", "parallel", "service", "incremental")
REFERENCE_CELL = ("uniform", "in_memory")

TOPN_LIMIT = 100
TOPN_OFFSET = 7
SERVICE_QUERIES = 3
SERVICE_WORKERS = 2
INCREMENTAL_DELTAS = 8


def _spec(scenario) -> SortSpec:
    return SortSpec.of(*[part.strip() for part in scenario.order_by.split(",")])


def assert_identical(
    actual: Table, expected: Table, context: str, strict: bool = True
) -> None:
    """Byte-identity between a path's output and the scalar oracle.

    ``strict=False`` (the Top-N cell, which rebuilds rows instead of
    gathering them) still compares validity exactly and every valid
    value byte-for-byte, but ignores the data bytes under NULL masks.
    """
    assert actual.num_rows == expected.num_rows, (
        f"{context}: {actual.num_rows} rows != {expected.num_rows}"
    )
    assert actual.schema.names == expected.schema.names, context
    for name in expected.schema.names:
        left, right = actual.column(name), expected.column(name)
        assert np.array_equal(left.validity, right.validity), (
            f"{context}: column {name!r} validity diverged"
        )
        left_data, right_data = left.data, right.data
        if not strict:
            valid = right.validity
            left_data, right_data = left_data[valid], right_data[valid]
        assert np.array_equal(left_data, right_data), (
            f"{context}: column {name!r} values diverged"
        )


def _run_lengths_summary(lengths) -> dict:
    if not lengths:
        return {"count": 0, "min": 0, "max": 0, "mean": 0.0}
    return {
        "count": len(lengths),
        "min": int(min(lengths)),
        "max": int(max(lengths)),
        "mean": float(np.mean(lengths)),
    }


def _dispatch_summary(stats) -> dict:
    """The gate-visible slice of a ``SortStats``: dispatch + run shape."""
    return {
        "algorithm": stats.algorithm,
        "vector_sort_paths": dict(stats.vector_sort_paths),
        "vector_sort_reasons": dict(stats.vector_sort_reasons),
        "rungen_path": stats.rungen_path,
        "rungen_probe": stats.rungen_probe,
        "runs_generated": stats.runs_generated,
        "run_lengths": _run_lengths_summary(stats.run_lengths),
        "merge_passes": stats.merge_passes,
        "kway_rounds": stats.kway_rounds,
        "memory_run_fallbacks": stats.memory_run_fallbacks,
        "governor_forced_spills": stats.governor_forced_spills,
        "checksum_verifications": stats.checksum_verifications,
        "spill_retries": stats.spill_retries,
        "spill_failovers": stats.spill_failovers,
        "sorts_elided": stats.sorts_elided
        + stats.sorts_subsumed
        + stats.sorts_refined,
    }


# ---------------------------------------------------------------------- #
# Path runners: each returns (result_table, dispatch_dict | None, extras)
# ---------------------------------------------------------------------- #


def _run_in_memory(table, spec, rows):
    config = SortConfig(run_threshold=max(2048, rows // 4))
    operator = SortOperator(table.schema, spec, config)
    for chunk in chunk_table(table, config.vector_size):
        operator.sink(chunk)
    result = operator.finalize()
    return result, _dispatch_summary(operator.stats), {}


def _run_external(table, spec, rows):
    config = SortConfig(external=True, run_threshold=max(2048, rows // 4))
    with ExternalSortOperator(table.schema, spec, config) as operator:
        for chunk in chunk_table(table, config.vector_size):
            operator.sink(chunk)
        result = operator.finalize()
    return result, _dispatch_summary(operator.stats), {}


def _run_topn(table, spec, rows):
    operator = TopNOperator(table.schema, spec, TOPN_LIMIT, TOPN_OFFSET)
    for chunk in chunk_table(table):
        operator.sink(chunk)
    # The heap keeps no run/dispatch counters; the cell records time only.
    return operator.finalize(), None, {"limit": TOPN_LIMIT, "offset": TOPN_OFFSET}


def _run_parallel(table, spec, rows):
    config = SortConfig(
        num_workers=2, parallel_morsel_rows=max(2048, rows // 4)
    )
    operator = SortOperator(table.schema, spec, config)
    for chunk in chunk_table(table, config.vector_size):
        operator.sink(chunk)
    result = operator.finalize()
    extras = {
        "parallel_supported": parallel_platform_supported(),
        "parallel_workers": operator.stats.parallel_workers,
    }
    return result, _dispatch_summary(operator.stats), extras


def _run_service(table, spec, rows, scenario):
    config = SortConfig(external=True, run_threshold=max(2048, rows // 4))
    db = Database(sort_config=config)
    db.register("t", table)
    sql = scenario.sql()
    with SortService(
        db,
        memory_budget=8 << 20,
        min_grant_bytes=256 << 10,
        workers=SERVICE_WORKERS,
        queue_limit=SERVICE_QUERIES,
        cache_capacity=0,
        admission_timeout_s=600.0,
    ) as service:
        tickets = [service.submit(sql) for _ in range(SERVICE_QUERIES)]
        results = [ticket.result(timeout=600) for ticket in tickets]
        stats_lists = [ticket.sort_stats for ticket in tickets]
        service_stats = service.stats
    dispatch = None
    for stats_list in stats_lists:
        if stats_list:
            dispatch = _dispatch_summary(stats_list[0])
            break
    extras = {
        "queries": SERVICE_QUERIES,
        "grant_waits": service_stats.grant_waits,
        "governor_forced_spills": service_stats.governor_forced_spills,
    }
    return results, dispatch, extras


def _run_incremental(table, spec, rows):
    sorter = IncrementalSorter(
        table.schema, spec, SortConfig(), compact_threshold=4
    )
    bounds = np.linspace(0, table.num_rows, INCREMENTAL_DELTAS + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi > lo:
            sorter.insert(table.take(np.arange(lo, hi)))
    result = sorter.view()
    extras = {
        "deltas": sorter.stats.deltas_inserted,
        "compactions": sorter.stats.compactions,
        "rows_compacted": sorter.stats.rows_compacted,
        "peak_runs": sorter.stats.peak_runs,
    }
    return result, _dispatch_summary(sorter.stats.sort), extras


# ---------------------------------------------------------------------- #
# The matrix sweep
# ---------------------------------------------------------------------- #


def bench_cell(path, scenario, table, spec, oracle, rows):
    context = (
        f"scenario={scenario.name} path={path} rows={rows} seed={SEED}"
    )
    best_s = None
    dispatch = None
    extras = {}
    for _ in range(REPS):
        started = time.perf_counter()
        if path == "in_memory":
            result, dispatch, extras = _run_in_memory(table, spec, rows)
        elif path == "external":
            result, dispatch, extras = _run_external(table, spec, rows)
        elif path == "topn":
            result, dispatch, extras = _run_topn(table, spec, rows)
        elif path == "parallel":
            result, dispatch, extras = _run_parallel(table, spec, rows)
        elif path == "service":
            result, dispatch, extras = _run_service(table, spec, rows, scenario)
        elif path == "incremental":
            result, dispatch, extras = _run_incremental(table, spec, rows)
        else:  # pragma: no cover - registry drift is a programming error
            raise ValueError(f"unknown path {path!r}")
        elapsed = time.perf_counter() - started
        if path == "topn":
            expected = oracle.take(
                np.arange(TOPN_OFFSET, TOPN_OFFSET + TOPN_LIMIT)
            )
            assert_identical(result, expected, context, strict=False)
        elif path == "service":
            for result_table in result:
                assert_identical(result_table, oracle, context)
        else:
            assert_identical(result, oracle, context)
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    cell = {
        "seconds": best_s,
        "rows_per_s": rows / best_s,
        "identical": True,
        "dispatch": dispatch,
    }
    cell.update(extras)
    return cell


def bench_scenario(scenario, rows):
    table = scenario.table(rows, seed=SEED)
    spec = _spec(scenario)
    started = time.perf_counter()
    oracle = sort_table(table, spec, SortConfig(use_vector_kernels=False))
    oracle_s = time.perf_counter() - started
    cells = {
        path: bench_cell(path, scenario, table, spec, oracle, rows)
        for path in PATHS
    }
    return {
        "description": scenario.description,
        "order_by": scenario.order_by,
        "oracle_seconds": oracle_s,
        "paths": cells,
    }


def main(rows: int = DEFAULT_ROWS, out: str = OUTPUT) -> dict:
    results = {
        "rows": rows,
        "seed": SEED,
        "reps": REPS,
        "cpu_count": os.cpu_count(),
        "paths": list(PATHS),
        "reference_cell": list(REFERENCE_CELL),
        "scenarios": {},
    }
    for name, scenario in SCENARIOS.items():
        results["scenarios"][name] = bench_scenario(scenario, rows)
        numbers = results["scenarios"][name]["paths"]
        fastest = min(cell["seconds"] for cell in numbers.values())
        print(
            f"{name}: "
            + " ".join(
                f"{path}={cell['seconds']:.3f}s" for path, cell in numbers.items()
            )
            + f" (fastest {fastest:.3f}s)"
        )
    with open(out, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(
        f"wrote {out}: {len(results['scenarios'])} scenarios x "
        f"{len(PATHS)} paths, every cell byte-identical to the scalar oracle"
    )
    return results


@pytest.mark.slow
def test_matrix_smoke(tmp_path, capsys):
    with capsys.disabled():
        print()
        results = main(rows=6_000, out=str(tmp_path / "BENCH_matrix.json"))
    assert len(results["scenarios"]) >= 7
    for numbers in results["scenarios"].values():
        assert set(numbers["paths"]) == set(PATHS)
        for cell in numbers["paths"].values():
            assert cell["identical"] is True
            assert cell["seconds"] > 0
    # The dispatch counters the regression gate keys on must be present
    # on every full-sort path (Top-N legitimately records none).
    for numbers in results["scenarios"].values():
        for path, cell in numbers["paths"].items():
            if path == "topn":
                assert cell["dispatch"] is None
            else:
                assert cell["dispatch"] is not None
                assert cell["dispatch"]["runs_generated"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    parser.add_argument("--out", type=str, default=OUTPUT)
    arguments = parser.parse_args()
    main(rows=arguments.rows, out=arguments.out)
