"""Figure 10: cumulative counters, radix vs pdqsort."""

from repro.bench import figure10_counters_radix_pdq


def test_figure10(report):
    result = report(figure10_counters_radix_pdq, num_rows=1 << 12)
    by_algo = {r["algorithm"]: r for r in result.rows}
    # Paper: radix has worse cache behaviour but is mostly branchless.
    assert (
        by_algo["radix"]["l1_misses"]
        > by_algo["pdqsort+memcmp"]["l1_misses"]
    )
    assert (
        by_algo["radix"]["branch_mispredictions"] * 4
        < by_algo["pdqsort+memcmp"]["branch_mispredictions"]
    )
