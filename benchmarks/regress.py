"""Regression gate over the recorded benchmark-matrix trajectory.

Compares a freshly measured ``BENCH_matrix.json`` (the *candidate*)
against the committed baseline and **fails** (exit 1) when the sort
pipeline regressed:

* **Hot-path slowdown** -- a cell whose normalized time grew by more
  than ``--threshold`` (default 15%).  Cell times are normalized by the
  *same run's* reference cell (``uniform x in_memory``), so the
  comparison measures the pipeline's shape, not the runner's absolute
  speed: a uniformly slower machine scales every cell including the
  reference and the ratios cancel.  Cells faster than ``--min-seconds``
  in both runs are skipped as timer noise (they are still checked for
  identity and dispatch).
* **Dispatch-path flip** -- a cell whose dominant vectorized sort
  kernel (argmax of ``vector_sort_paths``) or external run-generation
  path (``rungen_path``) differs from the baseline.  Dispatch is
  deterministic for a given (rows, seed), so a flip means the
  heuristics changed; an *intended* change must ship with a regenerated
  baseline in the same commit (the "artifact update" that makes the
  gate pass).
* **Shape loss** -- a scenario, path, or byte-identity flag present in
  the baseline but missing (or false) in the candidate.
* **Scale mismatch** -- candidate recorded at different (rows, seed):
  dispatch choices are row-count dependent, so cross-scale comparison
  is refused rather than fudged.

The gate also covers the planner order-propagation cells
(``BENCH_planner.json`` from ``bench_order_propagation.py``) when a
candidate is supplied: every cell must stay byte-identical to its
forced-resort oracle, keep its recorded ``sorts_elided`` /
``cache_prefix_hits`` counters (a drop means the planner silently
stopped eliding), and hold the ``min_speedup`` floor the cell itself
records (3x for the single-input elisions, parity for the merge join).

Usage (CI runs exactly this; see ``docs/sort-pipeline.md``)::

    python benchmarks/bench_matrix.py --rows 24000 --out BENCH_matrix_ci.json
    python benchmarks/regress.py --baseline BENCH_matrix.json \
        --candidate BENCH_matrix_ci.json
    python benchmarks/bench_order_propagation.py --out BENCH_planner_ci.json
    python benchmarks/regress.py --planner-baseline BENCH_planner.json \
        --planner-candidate BENCH_planner_ci.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_THRESHOLD = 0.15
DEFAULT_MIN_SECONDS = 0.02

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(_REPO, "BENCH_matrix.json")
DEFAULT_PLANNER_BASELINE = os.path.join(_REPO, "BENCH_planner.json")


def dominant_vector_path(dispatch: dict | None) -> str | None:
    """The most-used vectorized sort kernel of a cell, or None."""
    if not dispatch:
        return None
    paths = dispatch.get("vector_sort_paths") or {}
    if not paths:
        return None
    # Deterministic argmax: highest count, ties broken by name.
    return max(sorted(paths), key=lambda name: paths[name])


def _reference_seconds(matrix: dict) -> float:
    scenario, path = matrix.get("reference_cell", ["uniform", "in_memory"])
    try:
        return matrix["scenarios"][scenario]["paths"][path]["seconds"]
    except KeyError:
        raise SystemExit(
            f"reference cell {scenario}/{path} missing from matrix"
        )


def compare(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[str]:
    """Every violation of the recorded trajectory, as human-readable lines."""
    violations: list[str] = []
    for field in ("rows", "seed"):
        if baseline.get(field) != candidate.get(field):
            violations.append(
                f"scale mismatch: baseline {field}={baseline.get(field)} "
                f"vs candidate {field}={candidate.get(field)}; dispatch is "
                f"scale-dependent, re-run the candidate at the baseline scale"
            )
    if violations:
        return violations

    base_ref = _reference_seconds(baseline)
    cand_ref = _reference_seconds(candidate)
    ref_name = "/".join(baseline.get("reference_cell", ["uniform", "in_memory"]))

    for scenario, base_entry in baseline["scenarios"].items():
        cand_entry = candidate["scenarios"].get(scenario)
        if cand_entry is None:
            violations.append(f"{scenario}: scenario missing from candidate")
            continue
        for path, base_cell in base_entry["paths"].items():
            cand_cell = cand_entry["paths"].get(path)
            cell = f"{scenario}/{path}"
            if cand_cell is None:
                violations.append(f"{cell}: path missing from candidate")
                continue
            if cand_cell.get("identical") is not True:
                violations.append(
                    f"{cell}: candidate output not byte-identical to the "
                    f"scalar oracle"
                )
            base_primary = dominant_vector_path(base_cell.get("dispatch"))
            cand_primary = dominant_vector_path(cand_cell.get("dispatch"))
            if base_primary != cand_primary:
                violations.append(
                    f"{cell}: dominant vector sort path flipped "
                    f"{base_primary!r} -> {cand_primary!r} without a "
                    f"baseline update"
                )
            base_rungen = (base_cell.get("dispatch") or {}).get("rungen_path")
            cand_rungen = (cand_cell.get("dispatch") or {}).get("rungen_path")
            if base_rungen != cand_rungen:
                violations.append(
                    f"{cell}: run-generation path flipped "
                    f"{base_rungen!r} -> {cand_rungen!r} without a "
                    f"baseline update"
                )
            # Order-propagation savings are deterministic per cell; a
            # drop means the planner stopped eliding a sort it used to.
            base_elided = (base_cell.get("dispatch") or {}).get("sorts_elided")
            cand_elided = (cand_cell.get("dispatch") or {}).get("sorts_elided")
            if base_elided is not None and cand_elided != base_elided:
                violations.append(
                    f"{cell}: sorts_elided changed "
                    f"{base_elided!r} -> {cand_elided!r} without a "
                    f"baseline update"
                )
            base_s = base_cell["seconds"]
            cand_s = cand_cell["seconds"]
            if (scenario, path) == tuple(
                baseline.get("reference_cell", ["uniform", "in_memory"])
            ):
                continue  # the reference normalizes itself to 1.0
            if base_s < min_seconds and cand_s < min_seconds:
                continue  # timer noise; identity+dispatch already checked
            base_norm = base_s / base_ref
            cand_norm = cand_s / cand_ref
            if cand_norm > base_norm * (1.0 + threshold):
                violations.append(
                    f"{cell}: hot-path slowdown {base_norm:.2f} -> "
                    f"{cand_norm:.2f} (x{ref_name}; "
                    f"{100 * (cand_norm / base_norm - 1):.0f}% > "
                    f"{100 * threshold:.0f}% allowed)"
                )
    return violations


def compare_planner(baseline: dict, candidate: dict) -> list[str]:
    """Violations of the planner order-propagation trajectory.

    Counters (``sorts_elided``, ``cache_prefix_hits``) are exact: the
    planner's elision decisions are deterministic for a given (rows,
    seed), so any drift means the optimizer changed and the baseline
    must be regenerated in the same commit.  Speedup floors come from
    the cells themselves (``min_speedup``) and are only enforced when
    the candidate ran at gate scale (``gated`` true).
    """
    violations: list[str] = []
    for field in ("rows", "seed"):
        if baseline.get(field) != candidate.get(field):
            violations.append(
                f"planner scale mismatch: baseline {field}="
                f"{baseline.get(field)} vs candidate "
                f"{candidate.get(field)}; re-run the candidate at the "
                f"baseline scale"
            )
    if violations:
        return violations
    for name, base_cell in baseline.get("cells", {}).items():
        cand_cell = candidate.get("cells", {}).get(name)
        if cand_cell is None:
            violations.append(f"planner/{name}: cell missing from candidate")
            continue
        if cand_cell.get("identical") is not True:
            violations.append(
                f"planner/{name}: elided output not identical to the "
                f"forced-resort oracle"
            )
        for counter in ("sorts_elided", "sorts_subsumed", "cache_prefix_hits"):
            if counter not in base_cell:
                continue
            if cand_cell.get(counter) != base_cell[counter]:
                violations.append(
                    f"planner/{name}: {counter} changed "
                    f"{base_cell[counter]!r} -> {cand_cell.get(counter)!r} "
                    f"without a baseline update"
                )
        floor = base_cell.get("min_speedup")
        if (
            floor is not None
            and candidate.get("gated")
            and cand_cell.get("speedup", 0.0) < floor
        ):
            violations.append(
                f"planner/{name}: speedup {cand_cell.get('speedup', 0.0):.2f}x "
                f"fell below the {floor:.1f}x floor (forced "
                f"{cand_cell.get('forced_s', 0.0):.4f}s vs elided "
                f"{cand_cell.get('elided_s', 0.0):.4f}s)"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--candidate", default=None)
    parser.add_argument(
        "--planner-baseline", default=DEFAULT_PLANNER_BASELINE
    )
    parser.add_argument("--planner-candidate", default=None)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument(
        "--min-seconds", type=float, default=DEFAULT_MIN_SECONDS
    )
    arguments = parser.parse_args(argv)
    if arguments.candidate is None and arguments.planner_candidate is None:
        parser.error("need --candidate and/or --planner-candidate")

    violations: list[str] = []
    cells = 0
    if arguments.candidate is not None:
        with open(arguments.baseline) as fh:
            baseline = json.load(fh)
        with open(arguments.candidate) as fh:
            candidate = json.load(fh)
        violations += compare(
            baseline,
            candidate,
            threshold=arguments.threshold,
            min_seconds=arguments.min_seconds,
        )
        cells += sum(
            len(entry["paths"]) for entry in baseline["scenarios"].values()
        )
    if arguments.planner_candidate is not None:
        with open(arguments.planner_baseline) as fh:
            planner_baseline = json.load(fh)
        with open(arguments.planner_candidate) as fh:
            planner_candidate = json.load(fh)
        violations += compare_planner(planner_baseline, planner_candidate)
        cells += len(planner_baseline.get("cells", {}))
    if violations:
        print(f"REGRESSION GATE FAILED ({len(violations)} violation(s)):")
        for line in violations:
            print(f"  - {line}")
        print(
            "If the dispatch or performance change is intended, regenerate "
            "the baseline (python benchmarks/bench_matrix.py and/or "
            "python benchmarks/bench_order_propagation.py) and commit the "
            "updated BENCH_*.json with this change."
        )
        return 1
    print(
        f"regression gate passed: {cells} cells, no slowdown beyond "
        f"{100 * arguments.threshold:.0f}% and no dispatch flips"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
