"""Section II: run-generation vs merge comparison counts."""

import pytest

from repro.bench import rungen_comparison_budget


def test_rungen_budget(report):
    result = report(
        rungen_comparison_budget,
        sizes=(1 << 14, 1 << 17, 1_000_000),
        thread_counts=(2, 16, 48),
    )
    paper_example = [
        r for r in result.rows if r["rows"] == 1_000_000 and r["runs"] == 16
    ]
    assert paper_example[0]["rungen_share"] == pytest.approx(0.8, abs=0.01)
