"""Seeded workload generators shared by the external-sort benchmarks.

This module is now a thin re-export: the generators were promoted into
:mod:`repro.workloads.scenarios` (the scenario-diversity catalog shared
by the oracle tests, the bench matrix, and the regression gate).  The
names below are the original benchmark-facing surface -- every
generator takes an explicit ``(rng, n)`` and ``scenario_table`` is
byte-identical to the pre-promotion output for the same seed, so
recorded artifacts (``BENCH_external.json``, ``BENCH_service.json``)
remain comparable.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.workloads.scenarios import (  # noqa: E402
    VALUE_GENERATORS,
    near_sorted_values,
    reverse_values,
    scenario_table,
    uniform_values,
    zipf_dups_values,
)

__all__ = [
    "SCENARIOS",
    "near_sorted_values",
    "reverse_values",
    "scenario_table",
    "uniform_values",
    "zipf_dups_values",
]

SCENARIOS = {
    name: VALUE_GENERATORS[name]
    for name in ("uniform", "near_sorted", "reverse", "zipf_dups")
}
"""The original four value generators, keyed by their pre-catalog names."""
