"""Seeded workload generators shared by the external-sort benchmarks.

Every generator takes ``(rng, n)`` and returns an ``int64`` value array
for the sort column; :func:`scenario_table` wraps one in a two-column
:class:`~repro.table.table.Table` (sort key ``a`` + random payload
``p``) so benchmarks and tests draw the *same* distributions instead of
each hand-rolling a slightly different "near-sorted".

The distributions mirror how the run-generation literature (and the
paper's Section II) classifies inputs:

* ``uniform`` -- independent draws over the full int64 range; the
  baseline where replacement selection only reaches the classic ~2x
  run length.
* ``near_sorted`` -- an already-sorted sequence perturbed two ways at
  once: bounded local jitter (every row within ``jitter`` positions of
  its sorted place, like a log with bounded clock skew) plus a sparse
  fraction of rows displaced arbitrarily far (late arrivals).
  Replacement selection turns this into a handful of giant runs.
* ``reverse`` -- strictly descending, replacement selection's worst
  case: every incoming row is below the fence, so runs cannot grow
  past their working set.
* ``zipf_dups`` -- heavily duplicated keys with Zipfian skew (a few
  values dominate).  Duplicates never go below the fence, so runs grow
  long here too, and the sort's tie-handling (OVC ties, stable
  row-ids) is exercised hard.
"""

from __future__ import annotations

import numpy as np

from repro.table.table import Table

__all__ = [
    "SCENARIOS",
    "near_sorted_values",
    "reverse_values",
    "scenario_table",
    "uniform_values",
    "zipf_dups_values",
]


def uniform_values(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(-(1 << 62), 1 << 62, n).astype(np.int64)


def near_sorted_values(
    rng: np.random.Generator,
    n: int,
    jitter: int = 64,
    displaced_fraction: float = 0.01,
) -> np.ndarray:
    """Sorted values with bounded local jitter and sparse far outliers."""
    base = np.arange(n, dtype=np.int64)
    keys = base + rng.integers(-jitter, jitter + 1, n)
    displaced = rng.random(n) < displaced_fraction
    keys[displaced] = rng.integers(0, n, int(displaced.sum()))
    return base[np.argsort(keys, kind="stable")]


def reverse_values(rng: np.random.Generator, n: int) -> np.ndarray:
    del rng  # deterministic scenario; signature kept uniform
    return np.arange(n, 0, -1, dtype=np.int64)


def zipf_dups_values(
    rng: np.random.Generator, n: int, alpha: float = 1.3
) -> np.ndarray:
    """Zipf-skewed duplicate-heavy keys (clipped to 10k distinct values)."""
    return np.minimum(rng.zipf(alpha, n), 10_000).astype(np.int64)


SCENARIOS = {
    "uniform": uniform_values,
    "near_sorted": near_sorted_values,
    "reverse": reverse_values,
    "zipf_dups": zipf_dups_values,
}


def scenario_table(name: str, n: int, seed: int = 0) -> Table:
    """A two-column table: scenario values in ``a``, random payload ``p``."""
    rng = np.random.default_rng(seed)
    values = SCENARIOS[name](rng, n)
    return Table.from_numpy(
        {
            "a": values,
            "p": rng.integers(0, 1 << 62, n).astype(np.int64),
        }
    )
