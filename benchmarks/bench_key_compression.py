"""Key-compression benchmark; writes BENCH_compression.json.

Measures what the runtime key-compression layer
(:mod:`repro.keys.compression`) buys on the acceptance workload -- a
1M-row multi-column narrow-range int64 external sort -- plus the raw
kernel dispatch it feeds:

* **external_narrow_int64** -- ``ExternalSortOperator`` end-to-end with
  ``compress_keys`` on vs. off: seconds, spilled bytes (captured before
  the merge), and the compressed key width.  With every column a
  fixed-width integer key, the compressed side spills key-carried runs
  (keys only, no row payload), so both time and spill bytes drop.
* **kernel_radix_vs_lexsort** -- the two wide-key argsort kernels
  (:func:`repro.sort.kernels.radix_argsort_rows` vs. the lexsort-based
  :func:`repro.sort.kernels.argsort_rows`) on the same random key
  matrix, permutation equality asserted.
* **bytes_per_key** -- ``key_width_used`` vs. ``key_width_full`` for
  int-, float- and string-flavoured column mixes (row-id suffix
  excluded), straight from :class:`repro.sort.operator.SortStats`.

Hardware varies across CI boxes, so the numbers are *recorded, not
gated* -- except at full acceptance scale (``--rows`` at least
1,000,000), where the >= 1.5x end-to-end speedup and >= 2x spill-byte
reduction of the acceptance criteria ARE asserted.  Output equality
between the compressed and uncompressed paths is asserted at every
scale -- correctness does not vary with hardware.

Results land in ``BENCH_compression.json`` at the repository root.
Runs standalone (``python benchmarks/bench_key_compression.py
[--rows N]``) or under pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.kernels import argsort_rows, radix_argsort_rows  # noqa: E402
from repro.sort.operator import SortConfig, SortOperator  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.datatypes import BIGINT  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_compression.json")

DEFAULT_ROWS = 1_000_000
ACCEPTANCE_ROWS = 1_000_000  # gate the speedup/spill assertions here
ROUNDS = 3  # best-of for every timed side
SPEEDUP_FLOOR = 1.5
SPILL_REDUCTION_FLOOR = 2.0


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _narrow_table(rng: np.random.Generator, rows: int) -> Table:
    """Multi-column narrow-range int64: every column is a sort key."""
    return Table.from_numpy(
        {
            "grp": rng.integers(0, 100, rows).astype(np.int64),
            "code": rng.integers(0, 250, rows).astype(np.int64),
            "seq": rng.integers(0, 200, rows).astype(np.int64),
        }
    )


def _external_sort(table: Table, spec: SortSpec, compress: bool, rows: int):
    """One external sort; returns (result, spilled_bytes, stats)."""
    run_threshold = max(rows // 8, 1024)
    with tempfile.TemporaryDirectory(prefix="bench_compress_") as spill_dir:
        operator = ExternalSortOperator(
            table.schema,
            spec,
            SortConfig(run_threshold=run_threshold, compress_keys=compress),
            spill_directory=spill_dir,
        )
        try:
            for chunk in chunk_table(table, 16_384):
                operator.sink(chunk)
            spilled = operator.spilled_bytes
            result = operator.finalize()
            return result, spilled, operator.stats
        finally:
            operator.close()


def bench_external(table: Table, spec: SortSpec, rows: int) -> dict:
    sides = {}
    results = {}
    for label, compress in (("off", False), ("on", True)):
        seconds, (result, spilled, stats) = _best_of(
            lambda c=compress: _external_sort(table, spec, c, rows)
        )
        results[label] = result
        sides[label] = {
            "seconds": seconds,
            "rows_per_s": rows / seconds,
            "spilled_bytes": spilled,
            "spilled_runs": stats.runs_generated,
            "key_carried_runs": stats.key_carried_runs,
            "key_width_used": stats.key_width_used,
            "key_width_full": stats.key_width_full,
        }
    # Key-carried runs reconstruct rows from key bytes, so compare values
    # (for all-integer no-NULL keys the reconstruction is exact).
    assert results["on"].equals(results["off"]), (
        "compressed external sort output diverged from uncompressed"
    )
    speedup = sides["off"]["seconds"] / sides["on"]["seconds"]
    reduction = sides["off"]["spilled_bytes"] / max(
        sides["on"]["spilled_bytes"], 1
    )
    summary = {
        "rows": rows,
        "compress_off": sides["off"],
        "compress_on": sides["on"],
        "speedup": speedup,
        "spill_reduction": reduction,
    }
    assert reduction >= SPILL_REDUCTION_FLOOR, (
        f"spill reduction {reduction:.2f}x below the "
        f"{SPILL_REDUCTION_FLOOR}x acceptance floor"
    )
    if rows >= ACCEPTANCE_ROWS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"end-to-end speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x acceptance floor at full scale"
        )
    return summary


def bench_kernels(rng: np.random.Generator, rows: int) -> dict:
    """Radix vs. lexsort argsort kernels on one wide random key matrix."""
    width = 16
    matrix = rng.integers(0, 256, (rows, width), dtype=np.uint8)
    # Row-id suffix keeps every row distinct, like real normalized keys.
    matrix[:, width - 8 :] = (
        np.arange(rows, dtype=np.uint64)
        .byteswap()
        .view(np.uint8)
        .reshape(rows, 8)
    )
    radix_s, radix_order = _best_of(lambda: radix_argsort_rows(matrix))
    lexsort_s, lexsort_order = _best_of(lambda: argsort_rows(matrix))
    assert (radix_order == lexsort_order).all(), (
        "radix and lexsort kernels disagree on the permutation"
    )
    return {
        "rows": rows,
        "key_bytes": width,
        "radix_s": radix_s,
        "radix_rows_per_s": rows / radix_s,
        "lexsort_s": lexsort_s,
        "lexsort_rows_per_s": rows / lexsort_s,
        "radix_speedup_vs_lexsort": lexsort_s / radix_s,
    }


def bench_bytes_per_key(rng: np.random.Generator, rows: int) -> dict:
    """Compressed vs. full-width key bytes for mixed-type workloads."""
    strings = np.array(["ok", "retry", "failed", "queued"])
    mixes = {
        "int64_narrow": Table.from_numpy(
            {
                "grp": rng.integers(0, 100, rows).astype(np.int64),
                "code": rng.integers(0, 250, rows).astype(np.int64),
            }
        ),
        "int64_float64": Table.from_numpy(
            {
                "grp": rng.integers(0, 100, rows).astype(np.int64),
                "score": rng.random(rows),
            }
        ),
        "string_int64": Table.from_pydict(
            {
                "status": [str(s) for s in strings[rng.integers(0, 4, rows)]],
                "grp": [int(v) for v in rng.integers(0, 100, rows)],
            },
            dtypes={"grp": BIGINT},
        ),
    }
    result = {}
    for name, table in mixes.items():
        spec = SortSpec.of(*table.schema.names)
        operator = SortOperator(table.schema, spec, SortConfig())
        for chunk in chunk_table(table, 16_384):
            operator.sink(chunk)
        operator.finalize()
        used = operator.stats.key_width_used
        full = operator.stats.key_width_full
        result[name] = {
            "bytes_per_key_compressed": used,
            "bytes_per_key_full": full,
            "compression_ratio": full / used,
        }
    return result


def main(rows: int = DEFAULT_ROWS) -> dict:
    rng = np.random.default_rng(29)
    table = _narrow_table(rng, rows)
    spec = SortSpec.of("grp", "code", "seq")
    results = {
        "cpu_count": os.cpu_count(),
        "external_narrow_int64": bench_external(table, spec, rows),
        "kernel_radix_vs_lexsort": bench_kernels(rng, rows),
        "bytes_per_key": bench_bytes_per_key(rng, min(rows, 100_000)),
    }
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    ext = results["external_narrow_int64"]
    print(
        f"external_narrow_int64: off {ext['compress_off']['seconds']:.3f}s "
        f"/ {ext['compress_off']['spilled_bytes']:,} B spilled, "
        f"on {ext['compress_on']['seconds']:.3f}s "
        f"/ {ext['compress_on']['spilled_bytes']:,} B spilled "
        f"({ext['speedup']:.2f}x faster, "
        f"{ext['spill_reduction']:.2f}x fewer spill bytes)"
    )
    kern = results["kernel_radix_vs_lexsort"]
    print(
        f"kernel_radix_vs_lexsort: radix {kern['radix_rows_per_s']:,.0f} "
        f"rows/s, lexsort {kern['lexsort_rows_per_s']:,.0f} rows/s "
        f"({kern['radix_speedup_vs_lexsort']:.2f}x)"
    )
    for name, stats in results["bytes_per_key"].items():
        print(
            f"bytes_per_key[{name}]: {stats['bytes_per_key_compressed']} vs "
            f"{stats['bytes_per_key_full']} "
            f"({stats['compression_ratio']:.2f}x)"
        )
    print(f"wrote {OUTPUT} (cpu_count={results['cpu_count']})")
    return results


def test_compression_bench_smoke(capsys):
    with capsys.disabled():
        print()
        results = main(rows=120_000)
    # Output equality and the spill-byte floor are asserted inside main();
    # here only completeness of the recorded sections.
    assert results["external_narrow_int64"]["spill_reduction"] >= 2.0
    assert results["kernel_radix_vs_lexsort"]["radix_rows_per_s"] > 0
    assert set(results["bytes_per_key"]) == {
        "int64_narrow",
        "int64_float64",
        "string_int64",
    }
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    main(rows=parser.parse_args().rows)
