"""Exact string-sort benchmark; writes BENCH_strings.json.

Measures what the exact vector string path (adaptive tie-break
re-encoding in :mod:`repro.sort.stringsort` plus offset-value coding in
the merge kernels) buys over the scalar per-row comparator it replaced:

* **long_string_sort** -- a 200k-row sort on strings far past the
  12-byte key prefix: the vector path (kernel sort + targeted
  re-encoding of prefix-tied rows) vs. ``use_vector_kernels=False``
  (the old per-row scalar fallback, kept as the correctness oracle).
  Output equality is asserted; at acceptance scale (``--rows`` at least
  200,000) the >= 3x speedup of the acceptance criteria IS asserted.
* **shared_prefix_worst_case** -- every row shares one long prefix, so
  every row enters refinement: records the re-encode work counters
  (rounds, rows, full-key compares) and the seconds they cost.
* **duplicate_heavy_kway** -- an external multi-run sort on a tiny
  string domain, offset-value coding on vs. off: nearly every row is a
  duplicate of its run predecessor, so the stored codes settle it with
  no word comparison at all.  Output equality is asserted, and the
  merge win is gated on the deterministic work counter -- at acceptance
  scale the codes must cut the rows ordered through full word
  comparisons by >= 2x (``ovc_compares``); wall-clock is recorded
  alongside but not gated, since the per-round savings are a few word
  columns of ``np.lexsort`` and vanish into scheduling noise on small
  CI boxes.

Hardware varies across CI boxes, so timing numbers are *recorded, not
gated* below acceptance scale.  Results land in ``BENCH_strings.json``
at the repository root.  Runs standalone (``python
benchmarks/bench_string_sort.py [--rows N]``) or under pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.operator import SortConfig, SortOperator  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_strings.json")

DEFAULT_ROWS = 200_000
ACCEPTANCE_ROWS = 200_000  # gate the speedup assertions here
ROUNDS = 3  # best-of for every timed side
SPEEDUP_FLOOR = 3.0
COMPARE_REDUCTION_FLOOR = 2.0


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _long_string_table(seed: int, rows: int) -> Table:
    """Strings of 25-60 bytes; prefixes collide, tails decide."""
    rng = random.Random(seed)
    prefixes = [
        "warehouse_eu_central_returns_",
        "warehouse_eu_central_orders__",
        "warehouse_us_east_returns____",
    ]
    values = [
        rng.choice(prefixes)
        + "".join(rng.choice("abcdefgh0123") for _ in range(rng.randrange(0, 30)))
        for _ in range(rows)
    ]
    return Table.from_pydict({"s": values})


def _shared_prefix_table(seed: int, rows: int) -> Table:
    """One shared 24-byte prefix: every single row enters refinement."""
    rng = random.Random(seed)
    values = [
        "tenant_0042_partition_a_" + format(rng.randrange(rows * 4), "08x")
        for _ in range(rows)
    ]
    return Table.from_pydict({"s": values})


def _duplicate_heavy_table(seed: int, rows: int) -> Table:
    """A four-value domain: nearly every row duplicates a predecessor.

    The values stay inside the key prefix so the merge is the pure k-way
    kernel -- no tie refinement -- and the offset-value codes are the
    only thing separating the two sides.
    """
    rng = random.Random(seed)
    domain = ["ok", "retry", "failed", "queued"]
    return Table.from_pydict({"s": [rng.choice(domain) for _ in range(rows)]})


def _sort_in_memory(table: Table, config: SortConfig):
    operator = SortOperator(table.schema, SortSpec.of("s"), config)
    for chunk in chunk_table(table, 16_384):
        operator.sink(chunk)
    return operator.finalize(), operator.stats


def bench_long_strings(rows: int) -> dict:
    table = _long_string_table(11, rows)
    run_threshold = max(rows // 8, 1024)
    sides = {}
    results = {}
    for label, use_kernels in (("scalar", False), ("vector", True)):
        config = SortConfig(
            run_threshold=run_threshold, use_vector_kernels=use_kernels
        )
        seconds, (result, stats) = _best_of(
            lambda c=config: _sort_in_memory(table, c)
        )
        results[label] = result
        sides[label] = {
            "seconds": seconds,
            "rows_per_s": rows / seconds,
            "scalar_merges": stats.scalar_merges,
            "kernel_merges": stats.kernel_merges,
            "reencoded_rows": stats.reencoded_rows,
            "full_key_compares": stats.full_key_compares,
        }
    assert results["vector"].column("s").to_pylist() == results[
        "scalar"
    ].column("s").to_pylist(), (
        "vector string sort diverged from the scalar oracle"
    )
    assert sides["vector"]["scalar_merges"] == 0, (
        "vector side demoted to scalar merges"
    )
    speedup = sides["scalar"]["seconds"] / sides["vector"]["seconds"]
    summary = {
        "rows": rows,
        "scalar_fallback": sides["scalar"],
        "vector_exact": sides["vector"],
        "speedup": speedup,
    }
    if rows >= ACCEPTANCE_ROWS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vector string sort {speedup:.2f}x vs scalar is below the "
            f"{SPEEDUP_FLOOR}x acceptance floor at full scale"
        )
    return summary


def bench_shared_prefix(rows: int) -> dict:
    table = _shared_prefix_table(13, rows)
    seconds, (result, stats) = _best_of(
        lambda: _sort_in_memory(
            table, SortConfig(run_threshold=max(rows // 8, 1024))
        )
    )
    values = result.column("s").to_pylist()
    assert values == sorted(values), "shared-prefix sort is not exact"
    return {
        "rows": rows,
        "seconds": seconds,
        "rows_per_s": rows / seconds,
        "reencode_rounds": stats.reencode_rounds,
        "reencoded_rows": stats.reencoded_rows,
        "full_key_compares": stats.full_key_compares,
    }


def _external_sort(table: Table, rows: int, use_ovc: bool):
    run_threshold = max(rows // 8, 1024)
    with tempfile.TemporaryDirectory(prefix="bench_strings_") as spill_dir:
        with ExternalSortOperator(
            table.schema,
            SortSpec.of("s"),
            SortConfig(run_threshold=run_threshold, use_ovc=use_ovc),
            spill_directory=spill_dir,
        ) as operator:
            for chunk in chunk_table(table, 16_384):
                operator.sink(chunk)
            result = operator.finalize()
            return result, operator.stats


def bench_duplicate_kway(rows: int) -> dict:
    table = _duplicate_heavy_table(17, rows)
    sides = {}
    results = {}
    for label, use_ovc in (("off", False), ("on", True)):
        seconds, (result, stats) = _best_of(
            lambda u=use_ovc: _external_sort(table, rows, u)
        )
        results[label] = result
        sides[label] = {
            "seconds": seconds,
            "rows_per_s": rows / seconds,
            "merge_phase_s": stats.phase_seconds.get("merge", 0.0),
            "ovc_compares": stats.ovc_compares,
            "ovc_ties": stats.ovc_ties,
            "kway_rounds": stats.kway_rounds,
        }
    assert results["on"].column("s").to_pylist() == results["off"].column(
        "s"
    ).to_pylist(), "OVC merge output diverged from the plain merge"
    assert sides["on"]["ovc_ties"] > sides["off"]["ovc_ties"], (
        "stored offset-value codes settled no extra rows"
    )
    compare_reduction = sides["off"]["ovc_compares"] / max(
        sides["on"]["ovc_compares"], 1
    )
    merge_speedup = sides["off"]["merge_phase_s"] / max(
        sides["on"]["merge_phase_s"], 1e-9
    )
    summary = {
        "rows": rows,
        "ovc_off": sides["off"],
        "ovc_on": sides["on"],
        "compare_reduction": compare_reduction,
        "merge_speedup": merge_speedup,
    }
    if rows >= ACCEPTANCE_ROWS:
        assert compare_reduction >= COMPARE_REDUCTION_FLOOR, (
            f"offset-value codes cut full word comparisons only "
            f"{compare_reduction:.2f}x, below the "
            f"{COMPARE_REDUCTION_FLOOR}x acceptance floor"
        )
    return summary


def main(rows: int = DEFAULT_ROWS) -> dict:
    results = {
        "cpu_count": os.cpu_count(),
        "long_string_sort": bench_long_strings(rows),
        "shared_prefix_worst_case": bench_shared_prefix(min(rows, 100_000)),
        "duplicate_heavy_kway": bench_duplicate_kway(rows),
    }
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    long = results["long_string_sort"]
    print(
        f"long_string_sort: scalar {long['scalar_fallback']['seconds']:.3f}s, "
        f"vector {long['vector_exact']['seconds']:.3f}s "
        f"({long['speedup']:.2f}x faster, "
        f"{long['vector_exact']['reencoded_rows']:,} rows re-encoded)"
    )
    shared = results["shared_prefix_worst_case"]
    print(
        f"shared_prefix_worst_case: {shared['seconds']:.3f}s for "
        f"{shared['rows']:,} rows, {shared['reencode_rounds']} re-encode "
        f"rounds over {shared['reencoded_rows']:,} rows"
    )
    kway = results["duplicate_heavy_kway"]
    print(
        f"duplicate_heavy_kway: {kway['ovc_off']['ovc_compares']:,} rows "
        f"word-compared without OVC, {kway['ovc_on']['ovc_compares']:,} "
        f"with ({kway['compare_reduction']:.2f}x fewer; merge "
        f"{kway['ovc_off']['merge_phase_s']:.3f}s -> "
        f"{kway['ovc_on']['merge_phase_s']:.3f}s)"
    )
    print(f"wrote {OUTPUT} (cpu_count={results['cpu_count']})")
    return results


def test_string_bench_smoke(capsys):
    with capsys.disabled():
        print()
        results = main(rows=30_000)
    # Output equality and the no-scalar-demotion checks run inside main();
    # here only completeness of the recorded sections.
    assert results["long_string_sort"]["vector_exact"]["rows_per_s"] > 0
    assert results["shared_prefix_worst_case"]["reencoded_rows"] > 0
    assert results["duplicate_heavy_kway"]["compare_reduction"] > 1.0
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    main(rows=parser.parse_args().rows)
