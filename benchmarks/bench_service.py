"""Concurrent query service benchmark; writes BENCH_service.json.

Measures what the service layer buys (and costs) when many ORDER BY
queries contend for one constrained sort-memory budget:

* **serial** -- the same queries one after another through
  ``Database.execute`` with the full budget to themselves; the baseline
  latency floor.
* **concurrent** -- all queries submitted at once to a
  :class:`repro.service.SortService` whose
  :class:`~repro.service.MemoryGovernor` budget is deliberately sized
  for only a couple of grants, so admission revokes shares and forces
  early spills while workers overlap each other's I/O and compute.

Reported per scenario (``uniform`` and ``zipf_dups`` from
:mod:`scenarios`): wall-clock throughput (queries/s and rows/s), p50/p99
per-query latency (submit to completion, measured by per-ticket waiter
threads, not by polling order), and the governor counters that prove the
budget actually constrained the run (grant waits, revocations, forced
spills, peak concurrent spill bytes).

Timings vary with runner hardware, so they are *recorded, not gated*;
what IS asserted at any scale: every concurrent result is byte-identical
to its serial run, the governor forced at least one early spill, and no
grant, spill file, or service thread survives the run.

Results land in ``BENCH_service.json`` at the repository root.  Runs
standalone (``python benchmarks/bench_service.py [--rows N]``) or under
pytest.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import tempfile
import threading
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from scenarios import scenario_table  # noqa: E402
from repro.engine import Database  # noqa: E402
from repro.service import SortService  # noqa: E402
from repro.sort.operator import SortConfig  # noqa: E402
from repro.table.table import Table  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_service.json")

DEFAULT_ROWS = 1_000_000
SCENARIO_NAMES = ("uniform", "zipf_dups")
QUERIES = 16
WORKERS = 8
MEMORY_BUDGET = 256 << 10  # sized for ~4 minimum grants: real contention
MIN_GRANT = 64 << 10


def _tables_equal(a: Table, b: Table) -> bool:
    if a.num_rows != b.num_rows:
        return False
    for name in a.schema.names:
        left, right = a.column(name), b.column(name)
        if left.data.tobytes() != right.data.tobytes():
            return False
    return True


def _spill_dirs() -> set:
    return set(
        glob.glob(os.path.join(tempfile.gettempdir(), "repro-spill-*"))
    )


def bench_scenario(name: str, rows: int) -> dict:
    config = SortConfig(external=True, run_threshold=max(2000, rows // 4))
    db = Database(sort_config=config)
    db.register("t", scenario_table(name, rows, seed=17))
    # Distinct OFFSETs defeat the result cache without changing the work.
    queries = [
        f"SELECT * FROM t ORDER BY a, p OFFSET {i}" for i in range(QUERIES)
    ]

    serial_started = time.perf_counter()
    expected = {sql: db.execute(sql) for sql in queries}
    serial_s = time.perf_counter() - serial_started

    before_dirs = _spill_dirs()
    latencies: dict[str, float] = {}
    latencies_lock = threading.Lock()

    with SortService(
        db,
        memory_budget=MEMORY_BUDGET,
        min_grant_bytes=MIN_GRANT,
        workers=WORKERS,
        queue_limit=QUERIES,
        cache_capacity=0,
        admission_timeout_s=600.0,
    ) as service:
        concurrent_started = time.perf_counter()
        tickets = [service.submit(sql) for sql in queries]

        def waiter(sql: str, ticket) -> None:
            result = ticket.result(timeout=600)
            elapsed = time.monotonic() - ticket.submitted_at
            assert _tables_equal(result, expected[sql]), (
                f"concurrent result diverged from serial for {sql!r}"
            )
            with latencies_lock:
                latencies[ticket.query_id] = elapsed

        waiters = [
            threading.Thread(target=waiter, args=(sql, ticket))
            for sql, ticket in zip(queries, tickets)
        ]
        for thread in waiters:
            thread.start()
        for thread in waiters:
            thread.join()
        concurrent_s = time.perf_counter() - concurrent_started
        stats = service.stats
        assert service.governor.active_grants == 0, "grant leaked"
        assert service.governor.concurrent_spill_bytes == 0

    assert len(latencies) == QUERIES
    assert stats.completed == QUERIES
    assert stats.governor_forced_spills > 0, (
        "budget never constrained a sort -- benchmark is not measuring "
        "contention"
    )
    assert _spill_dirs() == before_dirs, "spill directory leaked"

    values = np.array(sorted(latencies.values()))
    return {
        "serial_s": serial_s,
        "serial_queries_per_s": QUERIES / serial_s,
        "concurrent_s": concurrent_s,
        "concurrent_queries_per_s": QUERIES / concurrent_s,
        "concurrent_rows_per_s": QUERIES * rows / concurrent_s,
        "speedup_vs_serial": serial_s / concurrent_s,
        "latency_p50_s": float(np.percentile(values, 50)),
        "latency_p99_s": float(np.percentile(values, 99)),
        "latency_max_s": float(values[-1]),
        "governor": {
            "grant_waits": stats.grant_waits,
            "grant_wait_s": stats.grant_wait_s,
            "revocations": stats.revocations,
            "peak_active_grants": stats.peak_active_grants,
            "governor_forced_spills": stats.governor_forced_spills,
            "peak_concurrent_spill_bytes": stats.peak_concurrent_spill_bytes,
        },
    }


def main(rows: int = DEFAULT_ROWS) -> dict:
    results = {
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "queries_per_scenario": QUERIES,
        "workers": WORKERS,
        "memory_budget_bytes": MEMORY_BUDGET,
        "min_grant_bytes": MIN_GRANT,
        "scenarios": {},
    }
    for name in SCENARIO_NAMES:
        results["scenarios"][name] = bench_scenario(name, rows)
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    for name, numbers in results["scenarios"].items():
        print(
            f"{name}: concurrent {numbers['concurrent_queries_per_s']:.2f} q/s "
            f"({numbers['speedup_vs_serial']:.2f}x vs serial), "
            f"p50 {numbers['latency_p50_s']:.3f}s "
            f"p99 {numbers['latency_p99_s']:.3f}s, "
            f"forced_spills={numbers['governor']['governor_forced_spills']} "
            f"revocations={numbers['governor']['revocations']}"
        )
    print(f"wrote {OUTPUT} (cpu_count={results['cpu_count']})")
    return results


def test_service_bench_smoke(capsys):
    with capsys.disabled():
        print()
        results = main(rows=50_000)
    # Byte identity and governor pressure are asserted inside main();
    # here only completeness of the recorded shape.
    assert set(results["scenarios"]) == set(SCENARIO_NAMES)
    for numbers in results["scenarios"].values():
        assert numbers["latency_p99_s"] >= numbers["latency_p50_s"]
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    main(rows=parser.parse_args().rows)
