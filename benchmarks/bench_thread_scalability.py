"""Thread scalability of the DuckDB pipeline (virtual-time model)."""

from repro.bench import thread_scalability


def test_thread_scalability(report):
    result = report(thread_scalability, num_rows=200_000)
    by_threads = {r["threads"]: r for r in result.rows}
    # Run generation + Merge Path keep the pipeline near-linear.
    assert by_threads[16]["speedup"] > 10
    assert by_threads[48]["speedup"] > 24
