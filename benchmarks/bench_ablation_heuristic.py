"""Ablation: fixed algorithm rule vs the cost-based chooser (Section IX)."""

from repro.bench import ablation_heuristic_chooser


def test_heuristic_chooser(report):
    result = report(ablation_heuristic_chooser, num_rows=50_000)
    chosen = {
        (r["workload"], r["policy"]): r["algorithm_used"]
        for r in result.rows
    }
    # The chooser adapts: radix for narrow duplicate-heavy keys, pdqsort
    # for wide nearly-unique keys on a small input.
    assert chosen[("narrow-dups", "heuristic")] == "radix"
    assert chosen[("wide-unique", "heuristic")] == "pdqsort"
