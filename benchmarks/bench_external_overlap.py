"""Overlapped prefetch + replacement selection; writes BENCH_external.json.

Two experiments over the external sort, both asserting byte identity
between every timed configuration:

* **overlap** -- a multi-run external sort of uniform int64 rows, merge
  read-ahead off (``prefetch_blocks=0``, every spill read on the merge's
  critical path) vs on.  Timed twice: against the raw filesystem, where
  page-cache reads are nearly free and the gap is noise on most
  machines, and against :class:`~repro.sort.faults.SlowStorageIO`, a
  deterministic cold-storage model (fixed per-read latency, sleeping
  without the GIL) where the prefetch threads genuinely hide the read
  latency behind merge compute -- the headline ``speedup`` comes from
  the slow-storage profile.  Per-phase wall-clock (``io_wait``,
  ``spill_io`` vs overlapped ``spill_io_overlap``) and hit rates are
  recorded alongside.

* **rungen** -- a near-sorted workload (see :mod:`scenarios`) sorted
  with plain argsort run generation vs replacement selection, both
  under ``merge_fan_in=4`` so run count shows up as merge passes.
  Replacement selection's longer runs (bounded only by the 4x run cap)
  mean fewer runs, fewer merge passes, and fewer k-way rounds; the
  JSON records run counts, run-length lists, pass/round counts, and
  the pass ratio.

Results land in ``BENCH_external.json`` at the repository root.  Runs
standalone (``python benchmarks/bench_external_overlap.py [--rows N]``)
or under pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.faults import SlowStorageIO, SpillIO  # noqa: E402
from repro.sort.operator import SortConfig  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402

from scenarios import near_sorted_values, uniform_values  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_external.json")

DEFAULT_ROWS = 1_000_000
CHUNK_ROWS = 16_384
PREFETCH_DEPTH = 2
MERGE_FAN_IN = 4
READ_DELAY_S = 0.002  # SlowStorageIO per-read latency (cold spill store)
ROUNDS = 2  # best-of for every timed side


def _run_rows(rows: int) -> int:
    """Run threshold giving 8 spilled runs at any benchmark scale."""
    return max(8192, rows // 8)


def _external_sort(table, spec, config, io=None):
    with tempfile.TemporaryDirectory(prefix="bench_external_") as spill_dir:
        start = time.perf_counter()
        with ExternalSortOperator(
            table.schema,
            spec,
            config,
            spill_directory=spill_dir,
            io=io,
        ) as operator:
            for chunk in chunk_table(table, CHUNK_ROWS):
                operator.sink(chunk)
            result = operator.finalize()
        return time.perf_counter() - start, result, operator.stats


def _best_of(fn, rounds=ROUNDS):
    best_s, best = float("inf"), None
    for _ in range(rounds):
        elapsed, result, stats = fn()
        if elapsed < best_s:
            best_s, best = elapsed, (result, stats)
    return best_s, best[0], best[1]


def _tables_equal(a: Table, b: Table) -> bool:
    if a.num_rows != b.num_rows:
        return False
    for name in a.schema.names:
        left, right = a.column(name), b.column(name)
        if left.data.tobytes() != right.data.tobytes():
            return False
        if (left.validity is None) != (right.validity is None):
            return False
        if left.validity is not None and not (
            left.validity == right.validity
        ).all():
            return False
    return True


def _stat_summary(stats) -> dict:
    fetches = stats.prefetch_hits + stats.prefetch_misses
    return {
        "runs": stats.runs_generated,
        "merge_passes": stats.merge_passes,
        "kway_rounds": stats.kway_rounds,
        "prefetch_hits": stats.prefetch_hits,
        "prefetch_misses": stats.prefetch_misses,
        "prefetch_hit_rate": (
            stats.prefetch_hits / fetches if fetches else 0.0
        ),
        "prefetch_peak_blocks": stats.prefetch_peak_blocks,
        "phase_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(stats.phase_seconds.items())
        },
    }


def bench_overlap(rows: int) -> dict:
    rng = np.random.default_rng(41)
    table = Table.from_numpy(
        {
            "a": uniform_values(rng, rows),
            "p": rng.integers(0, 1 << 62, rows).astype(np.int64),
        }
    )
    spec = SortSpec.of("a")
    run_rows = _run_rows(rows)
    result = {"rows": rows, "rows_per_run": run_rows, "profiles": {}}
    reference = None
    for profile, make_io in (
        ("raw", lambda: SpillIO()),
        ("slow_storage", lambda: SlowStorageIO(read_delay_s=READ_DELAY_S)),
    ):
        sides = {}
        for side, depth in (("off", 0), ("on", PREFETCH_DEPTH)):
            config = SortConfig(
                run_threshold=run_rows, prefetch_blocks=depth
            )
            elapsed, output, stats = _best_of(
                lambda: _external_sort(table, spec, config, io=make_io())
            )
            if reference is None:
                reference = output
            assert _tables_equal(output, reference), (
                f"output diverged: profile={profile} prefetch={side}"
            )
            sides[side] = {
                "seconds": elapsed,
                "rows_per_s": rows / elapsed,
                **_stat_summary(stats),
            }
        sides["speedup"] = sides["off"]["seconds"] / sides["on"]["seconds"]
        result["profiles"][profile] = sides
    result["speedup"] = result["profiles"]["slow_storage"]["speedup"]
    result["read_delay_s"] = READ_DELAY_S
    return result


def bench_rungen(rows: int) -> dict:
    rng = np.random.default_rng(43)
    table = Table.from_numpy(
        {
            "a": near_sorted_values(rng, rows),
            "p": rng.integers(0, 1 << 62, rows).astype(np.int64),
        }
    )
    spec = SortSpec.of("a")
    run_rows = _run_rows(rows)
    result = {"rows": rows, "rows_per_run": run_rows, "sides": {}}
    reference = None
    for side, selection in (("argsort", False), ("replacement", True)):
        config = SortConfig(
            run_threshold=run_rows,
            replacement_selection=selection,
            merge_fan_in=MERGE_FAN_IN,
        )
        elapsed, output, stats = _best_of(
            lambda: _external_sort(table, spec, config)
        )
        if reference is None:
            reference = output
        assert _tables_equal(output, reference), (
            f"output diverged: rungen={side}"
        )
        result["sides"][side] = {
            "seconds": elapsed,
            "rows_per_s": rows / elapsed,
            "rungen_path": stats.rungen_path,
            "run_lengths": stats.run_lengths,
            **_stat_summary(stats),
        }
    argsort, replacement = result["sides"]["argsort"], result["sides"]["replacement"]
    result["run_reduction"] = argsort["runs"] / replacement["runs"]
    result["merge_pass_reduction"] = (
        argsort["merge_passes"] / replacement["merge_passes"]
    )
    result["kway_round_reduction"] = (
        argsort["kway_rounds"] / max(1, replacement["kway_rounds"])
    )
    # The probe is part of the contract: auto dispatch must pick
    # replacement selection on this workload without being forced.
    probe_config = SortConfig(run_threshold=run_rows)
    _, probe_out, probe_stats = _external_sort(table, spec, probe_config)
    assert _tables_equal(probe_out, reference), "auto-dispatch diverged"
    result["auto"] = {
        "rungen_path": probe_stats.rungen_path,
        "probe": probe_stats.rungen_probe,
    }
    return result


def main(rows: int = DEFAULT_ROWS) -> dict:
    results = {
        "cpu_count": os.cpu_count(),
        "overlap_int64": bench_overlap(rows),
        "rungen_near_sorted": bench_rungen(rows),
    }
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    overlap = results["overlap_int64"]
    for profile, sides in overlap["profiles"].items():
        print(
            f"overlap[{profile}]: off {sides['off']['seconds']:.3f}s, "
            f"on {sides['on']['seconds']:.3f}s "
            f"({sides['speedup']:.2f}x, hit_rate "
            f"{sides['on']['prefetch_hit_rate']:.2f})"
        )
    rungen = results["rungen_near_sorted"]
    print(
        "rungen[near_sorted]: "
        f"argsort {rungen['sides']['argsort']['runs']} runs / "
        f"{rungen['sides']['argsort']['merge_passes']} passes, "
        f"replacement {rungen['sides']['replacement']['runs']} runs / "
        f"{rungen['sides']['replacement']['merge_passes']} passes "
        f"({rungen['merge_pass_reduction']:.2f}x fewer passes, "
        f"auto probe {rungen['auto']['probe']:.3f} -> "
        f"{rungen['auto']['rungen_path']})"
    )
    print(f"wrote {OUTPUT} (cpu_count={results['cpu_count']})")
    return results


def test_external_overlap_bench_smoke(capsys):
    with capsys.disabled():
        print()
        results = main(rows=120_000)
    overlap = results["overlap_int64"]
    # Byte identity is asserted inside main(); the slow-storage profile
    # must show real overlap even on a single-core runner (the injected
    # latency sleeps without the GIL).
    assert overlap["profiles"]["slow_storage"]["speedup"] >= 1.2
    assert overlap["profiles"]["slow_storage"]["on"]["prefetch_hits"] > 0
    rungen = results["rungen_near_sorted"]
    assert rungen["run_reduction"] >= 1.5
    assert rungen["merge_pass_reduction"] >= 1.5
    assert rungen["auto"]["rungen_path"] == "replacement_selection"
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    main(rows=parser.parse_args().rows)
