"""Figure 5: row approaches vs columnar subsort, std::stable_sort."""

from conftest import BENCH_DISTS, BENCH_KEYS
from repro.bench import figure5_row_vs_columnar_stable

SIZES = (64, 256, 1024)


def test_figure5(report):
    result = report(
        figure5_row_vs_columnar_stable, SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: results resemble Figure 4 but with a smaller row benefit
    # (merge sort's access is already sequential).  At our scaled sizes
    # the wide-key cells dip below 1; the single-key cells stay above.
    large = [r for r in result.rows if r["rows"] == max(SIZES)]
    assert all(r["row_subsort_relative"] > 0.45 for r in large)
    assert all(
        r["row_subsort_relative"] > 1.0 for r in large if r["keys"] == 1
    )
