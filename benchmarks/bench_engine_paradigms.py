"""Section V framing: Volcano vs vectorized vs compiled overhead."""

from repro.bench import ablation_engine_paradigms


def test_engine_paradigms(report):
    result = report(ablation_engine_paradigms, num_rows=8192)
    rel = {r["paradigm"]: r["relative"] for r in result.rows}
    # Volcano pays per-tuple interpretation; vectorization amortizes it
    # to within a few percent of compiled execution.
    assert rel["volcano"] > 4.0
    assert rel["vectorized"] < 1.1
