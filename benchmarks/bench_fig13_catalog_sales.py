"""Figure 13: TPC-DS catalog_sales sorted by 1-4 key columns."""

from repro.bench import figure13_catalog_sales


def test_figure13(report):
    result = report(figure13_catalog_sales)
    sf10 = [r for r in result.rows if r["workload"].startswith("SF10 ")]
    one_key, four_key = sf10[0], sf10[3]
    # Paper: ClickHouse slows ~4x beyond one key; DuckDB/HyPer degrade
    # far less; MonetDB ~3x.
    click = four_key["ClickHouse_s"] / one_key["ClickHouse_s"]
    duck = four_key["DuckDB_s"] / one_key["DuckDB_s"]
    hyper = four_key["HyPer_s"] / one_key["HyPer_s"]
    monet = four_key["MonetDB_s"] / one_key["MonetDB_s"]
    assert click > 2 * duck
    assert click > 2 * hyper
    assert 1.5 < monet < 4.0
