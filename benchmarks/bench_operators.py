"""Real wall-clock of the sort-consuming operators: joins, window, group-by."""

import numpy as np
import pytest

from repro.aggregate import Aggregate, group_by
from repro.join import ie_join, merge_join
from repro.table.table import Table
from repro.window import WindowFunction, WindowSpec, window

N = 30_000


@pytest.fixture(scope="module")
def fact():
    rng = np.random.default_rng(0)
    return Table.from_numpy(
        {
            "key": rng.integers(0, 2000, N).astype(np.int32),
            "value": rng.integers(0, 1000, N).astype(np.int32),
        }
    )


@pytest.fixture(scope="module")
def dim():
    rng = np.random.default_rng(1)
    return Table.from_numpy(
        {
            "key": np.arange(2000, dtype=np.int32),
            "weight": rng.integers(0, 100, 2000).astype(np.int32),
        }
    )


def test_merge_join(benchmark, fact, dim):
    result = benchmark.pedantic(
        lambda: merge_join(fact, dim, ["key"], ["key"]),
        rounds=1, iterations=1,
    )
    assert result.num_rows == N  # every fact key hits exactly one dim row


def test_ie_join(benchmark):
    rng = np.random.default_rng(2)
    left = Table.from_numpy(
        {
            "a": rng.integers(0, 1000, 1000).astype(np.int32),
            "b": rng.integers(0, 1000, 1000).astype(np.int32),
        }
    )
    right = Table.from_numpy(
        {
            "a": rng.integers(0, 1000, 1000).astype(np.int32),
            "b": rng.integers(0, 1000, 1000).astype(np.int32),
        }
    )
    result = benchmark.pedantic(
        lambda: ie_join(left, right, "a < a", "b > b"),
        rounds=1, iterations=1,
    )
    assert result.num_rows > 0


def test_window_functions(benchmark, fact):
    spec = WindowSpec.of(partition_by=["key"], order_by=["value DESC"])
    functions = [WindowFunction("row_number"), WindowFunction("rank")]
    result = benchmark.pedantic(
        lambda: window(fact, spec, functions), rounds=1, iterations=1
    )
    assert result.num_rows == N


def test_group_by(benchmark, fact):
    aggregates = [Aggregate("count"), Aggregate("sum", "value")]
    result = benchmark.pedantic(
        lambda: group_by(fact, ["key"], aggregates), rounds=1, iterations=1
    )
    assert result.num_rows == 2000
