"""Multi-core sort benchmark; writes BENCH_parallel.json.

Times the parallel executor of :mod:`repro.sort.parallel_exec` against
the serial kernel path on the acceptance workload (1M random int64
rows, in-memory) and on the external spill path (same data forced
through disk runs), for 2 and 4 workers:

* **in-memory** -- ``sort_table`` end-to-end, serial vs. parallel
  morsel-driven run generation + Merge-Path cascade merges,
* **external** -- ``ExternalSortOperator`` with a small run threshold so
  run generation dominates; the parallel side sorts each spilled run's
  key matrix across workers while the k-way merge stays shared.

Speedups scale with the physical core count of the machine running the
benchmark, so the JSON records ``cpu_count`` next to every number and
the results are *recorded, not gated*: a 1-core CI box will legitimately
show <1x (process pool overhead with no parallelism to buy it back), and
that is still a valid trajectory point.  Byte identity with the serial
output IS asserted on every configuration -- correctness does not vary
with hardware.

Results land in ``BENCH_parallel.json`` at the repository root.  Runs
standalone (``python benchmarks/bench_parallel.py [--rows N]``) or under
pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.sort.external import ExternalSortOperator  # noqa: E402
from repro.sort.operator import SortConfig, sort_table  # noqa: E402
from repro.sort.parallel_exec import parallel_platform_supported  # noqa: E402
from repro.table.chunk import chunk_table  # noqa: E402
from repro.table.table import Table  # noqa: E402
from repro.types.sortspec import SortSpec  # noqa: E402

OUTPUT = os.path.join(os.path.dirname(_SRC), "BENCH_parallel.json")

DEFAULT_ROWS = 1_000_000
WORKER_COUNTS = (2, 4)
EXTERNAL_RUN_ROWS = 125_000  # 8 spilled runs at the default row count
ROUNDS = 3  # best-of for every timed side


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _tables_equal(a: Table, b: Table) -> bool:
    if a.num_rows != b.num_rows:
        return False
    for name in a.schema.names:
        left, right = a.column(name), b.column(name)
        if left.data.tobytes() != right.data.tobytes():
            return False
        if (left.validity is None) != (right.validity is None):
            return False
        if left.validity is not None and not (
            left.validity == right.validity
        ).all():
            return False
    return True


def bench_in_memory(table: Table, spec: SortSpec, rows: int) -> dict:
    serial_s, serial = _best_of(lambda: sort_table(table, spec, SortConfig()))
    result = {
        "rows": rows,
        "serial_s": serial_s,
        "serial_rows_per_s": rows / serial_s,
        "workers": {},
    }
    for workers in WORKER_COUNTS:
        config = SortConfig(num_workers=workers)
        parallel_s, parallel = _best_of(
            lambda: sort_table(table, spec, config)
        )
        assert _tables_equal(serial, parallel), (
            f"parallel output diverged from serial at {workers} workers"
        )
        result["workers"][str(workers)] = {
            "seconds": parallel_s,
            "rows_per_s": rows / parallel_s,
            "speedup_vs_serial": serial_s / parallel_s,
        }
    return result


def _external_sort(table: Table, spec: SortSpec, num_workers: int) -> Table:
    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as spill_dir:
        operator = ExternalSortOperator(
            table.schema,
            spec,
            SortConfig(
                run_threshold=EXTERNAL_RUN_ROWS, num_workers=num_workers
            ),
            spill_directory=spill_dir,
        )
        try:
            for chunk in chunk_table(table, 16_384):
                operator.sink(chunk)
            return operator.finalize()
        finally:
            operator.close()


def bench_external(table: Table, spec: SortSpec, rows: int) -> dict:
    serial_s, serial = _best_of(lambda: _external_sort(table, spec, 1))
    result = {
        "rows": rows,
        "rows_per_run": EXTERNAL_RUN_ROWS,
        "serial_s": serial_s,
        "serial_rows_per_s": rows / serial_s,
        "workers": {},
    }
    for workers in WORKER_COUNTS:
        parallel_s, parallel = _best_of(
            lambda: _external_sort(table, spec, workers)
        )
        assert _tables_equal(serial, parallel), (
            f"external parallel output diverged at {workers} workers"
        )
        result["workers"][str(workers)] = {
            "seconds": parallel_s,
            "rows_per_s": rows / parallel_s,
            "speedup_vs_serial": serial_s / parallel_s,
        }
    return result


def main(rows: int = DEFAULT_ROWS) -> dict:
    if not parallel_platform_supported():
        print("platform lacks fork/POSIX shared memory; nothing to measure")
        return {}
    rng = np.random.default_rng(23)
    table = Table.from_numpy(
        {"v": rng.integers(-(1 << 62), 1 << 62, rows).astype(np.int64)}
    )
    spec = SortSpec.of("v")
    results = {
        "cpu_count": os.cpu_count(),
        "in_memory_int64": bench_in_memory(table, spec, rows),
        "external_int64": bench_external(table, spec, rows),
    }
    with open(OUTPUT, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    for name in ("in_memory_int64", "external_int64"):
        numbers = results[name]
        line = f"{name}: serial {numbers['serial_rows_per_s']:,.0f} rows/s"
        for workers, stats in numbers["workers"].items():
            line += (
                f", {workers}w {stats['rows_per_s']:,.0f} rows/s "
                f"({stats['speedup_vs_serial']:.2f}x)"
            )
        print(line)
    print(f"wrote {OUTPUT} (cpu_count={results['cpu_count']})")
    return results


def test_parallel_bench_smoke(capsys):
    if not parallel_platform_supported():
        import pytest

        pytest.skip("platform lacks fork/POSIX shared memory")
    with capsys.disabled():
        print()
        results = main(rows=200_000)
    # Byte identity is asserted inside main(); here only completeness.
    assert results["in_memory_int64"]["workers"].keys() == {"2", "4"}
    assert results["external_int64"]["workers"].keys() == {"2", "4"}
    assert os.path.exists(OUTPUT)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS)
    main(rows=parser.parse_args().rows)
