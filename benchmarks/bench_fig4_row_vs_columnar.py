"""Figure 4: row tuple/subsort vs columnar subsort, std::sort."""

from conftest import BENCH_DISTS, BENCH_KEYS, BENCH_SIZES
from repro.bench import figure4_row_vs_columnar


def test_figure4(report):
    result = report(
        figure4_row_vs_columnar, BENCH_SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: rows win once the data no longer fits the cache, for every
    # correlated distribution.
    large = [
        r
        for r in result.rows
        if r["rows"] == max(BENCH_SIZES)
        and r["keys"] == 4
        and r["distribution"] != "Random"
    ]
    assert all(r["row_tuple_relative"] > 1.0 for r in large)
