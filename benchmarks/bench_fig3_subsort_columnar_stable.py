"""Figure 3: subsort vs tuple-at-a-time, columnar, std::stable_sort."""

from conftest import BENCH_DISTS, BENCH_KEYS
from repro.bench import figure3_subsort_columnar_stable

SIZES = (64, 256, 1024)  # merge sort is the slowest instrumented algorithm


def test_figure3(report):
    result = report(
        figure3_subsort_columnar_stable, SIZES, BENCH_KEYS, BENCH_DISTS
    )
    # Paper: with merge sort the approaches are much closer; subsort is
    # often slightly slower.
    relatives = result.column_values("relative")
    assert min(relatives) > 0.5 and max(relatives) < 2.5
