"""Robustness: branch-miss ordering under a smarter predictor model."""

from repro.bench import robustness_predictors


def test_predictor_robustness(report):
    result = report(robustness_predictors, num_rows=1 << 11)
    for row in result.rows:
        # The qualitative ordering must hold under both predictor models.
        assert row["columnar_tuple"] > row["columnar_subsort"]
        assert row["columnar_subsort"] > 4 * row["radix"]
