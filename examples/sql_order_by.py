"""End-to-end SQL: the paper's benchmark-query methodology, live.

Run with::

    python examples/sql_order_by.py

Loads a synthetic TPC-DS ``catalog_sales`` slice into the mini vectorized
engine and demonstrates Section VII-A:

* a plain ORDER BY query through the full sort pipeline;
* ORDER BY + LIMIT getting rewritten into the specialized top-N operator;
* count(*) over a sorted subquery getting its sort *optimized away* --
  unless the subquery adds OFFSET 1, the paper's trick to keep every
  system honest.
"""

from repro.engine import Database
from repro.workloads.tpcds import catalog_sales


def main() -> None:
    db = Database()
    db.register("catalog_sales", catalog_sales(50_000, scale_factor=10))

    order_query = (
        "SELECT cs_item_sk FROM catalog_sales "
        "ORDER BY cs_warehouse_sk, cs_ship_mode_sk, cs_promo_sk, cs_quantity"
    )
    print("Plan of a plain ORDER BY over four key columns:")
    print(db.explain(order_query))
    result = db.execute(order_query)
    print(f"-> {result.num_rows} rows, first five: "
          f"{result.column('cs_item_sk').to_pylist()[:5]}\n")

    topn_query = (
        "SELECT cs_item_sk FROM catalog_sales "
        "ORDER BY cs_quantity DESC LIMIT 5"
    )
    print("ORDER BY ... LIMIT becomes a top-N operator:")
    print(db.explain(topn_query))
    print(f"-> {db.execute(topn_query).to_pydict()}\n")

    naive = (
        "SELECT count(*) FROM "
        "(SELECT cs_item_sk FROM catalog_sales ORDER BY cs_quantity) q"
    )
    print("count(*) over a sorted subquery: the optimizer DROPS the sort --")
    print(db.explain(naive))
    print()

    benchmark = (
        "SELECT count(*) FROM "
        "(SELECT cs_item_sk FROM catalog_sales "
        " ORDER BY cs_quantity OFFSET 1) q"
    )
    print("-- but OFFSET 1 outmaneuvers it (paper, Section VII-A):")
    print(db.explain(benchmark))
    print(f"-> {db.execute(benchmark).to_pydict()}")


if __name__ == "__main__":
    main()
