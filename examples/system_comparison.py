"""Compare the five systems of Section VII on the paper's workloads.

Run with::

    python examples/system_comparison.py

Models DuckDB, ClickHouse, MonetDB, HyPer, and Umbra sorting random
integers/floats (Figure 12), TPC-DS catalog_sales by 1-4 keys (Figure 13),
and TPC-DS customer by integer vs string keys (Figure 14), printing
modelled execution times and one phase breakdown.
"""

from repro.bench import (
    figure12_integers_floats,
    figure13_catalog_sales,
    figure14_customer,
)
from repro.systems import HardwareProfile, make_system
from repro.types.sortspec import SortSpec
from repro.workloads.tpcds import catalog_sales


def main() -> None:
    print(figure12_integers_floats().render())
    print()
    print(figure13_catalog_sales(scale_factors=(10,)).render())
    print()
    print(figure14_customer().render())

    # Peek inside one run: DuckDB's pipeline phases on catalog_sales.
    profile = HardwareProfile().scaled(100)
    table = catalog_sales(100_000, 10)
    spec = SortSpec.of("cs_warehouse_sk", "cs_ship_mode_sk")
    run = make_system("DuckDB", profile).benchmark_query(
        table, spec, ("cs_item_sk",)
    )
    print("\nDuckDB phase breakdown (Figure 11 pipeline), "
          f"total {run.seconds * 1000:.2f} ms:")
    for name, cycles in run.phases:
        print(f"  {name:>16s}: {profile.seconds(cycles) * 1000:8.3f} ms")


if __name__ == "__main__":
    main()
