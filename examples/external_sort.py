"""Out-of-core sorting: the paper's future-work direction, working.

Run with::

    python examples/external_sort.py

Sorts more data than the configured in-memory budget by spilling sorted
runs to disk in the unified row format and stream-merging them back --
"graceful degradation as the data size exceeds the memory limit"
(paper, Section IX).
"""

import time

import numpy as np

from repro import SortConfig, SortSpec, Table
from repro.sort.external import ExternalSortOperator
from repro.table.chunk import chunk_table


def main() -> None:
    rng = np.random.default_rng(7)
    n = 200_000
    table = Table.from_numpy(
        {
            "key": rng.integers(0, 1 << 24, n).astype(np.int32),
            "payload": np.arange(n, dtype=np.int64),
        }
    )
    spec = SortSpec.of("key")

    # Pretend memory only holds 50k rows: every full buffer becomes a
    # sorted run on disk.
    config = SortConfig(run_threshold=50_000)
    operator = ExternalSortOperator(table.schema, spec, config)

    start = time.perf_counter()
    for chunk in chunk_table(table):
        operator.sink(chunk)
    print(
        f"Spilled {operator.spilled_runs} sorted runs, "
        f"{operator.spilled_bytes / 1e6:.1f} MB on disk"
    )
    result = operator.finalize()
    elapsed = time.perf_counter() - start

    assert result.is_sorted_by(spec)
    assert result.num_rows == n
    print(f"Merged back into one sorted table of {n} rows "
          f"in {elapsed:.2f}s (spill files cleaned up)")


if __name__ == "__main__":
    main()
