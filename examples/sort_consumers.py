"""Everything downstream of the sort: joins, windows, GROUP BY, compression.

Run with::

    python examples/sort_consumers.py

The paper motivates fast relational sorting through its consumers:
merge joins and inequality joins (Sections II/V), the WINDOW operator
(Section I), blocking aggregates (Section IX), and the implicit benefits
of sorted data -- run-length encoding and zone maps (Section II).  This
example exercises each one on top of the reproduction's sort operator.
"""

import numpy as np

from repro import Table
from repro.aggregate import Aggregate, group_by
from repro.analysis import sorting_benefit
from repro.engine import Database
from repro.join import ie_join, merge_join
from repro.table.column import ColumnVector
from repro.window import WindowFunction, WindowSpec, window


def main() -> None:
    rng = np.random.default_rng(42)

    orders = Table.from_numpy(
        {
            "customer_id": rng.integers(0, 200, 2000).astype(np.int32),
            "amount": rng.integers(1, 500, 2000).astype(np.int32),
        }
    )
    customers = Table.from_numpy(
        {
            "customer_id": np.arange(200, dtype=np.int32),
            "segment": rng.integers(0, 5, 200).astype(np.int32),
        }
    )

    print("— merge join (sort both sides, merge with memcmp on keys):")
    joined = merge_join(orders, customers, ["customer_id"], ["customer_id"])
    print(f"  {orders.num_rows} orders x {customers.num_rows} customers "
          f"-> {joined.num_rows} joined rows\n")

    print("— inequality join (IEJoin over two predicates):")
    promos = Table.from_pydict(
        {"min_amount": [100, 300], "max_amount": [250, 500], "promo": [1, 2]}
    )
    eligible = ie_join(
        orders.slice(0, 50), promos, "amount >= min_amount",
        "amount <= max_amount",
    )
    print(f"  50 orders x 2 promo bands -> {eligible.num_rows} eligible pairs\n")

    print("— window functions (rank customers' orders by amount):")
    ranked = window(
        orders.slice(0, 1000),
        WindowSpec.of(partition_by=["customer_id"], order_by=["amount DESC"]),
        [WindowFunction("row_number"), WindowFunction("running_sum", "amount")],
    )
    top = ranked.slice(0, 3)
    print(f"  first partition rows: {top.to_pydict()}\n")

    print("— SQL GROUP BY (sort-based aggregation):")
    db = Database()
    db.register("orders", orders)
    result = db.execute(
        "SELECT customer_id, count(*), sum(amount) FROM orders "
        "GROUP BY customer_id ORDER BY sum_amount DESC LIMIT 3"
    )
    print(f"  top-3 customers by revenue: {result.to_pydict()}\n")

    print("— why systems also sort implicitly (Section II):")
    column = ColumnVector.from_numpy(
        rng.integers(0, 50, 100_000).astype(np.int32)
    )
    benefit = sorting_benefit(column, 10, 12, block_size=1024)
    print(f"  RLE compression:   {benefit.rle_ratio_unsorted:6.2f}x unsorted "
          f"-> {benefit.rle_ratio_sorted:7.1f}x sorted")
    print(f"  zone-map scan:     {benefit.zone_selectivity_unsorted:6.1%} of "
          f"blocks unsorted -> {benefit.zone_selectivity_sorted:6.1%} sorted")


if __name__ == "__main__":
    main()
