"""Figure 7, byte by byte: how key normalization encodes a sort order.

Run with::

    python examples/key_normalization_demo.py

Reproduces the paper's worked example -- ORDER BY c_birth_country DESC,
c_birth_year ASC -- and prints the actual normalized key bytes so you can
see the padding, the byte swap, the sign-bit flip, and the DESC inversion.
"""

from repro import Table
from repro.keys import decode_key_row, normalize_keys
from repro.types.sortspec import SortSpec


def hex_bytes(raw: bytes) -> str:
    return " ".join(f"{b:02x}" for b in raw)


def main() -> None:
    table = Table.from_pydict(
        {
            "c_birth_country": ["NETHERLANDS", "GERMANY", None],
            "c_birth_year": [1992, 1968, 1955],
        }
    )
    spec = SortSpec.of(
        "c_birth_country DESC NULLS LAST", "c_birth_year ASC NULLS FIRST"
    )
    keys = normalize_keys(table, spec, include_row_id=False)
    layout = keys.layout

    print(f"ORDER BY {spec}")
    print(f"key layout: {layout.key_width} bytes per row")
    for segment in layout.segments:
        print(
            f"  {segment.key.column}: offset {segment.offset}, "
            f"1 NULL byte + {segment.value_width} value bytes"
        )
    print()
    for i in range(table.num_rows):
        row = table.row(i)
        print(f"row {row}:")
        print(f"  key = {hex_bytes(keys.key_bytes(i))}")
        print(f"  decodes back to {decode_key_row(keys.matrix[i], layout)}")

    order = sorted(range(table.num_rows), key=keys.key_bytes)
    print("\nmemcmp order of the keys (= the query's ORDER BY):")
    for i in order:
        print("  ", table.row(i))
    # GERMANY is padded with 0x00 to NETHERLANDS' length; DESC inverts the
    # bytes, so NETHERLANDS sorts first; the NULL country sorts last via
    # its indicator byte -- exactly the paper's Figure 7.


if __name__ == "__main__":
    main()
