"""Reproduce the paper's micro-benchmark study on the simulated machine.

Run with::

    python examples/microbench_repro.py [--full]

Executes the core micro-benchmarks (Tables II/III, Figures 4/6/8/9/10) at
a small scale and prints the same series the paper reports: DSM vs NSM,
static vs dynamic comparators, normalized keys, and radix vs pdqsort --
with simulated L1 misses and branch mispredictions standing in for the
paper's ``perf`` counters.
"""

import sys

from repro.bench import (
    figure4_row_vs_columnar,
    figure6_dynamic_comparator,
    figure8_normalized_keys,
    figure9_radix_vs_pdqsort,
    figure10_counters_radix_pdq,
    table2_counters_columnar,
    table3_counters_row,
)
from repro.workloads.distributions import (
    correlated_distribution,
    random_distribution,
)


def main(full: bool = False) -> None:
    if full:
        sizes = (64, 256, 1024, 4096)
        keys = (1, 2, 3, 4)
        dists = (
            random_distribution(),
            correlated_distribution(0.0),
            correlated_distribution(0.5),
            correlated_distribution(1.0),
        )
        counter_rows = 1 << 12
    else:
        sizes = (64, 256, 1024)
        keys = (1, 4)
        dists = (random_distribution(), correlated_distribution(0.5))
        counter_rows = 1 << 10

    print(table2_counters_columnar(num_rows=counter_rows).render())
    print()
    print(table3_counters_row(num_rows=counter_rows).render())
    print()
    print(figure4_row_vs_columnar(sizes, keys, dists).render())
    print()
    print(figure6_dynamic_comparator(sizes, keys, dists).render())
    print()
    print(figure8_normalized_keys(sizes, keys, dists).render())
    print()
    print(figure9_radix_vs_pdqsort(sizes, keys, dists).render())
    print()
    print(figure10_counters_radix_pdq(num_rows=counter_rows).render())


if __name__ == "__main__":
    main(full="--full" in sys.argv)
