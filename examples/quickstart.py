"""Quickstart: sort a relational table the way the paper's DuckDB does.

Run with::

    python examples/quickstart.py

Builds a small table with strings, integers, and NULLs, sorts it with the
normalized-key row-based sort operator, and shows what happened under the
hood (algorithm choice, runs, merge work).
"""

from repro import SortConfig, SortSpec, Table
from repro.sort.operator import SortOperator
from repro.table.chunk import chunk_table


def main() -> None:
    # The paper's Section II example: customers ordered by country
    # (descending, NULLs last) and birth year (ascending, NULLs first).
    table = Table.from_pydict(
        {
            "c_birth_country": [
                "NETHERLANDS",
                "GERMANY",
                None,
                "GERMANY",
                "BELGIUM",
                "NETHERLANDS",
            ],
            "c_birth_year": [1992, 1968, 1990, None, 1955, None],
            "c_customer_sk": [1, 2, 3, 4, 5, 6],
        }
    )
    spec = SortSpec.of(
        "c_birth_country DESC NULLS LAST",
        "c_birth_year ASC NULLS FIRST",
    )

    print("Input:")
    for row in table.iter_rows():
        print("  ", row)

    # Drive the operator the way a query engine would: sink vector
    # chunks, then finalize.  (repro.sort_table wraps exactly this.)
    operator = SortOperator(table.schema, spec, SortConfig())
    for chunk in chunk_table(table):
        operator.sink(chunk)
    result = operator.finalize()

    print(f"\nSorted by: {spec}")
    for row in result.iter_rows():
        print("  ", row)

    stats = operator.stats
    print("\nWhat the pipeline did (paper, Figure 11):")
    print(f"  rows sorted:        {stats.rows_sorted}")
    print(f"  sorted runs:        {stats.runs_generated}")
    print(f"  run-sort algorithm: {stats.algorithm} "
          "(pdqsort because a key column is VARCHAR)")
    print(f"  merge rounds:       {stats.merge_rounds}")
    print(f"  string prefixes exact: {stats.prefix_exact}")

    assert result.is_sorted_by(spec)
    print("\nOK: output verified against the ORDER BY semantics.")


if __name__ == "__main__":
    main()
