"""The subsort approach: sort one key column at a time.

The paper's second comparison strategy (Section IV): sort all rows by the
first key column with a *branchless single-column comparator*, identify
runs of tied tuples, and recursively sort each run by the next column.
Compared to tuple-at-a-time this trades extra passes over the data for a
comparison function with no branches and random access in only one column
at a time.

Works on both the columnar and the row layout by constructing a fresh
single-column adapter per (range, column) pass.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.simsort.adapters import ColumnarAdapter, RowAdapter
from repro.simsort.layouts import ColumnarLayout, RowLayout

__all__ = ["subsort"]

Algorithm = Callable[[object], None]


class _RangeView:
    """Restrict an adapter to [begin, end) by offsetting positions.

    The instrumented algorithms sort positions 0..n; this view maps them
    into the tied range being subsorted.
    """

    __slots__ = ("_seq", "_begin", "n")

    def __init__(self, seq, begin: int, end: int) -> None:
        self._seq = seq
        self._begin = begin
        self.n = end - begin

    def less(self, i, j, site=None):
        return self._seq.less(self._begin + i, self._begin + j, site)

    def swap(self, i, j):
        self._seq.swap(self._begin + i, self._begin + j)

    def move(self, dst, src):
        self._seq.move(self._begin + dst, self._begin + src)

    def save_temp(self, i):
        self._seq.save_temp(self._begin + i)

    def store_temp(self, i):
        self._seq.store_temp(self._begin + i)

    def temp_less(self, i, site=None):
        return self._seq.temp_less(self._begin + i, site)

    def less_temp(self, i, site=None):
        return self._seq.less_temp(self._begin + i, site)

    def ensure_aux(self):
        self._seq.ensure_aux()

    def less_between(self, aux_a, i, aux_b, j, site=None):
        return self._seq.less_between(
            aux_a, self._begin + i, aux_b, self._begin + j, site
        )

    def move_between(self, dst_aux, dst, src_aux, src):
        self._seq.move_between(
            dst_aux, self._begin + dst, src_aux, self._begin + src
        )


def _adapter_for(layout, column: int, dynamic: bool):
    if isinstance(layout, ColumnarLayout):
        return ColumnarAdapter(layout, columns=(column,), dynamic=dynamic)
    if isinstance(layout, RowLayout):
        return RowAdapter(layout, columns=(column,), dynamic=dynamic)
    raise SimulationError(f"subsort does not support {type(layout).__name__}")


def _value_at(layout, column: int, position: int) -> int:
    """Charged read of the current value of ``column`` at ``position``."""
    if isinstance(layout, ColumnarLayout):
        row = layout.read_index(position)
        return layout.read_value(column, row)
    return layout.read_value(column, position)


def subsort(
    layout,
    algorithm: Algorithm,
    dynamic: bool = False,
) -> None:
    """Sort a columnar or row layout with the subsort approach.

    ``algorithm`` is one of the instrumented adapter sorts (introsort,
    merge sort, pdqsort).  Tie detection between passes re-scans the
    sorted range, which is the extra cache traffic the paper observes for
    subsort in Table III.
    """
    if layout.num_rows < 2:
        return
    _subsort_range(layout, algorithm, dynamic, 0, layout.num_rows, 0)


def _subsort_range(
    layout,
    algorithm: Algorithm,
    dynamic: bool,
    begin: int,
    end: int,
    column: int,
) -> None:
    adapter = _adapter_for(layout, column, dynamic)
    view = _RangeView(adapter, begin, end)
    algorithm(view)
    if column + 1 >= layout.num_columns:
        return
    # Identify runs of tuples tied on this column and recurse.  The scan
    # reads each adjacent pair once and branches on equality.
    machine = layout.machine
    run_start = begin
    previous = _value_at(layout, column, begin)
    for position in range(begin + 1, end):
        current = _value_at(layout, column, position)
        tied = current == previous
        machine.branch(("tie-scan", column), tied)
        if not tied:
            if position - run_start > 1:
                _subsort_range(
                    layout, algorithm, dynamic, run_start, position, column + 1
                )
            run_start = position
        previous = current
    if end - run_start > 1:
        _subsort_range(layout, algorithm, dynamic, run_start, end, column + 1)
