"""Sortable-sequence adapters: layouts + comparison strategies.

An adapter exposes the element interface the instrumented algorithms in
:mod:`repro.simsort.algorithms` sort through::

    less(i, j, site)   a[i] < a[j]; charges the comparator's accesses,
                       its internal tie branches, any dynamic-call
                       overhead, and (if site is given) the algorithm's
                       data-dependent branch on the outcome
    swap(i, j)         exchange elements (charged per layout physics)
    move(dst, src)     a[dst] = a[src]
    save_temp(i) / store_temp(i) / temp_less(i) / less_temp(i)
                       the insertion-sort / partition temporary
    less_between / move_between
                       buffer-aware variants for merge sort (False = main
                       buffer, True = auxiliary buffer)

The three comparator dimensions of the paper map to constructor arguments:

* *layout* -- columnar (DSM), row (NSM), or normalized keys;
* *columns* -- all key columns (tuple-at-a-time) or one (subsort pass);
* *dynamic* -- charge a function-pointer call per value comparison, the
  interpreted-engine overhead of Section V-B.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError
from repro.simsort.layouts import (
    ColumnarLayout,
    NormalizedKeyLayout,
    RowLayout,
)

__all__ = ["ColumnarAdapter", "RowAdapter", "NormalizedKeyAdapter"]


class _AdapterBase:
    """Shared branch/compare bookkeeping."""

    def __init__(self, machine, num_rows: int) -> None:
        self.machine = machine
        self.n = num_rows

    def _outcome_branch(self, site: object, result: bool) -> bool:
        """The algorithm's branch on a comparison result (if any)."""
        self.machine.compare()
        if site is not None:
            self.machine.branch(site, result)
        return result


class ColumnarAdapter(_AdapterBase):
    """Sorts DSM data by permuting the row-index array.

    Elements are positions in ``idxs``; comparing two elements loads both
    indices and then the referenced column values -- the random access
    pattern of the paper's drawback 1.
    """

    def __init__(
        self,
        layout: ColumnarLayout,
        columns: Sequence[int] | None = None,
        dynamic: bool = False,
    ) -> None:
        super().__init__(layout.machine, layout.num_rows)
        self.layout = layout
        self.columns = tuple(
            columns if columns is not None else range(layout.num_columns)
        )
        if not self.columns:
            raise SimulationError("need at least one comparison column")
        self.dynamic = dynamic
        self._temp_row: int | None = None

    # -- comparisons ---------------------------------------------------- #

    def _compare_rows(self, row_a: int, row_b: int) -> bool:
        """a < b over the configured columns, charging tie branches."""
        layout = self.layout
        multi = len(self.columns) > 1
        for column in self.columns:
            if self.dynamic:
                layout.machine.call()
            value_a = layout.read_value(column, row_a)
            value_b = layout.read_value(column, row_b)
            if value_a != value_b:
                if multi:
                    layout.machine.branch(("tie", column), False)
                return value_a < value_b
            if multi:
                layout.machine.branch(("tie", column), True)
        return False

    def less(self, i: int, j: int, site: object = None) -> bool:
        row_a = self.layout.read_index(i)
        row_b = self.layout.read_index(j)
        return self._outcome_branch(site, self._compare_rows(row_a, row_b))

    # -- movement -------------------------------------------------------- #

    def swap(self, i: int, j: int) -> None:
        layout = self.layout
        row_i = layout.read_index(i)
        row_j = layout.read_index(j)
        layout.write_index(i, row_j)
        layout.write_index(j, row_i)
        self.machine.swap()

    def move(self, dst: int, src: int) -> None:
        row = self.layout.read_index(src)
        self.layout.write_index(dst, row)
        self.machine.swap()

    # -- temp (register-resident index) ---------------------------------- #

    def save_temp(self, position: int) -> None:
        self._temp_row = self.layout.read_index(position)

    def store_temp(self, position: int) -> None:
        if self._temp_row is None:
            raise SimulationError("no temp saved")
        self.layout.write_index(position, self._temp_row)
        self.machine.swap()

    def temp_less(self, position: int, site: object = None) -> bool:
        row_b = self.layout.read_index(position)
        return self._outcome_branch(
            site, self._compare_rows(self._temp_row, row_b)
        )

    def less_temp(self, position: int, site: object = None) -> bool:
        row_a = self.layout.read_index(position)
        return self._outcome_branch(
            site, self._compare_rows(row_a, self._temp_row)
        )

    # -- merge-sort buffer interface -------------------------------------- #

    def ensure_aux(self) -> None:
        self.layout.ensure_aux()

    def less_between(
        self, aux_a: bool, i: int, aux_b: bool, j: int, site: object = None
    ) -> bool:
        row_a = self.layout.read_index_from(aux_a, i)
        row_b = self.layout.read_index_from(aux_b, j)
        return self._outcome_branch(site, self._compare_rows(row_a, row_b))

    def move_between(
        self, dst_aux: bool, dst: int, src_aux: bool, src: int
    ) -> None:
        row = self.layout.read_index_from(src_aux, src)
        self.layout.write_index_to(dst_aux, dst, row)
        self.machine.swap()


class RowAdapter(_AdapterBase):
    """Sorts NSM rows: comparisons are cache-local, movement is physical."""

    def __init__(
        self,
        layout: RowLayout,
        columns: Sequence[int] | None = None,
        dynamic: bool = False,
    ) -> None:
        super().__init__(layout.machine, layout.num_rows)
        self.layout = layout
        self.columns = tuple(
            columns if columns is not None else range(layout.num_columns)
        )
        if not self.columns:
            raise SimulationError("need at least one comparison column")
        self.dynamic = dynamic

    # -- comparisons ---------------------------------------------------- #

    def less(self, i: int, j: int, site: object = None) -> bool:
        layout = self.layout
        multi = len(self.columns) > 1
        result = False
        for column in self.columns:
            if self.dynamic:
                layout.machine.call()
            value_a = layout.read_value(column, i)
            value_b = layout.read_value(column, j)
            if value_a != value_b:
                if multi:
                    layout.machine.branch(("tie", column), False)
                result = value_a < value_b
                break
            if multi:
                layout.machine.branch(("tie", column), True)
        return self._outcome_branch(site, result)

    # -- movement -------------------------------------------------------- #

    def swap(self, i: int, j: int) -> None:
        self.layout.swap_rows(i, j)
        self.machine.swap()

    def move(self, dst: int, src: int) -> None:
        self.layout.copy_row(dst, src)
        self.machine.swap()

    # -- temp ------------------------------------------------------------- #

    def save_temp(self, position: int) -> None:
        self.layout.save_temp(position)

    def store_temp(self, position: int) -> None:
        self.layout.store_temp(position)
        self.machine.swap()

    def _compare_temp(self, position: int, temp_first: bool) -> bool:
        layout = self.layout
        multi = len(self.columns) > 1
        for column in self.columns:
            if self.dynamic:
                layout.machine.call()
            temp_value = layout.temp_value(column)
            elem_value = layout.read_value(column, position)
            value_a, value_b = (
                (temp_value, elem_value)
                if temp_first
                else (elem_value, temp_value)
            )
            if value_a != value_b:
                if multi:
                    layout.machine.branch(("tie", column), False)
                return value_a < value_b
            if multi:
                layout.machine.branch(("tie", column), True)
        return False

    def temp_less(self, position: int, site: object = None) -> bool:
        return self._outcome_branch(
            site, self._compare_temp(position, temp_first=True)
        )

    def less_temp(self, position: int, site: object = None) -> bool:
        return self._outcome_branch(
            site, self._compare_temp(position, temp_first=False)
        )

    # -- merge-sort buffer interface -------------------------------------- #

    def ensure_aux(self) -> None:
        self.layout.ensure_aux()

    def less_between(
        self, aux_a: bool, i: int, aux_b: bool, j: int, site: object = None
    ) -> bool:
        layout = self.layout
        multi = len(self.columns) > 1
        result = False
        for column in self.columns:
            if self.dynamic:
                layout.machine.call()
            value_a = layout.read_value_from(aux_a, column, i)
            value_b = layout.read_value_from(aux_b, column, j)
            if value_a != value_b:
                if multi:
                    layout.machine.branch(("tie", column), False)
                result = value_a < value_b
                break
            if multi:
                layout.machine.branch(("tie", column), True)
        return self._outcome_branch(site, result)

    def move_between(
        self, dst_aux: bool, dst: int, src_aux: bool, src: int
    ) -> None:
        self.layout.copy_row_between(dst_aux, dst, src_aux, src)
        self.machine.swap()


class NormalizedKeyAdapter(_AdapterBase):
    """Sorts normalized keys with memcmp comparisons.

    There is no per-column interpretation and no tie branch: the entire
    multi-column comparison is one branch-free byte comparison, which is
    precisely why the paper proposes normalized keys for interpreted
    engines (Section VI-A).
    """

    def __init__(self, layout: NormalizedKeyLayout) -> None:
        super().__init__(layout.machine, layout.num_rows)
        self.layout = layout

    def less(self, i: int, j: int, site: object = None) -> bool:
        return self._outcome_branch(site, self.layout.memcmp_less(i, j))

    def swap(self, i: int, j: int) -> None:
        self.layout.swap_keys(i, j)
        self.machine.swap()

    def move(self, dst: int, src: int) -> None:
        self.layout.copy_key(dst, src)
        self.machine.swap()

    def save_temp(self, position: int) -> None:
        self.layout.save_temp(position)

    def store_temp(self, position: int) -> None:
        self.layout.store_temp(position)
        self.machine.swap()

    def temp_less(self, position: int, site: object = None) -> bool:
        self.machine.instr(3)
        result = self.layout.temp_bytes() < self.layout.key_bytes(position)
        return self._outcome_branch(site, result)

    def less_temp(self, position: int, site: object = None) -> bool:
        self.machine.instr(3)
        result = self.layout.key_bytes(position) < self.layout.temp_bytes()
        return self._outcome_branch(site, result)

    # -- merge-sort buffer interface -------------------------------------- #

    def ensure_aux(self) -> None:
        self.layout.ensure_aux()

    def _bytes_from(self, aux: bool, position: int) -> bytes:
        layout = self.layout
        if aux:
            self.machine.read(layout.aux_address(position), layout.key_width)
            return layout.aux[position].tobytes()
        return layout.key_bytes(position)

    def less_between(
        self, aux_a: bool, i: int, aux_b: bool, j: int, site: object = None
    ) -> bool:
        self.machine.instr(3)
        result = self._bytes_from(aux_a, i) < self._bytes_from(aux_b, j)
        return self._outcome_branch(site, result)

    def move_between(
        self, dst_aux: bool, dst: int, src_aux: bool, src: int
    ) -> None:
        self.layout.copy_key_between(dst_aux, dst, src_aux, src)
        self.machine.swap()
