"""The micro-benchmark harness: run one configuration, get perf counters.

This is the reproduction's equivalent of the paper's C++ micro-benchmark
binary plus ``perf stat``: pick a layout (columnar / row / normalized),
an approach (tuple-at-a-time / subsort / memcmp / radix), a sorting
algorithm (introsort / merge sort / pdqsort / radix), and a comparator
binding (static / dynamic); run it on a fresh simulated machine; and get
back the counter deltas and simulated cycles.

Every run verifies the produced order against numpy before returning, so a
result can never come from a broken sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.cache import CacheHierarchy
from repro.sim.counters import PerfCounters
from repro.sim.machine import CostModel, Machine
from repro.simsort.adapters import (
    ColumnarAdapter,
    NormalizedKeyAdapter,
    RowAdapter,
)
from repro.simsort.algorithms import (
    duckdb_radix_sort,
    introsort_adapter,
    lsd_radix_sort,
    merge_sort_adapter,
    msd_radix_sort,
    pdqsort_adapter,
)
from repro.simsort.layouts import (
    ColumnarLayout,
    NormalizedKeyLayout,
    RowLayout,
)
from repro.simsort.subsort import subsort

__all__ = ["MicroResult", "run_micro", "APPROACHES", "ALGORITHMS"]

APPROACHES = ("tuple", "subsort", "memcmp", "radix", "radix-lsd", "radix-msd")
ALGORITHMS = ("introsort", "mergesort", "pdqsort")

_ALGORITHM_FNS = {
    "introsort": introsort_adapter,
    "mergesort": merge_sort_adapter,
    "pdqsort": pdqsort_adapter,
}


@dataclass
class MicroResult:
    """Outcome of one micro-benchmark run."""

    layout: str
    approach: str
    algorithm: str
    dynamic: bool
    num_rows: int
    num_columns: int
    counters: PerfCounters
    cycles: float
    order: np.ndarray

    @property
    def label(self) -> str:
        binding = "dynamic" if self.dynamic else "static"
        return (
            f"{self.layout}/{self.approach}/{self.algorithm}[{binding}] "
            f"n={self.num_rows} k={self.num_columns}"
        )


def _expected_stable_order(values: np.ndarray) -> np.ndarray:
    """numpy's ground truth: stable lexicographic argsort of the rows."""
    # np.lexsort sorts by the *last* key first; reverse column order.
    return np.lexsort(tuple(values[:, c] for c in range(values.shape[1] - 1, -1, -1)))


def _verify(values: np.ndarray, order: np.ndarray, stable: bool) -> None:
    n = values.shape[0]
    if sorted(order.tolist()) != list(range(n)):
        raise SimulationError("sort produced an invalid permutation")
    permuted = values[order]
    rows = [tuple(int(v) for v in permuted[i]) for i in range(n)]
    for a, b in zip(rows, rows[1:]):
        if b < a:
            raise SimulationError("sort produced an unsorted order")
    if stable:
        expected = _expected_stable_order(values)
        if not np.array_equal(order, expected):
            raise SimulationError("stable sort did not preserve input order")


def run_micro(
    values: np.ndarray,
    layout: str,
    approach: str,
    algorithm: str = "introsort",
    dynamic: bool = False,
    machine: Machine | None = None,
    cache: CacheHierarchy | None = None,
    cost_model: CostModel | None = None,
    verify: bool = True,
) -> MicroResult:
    """Run one (layout, approach, algorithm) configuration.

    Args:
        values: ``(n, k)`` uint32 key matrix (see
            :func:`repro.workloads.distributions.generate_key_columns`).
        layout: ``"columnar"``, ``"row"``, or ``"normalized"``.
        approach: ``"tuple"`` (tuple-at-a-time comparator), ``"subsort"``,
            ``"memcmp"`` (normalized keys + comparison sort), ``"radix"``
            (DuckDB's LSD/MSD choice), ``"radix-lsd"``, ``"radix-msd"``.
        algorithm: comparison sort to use where applicable.
        dynamic: bind the comparator through a per-comparison function
            call (the interpreted-engine overhead of Section V-B).
        machine: reuse an existing machine (default: fresh scaled machine).
        verify: check the resulting order against numpy (on by default).
    """
    values = np.ascontiguousarray(values, dtype=np.uint32)
    if values.ndim != 2:
        raise SimulationError("values must be (n, k)")
    if algorithm not in _ALGORITHM_FNS:
        raise SimulationError(f"unknown algorithm {algorithm!r}")
    machine = machine or Machine(caches=cache, cost_model=cost_model)
    algorithm_fn = _ALGORITHM_FNS[algorithm]
    stable = False

    if layout == "columnar":
        data = ColumnarLayout(machine, values)
        with machine.measure() as region:
            if approach == "tuple":
                algorithm_fn(ColumnarAdapter(data, dynamic=dynamic))
            elif approach == "subsort":
                subsort(data, algorithm_fn, dynamic=dynamic)
            else:
                raise SimulationError(
                    f"columnar layout does not support approach {approach!r}"
                )
    elif layout == "row":
        data = RowLayout(machine, values)
        with machine.measure() as region:
            if approach == "tuple":
                algorithm_fn(RowAdapter(data, dynamic=dynamic))
            elif approach == "subsort":
                subsort(data, algorithm_fn, dynamic=dynamic)
            else:
                raise SimulationError(
                    f"row layout does not support approach {approach!r}"
                )
    elif layout == "normalized":
        data = NormalizedKeyLayout(machine, values)
        stable = approach.startswith("radix")
        with machine.measure() as region:
            if approach == "memcmp":
                algorithm_fn(NormalizedKeyAdapter(data))
                stable = True  # row-id suffix makes memcmp order stable
            elif approach == "radix":
                duckdb_radix_sort(data)
            elif approach == "radix-lsd":
                lsd_radix_sort(data)
            elif approach == "radix-msd":
                msd_radix_sort(data)
            else:
                raise SimulationError(
                    f"normalized layout does not support approach {approach!r}"
                )
    else:
        raise SimulationError(f"unknown layout {layout!r}")

    order = data.extract_order()
    if verify and len(values):
        # Merge sort is stable on every layout.
        _verify(values, order, stable or algorithm == "mergesort")
    assert region.counters is not None
    return MicroResult(
        layout=layout,
        approach=approach,
        algorithm=algorithm,
        dynamic=dynamic,
        num_rows=values.shape[0],
        num_columns=values.shape[1],
        counters=region.counters,
        cycles=float(region.cycles),
        order=order,
    )
