"""Instrumented data layouts for the micro-benchmarks.

These are the three physical representations the paper's micro-benchmarks
sort, each backed by the simulated machine so that every value access is
classified by the cache simulator:

* :class:`ColumnarLayout` (DSM) -- one array per key column plus an array
  of row indices; sorting permutes the *indices*, the column data never
  moves (the paper's drawback 3).
* :class:`RowLayout` (NSM) -- an array of ``OrderKey``-style structs: the
  key values of a row plus its row id, contiguous in memory; sorting moves
  whole rows.
* :class:`NormalizedKeyLayout` -- fixed-width order-preserving byte strings
  (big-endian u32 concatenation plus a row-id suffix, the no-NULL special
  case of :mod:`repro.keys`); compared with memcmp, sortable by radix.

Each layout verifies its final order against numpy's argsort via
``extract_order`` in the tests, so the instrumentation cannot silently
corrupt the sort.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.machine import Machine

__all__ = ["ColumnarLayout", "RowLayout", "NormalizedKeyLayout"]

VALUE_WIDTH = 4
"""Micro-benchmark keys are unsigned 32-bit integers (paper, Section III)."""

INDEX_WIDTH = 4
"""Row indices / row ids are 32-bit (inputs are < 2^32 rows)."""


def _as_u32_matrix(values: np.ndarray) -> np.ndarray:
    if values.ndim != 2:
        raise SimulationError("key values must be an (n, columns) matrix")
    return np.ascontiguousarray(values, dtype=np.uint32)


class ColumnarLayout:
    """DSM: per-column value arrays, sorted through an index array."""

    def __init__(self, machine: Machine, values: np.ndarray) -> None:
        values = _as_u32_matrix(values)
        self.machine = machine
        self.num_rows, self.num_columns = values.shape
        self.columns = [values[:, c].copy() for c in range(self.num_columns)]
        self.indices = np.arange(self.num_rows, dtype=np.int64)
        n = max(self.num_rows, 1)
        self.column_regions = [
            machine.arena.alloc(n * VALUE_WIDTH, f"col{c}")
            for c in range(self.num_columns)
        ]
        self.index_region = machine.arena.alloc(n * INDEX_WIDTH, "idxs")
        self._aux_indices: np.ndarray | None = None
        self._aux_region = None

    def ensure_aux(self) -> None:
        """Allocate the merge-sort auxiliary index array."""
        if self._aux_indices is None:
            self._aux_indices = np.zeros(self.num_rows, dtype=np.int64)
            self._aux_region = self.machine.arena.alloc(
                max(self.num_rows, 1) * INDEX_WIDTH, "idxs-aux"
            )

    def _buffer(self, aux: bool) -> tuple[np.ndarray, int]:
        if aux:
            if self._aux_indices is None:
                raise SimulationError("call ensure_aux() first")
            return self._aux_indices, self._aux_region.base
        return self.indices, self.index_region.base

    def read_index_from(self, aux: bool, position: int) -> int:
        array, base = self._buffer(aux)
        self.machine.read(base + position * INDEX_WIDTH, INDEX_WIDTH)
        return int(array[position])

    def write_index_to(self, aux: bool, position: int, row: int) -> None:
        array, base = self._buffer(aux)
        self.machine.write(base + position * INDEX_WIDTH, INDEX_WIDTH)
        array[position] = row

    # -- machine-charged primitives ------------------------------------ #

    def read_index(self, position: int) -> int:
        """Load idxs[position]."""
        self.machine.read(
            self.index_region.base + position * INDEX_WIDTH, INDEX_WIDTH
        )
        return int(self.indices[position])

    def write_index(self, position: int, row: int) -> None:
        """Store idxs[position] = row."""
        self.machine.write(
            self.index_region.base + position * INDEX_WIDTH, INDEX_WIDTH
        )
        self.indices[position] = row

    def read_value(self, column: int, row: int) -> int:
        """Load cols[column][row] -- the random access DSM sorting causes."""
        self.machine.read(
            self.column_regions[column].base + row * VALUE_WIDTH, VALUE_WIDTH
        )
        return int(self.columns[column][row])

    # -- verification helpers (not charged) ----------------------------- #

    def extract_order(self) -> np.ndarray:
        return self.indices.copy()

    def key_tuple(self, position: int) -> tuple[int, ...]:
        row = int(self.indices[position])
        return tuple(int(col[row]) for col in self.columns)


class RowLayout:
    """NSM: contiguous (key columns + row id) structs that physically move."""

    def __init__(self, machine: Machine, values: np.ndarray) -> None:
        values = _as_u32_matrix(values)
        self.machine = machine
        self.num_rows, self.num_columns = values.shape
        # rows[:, :k] = key values, rows[:, k] = row id (the paper's idx).
        self.rows = np.empty(
            (self.num_rows, self.num_columns + 1), dtype=np.uint32
        )
        self.rows[:, : self.num_columns] = values
        self.rows[:, self.num_columns] = np.arange(
            self.num_rows, dtype=np.uint32
        )
        self.row_width = (self.num_columns + 1) * VALUE_WIDTH
        n = max(self.num_rows, 1)
        self.row_region = machine.arena.alloc(n * self.row_width, "rows")
        # A stack slot for the temporary row used by swaps / insertion sort.
        self.temp_region = machine.arena.alloc(self.row_width, "row-temp")
        self._temp = np.zeros(self.num_columns + 1, dtype=np.uint32)
        # Separate scratch slot for swaps, so a swap cannot clobber a
        # pivot/insertion value the algorithm holds in the temp slot.
        self.scratch_region = machine.arena.alloc(self.row_width, "row-scratch")
        self._aux_rows: np.ndarray | None = None
        self._aux_region = None

    def swap_rows(self, i: int, j: int) -> None:
        """Exchange two rows through the scratch slot (3 memcpys)."""
        machine = self.machine
        machine.read(self.row_address(i), self.row_width)
        machine.write(self.scratch_region.base, self.row_width)
        machine.read(self.row_address(j), self.row_width)
        machine.write(self.row_address(i), self.row_width)
        machine.read(self.scratch_region.base, self.row_width)
        machine.write(self.row_address(j), self.row_width)
        self.rows[[i, j]] = self.rows[[j, i]]

    def row_address(self, position: int) -> int:
        return self.row_region.base + position * self.row_width

    def ensure_aux(self) -> None:
        """Allocate the merge-sort auxiliary row array."""
        if self._aux_rows is None:
            self._aux_rows = np.zeros_like(self.rows)
            self._aux_region = self.machine.arena.alloc(
                max(self.num_rows, 1) * self.row_width, "rows-aux"
            )

    def _buffer(self, aux: bool) -> tuple[np.ndarray, int]:
        if aux:
            if self._aux_rows is None:
                raise SimulationError("call ensure_aux() first")
            return self._aux_rows, self._aux_region.base
        return self.rows, self.row_region.base

    def read_value_from(self, aux: bool, column: int, position: int) -> int:
        array, base = self._buffer(aux)
        self.machine.read(
            base + position * self.row_width + column * VALUE_WIDTH,
            VALUE_WIDTH,
        )
        return int(array[position, column])

    def copy_row_between(
        self, dst_aux: bool, dst: int, src_aux: bool, src: int
    ) -> None:
        dst_array, dst_base = self._buffer(dst_aux)
        src_array, src_base = self._buffer(src_aux)
        self.machine.read(src_base + src * self.row_width, self.row_width)
        self.machine.write(dst_base + dst * self.row_width, self.row_width)
        dst_array[dst] = src_array[src]

    # -- machine-charged primitives ------------------------------------ #

    def read_value(self, column: int, position: int) -> int:
        """Load one key field of the row at ``position``."""
        self.machine.read(
            self.row_address(position) + column * VALUE_WIDTH, VALUE_WIDTH
        )
        return int(self.rows[position, column])

    def copy_row(self, dst: int, src: int) -> None:
        """rows[dst] = rows[src]: one contiguous read + write."""
        self.machine.read(self.row_address(src), self.row_width)
        self.machine.write(self.row_address(dst), self.row_width)
        self.rows[dst] = self.rows[src]

    def save_temp(self, position: int) -> None:
        self.machine.read(self.row_address(position), self.row_width)
        self.machine.write(self.temp_region.base, self.row_width)
        self._temp[:] = self.rows[position]

    def store_temp(self, position: int) -> None:
        self.machine.read(self.temp_region.base, self.row_width)
        self.machine.write(self.row_address(position), self.row_width)
        self.rows[position] = self._temp

    def temp_value(self, column: int) -> int:
        self.machine.read(
            self.temp_region.base + column * VALUE_WIDTH, VALUE_WIDTH
        )
        return int(self._temp[column])

    # -- verification helpers (not charged) ----------------------------- #

    def extract_order(self) -> np.ndarray:
        return self.rows[:, self.num_columns].astype(np.int64)

    def key_tuple(self, position: int) -> tuple[int, ...]:
        return tuple(int(v) for v in self.rows[position, : self.num_columns])


class NormalizedKeyLayout:
    """Fixed-width normalized keys: big-endian values + row-id suffix.

    The micro-benchmark special case of :mod:`repro.keys`: all columns are
    unsigned 32-bit, ascending, non-NULL, so each column contributes its
    4 big-endian bytes and no NULL indicator.  memcmp order over the
    resulting bytes equals tuple order, and the row-id suffix makes keys
    unique (and sorts ties by input position).
    """

    def __init__(self, machine: Machine, values: np.ndarray) -> None:
        values = _as_u32_matrix(values)
        self.machine = machine
        self.num_rows, self.num_columns = values.shape
        self.key_width = self.num_columns * VALUE_WIDTH + INDEX_WIDTH
        matrix = np.empty((self.num_rows, self.key_width), dtype=np.uint8)
        big_endian = values.astype(">u4").view(np.uint8)
        matrix[:, : self.num_columns * VALUE_WIDTH] = big_endian.reshape(
            self.num_rows, self.num_columns * VALUE_WIDTH
        )
        ids = np.arange(self.num_rows, dtype=np.uint32).astype(">u4")
        matrix[:, self.num_columns * VALUE_WIDTH :] = ids.view(
            np.uint8
        ).reshape(self.num_rows, INDEX_WIDTH)
        self.keys = matrix
        n = max(self.num_rows, 1)
        self.key_region = machine.arena.alloc(n * self.key_width, "keys")
        self.temp_region = machine.arena.alloc(self.key_width, "key-temp")
        self._temp = np.zeros(self.key_width, dtype=np.uint8)
        self.scratch_region = machine.arena.alloc(self.key_width, "key-scratch")
        # Auxiliary buffer for radix scatter / merge sort, lazily allocated.
        self._aux: np.ndarray | None = None
        self._aux_region = None

    def key_address(self, position: int) -> int:
        return self.key_region.base + position * self.key_width

    def ensure_aux(self) -> None:
        """Allocate the radix/merge auxiliary buffer (same size as keys)."""
        if self._aux is None:
            self._aux = np.zeros_like(self.keys)
            self._aux_region = self.machine.arena.alloc(
                max(self.num_rows, 1) * self.key_width, "keys-aux"
            )

    @property
    def aux(self) -> np.ndarray:
        if self._aux is None:
            raise SimulationError("call ensure_aux() first")
        return self._aux

    def aux_address(self, position: int) -> int:
        if self._aux_region is None:
            raise SimulationError("call ensure_aux() first")
        return self._aux_region.base + position * self.key_width

    # -- machine-charged primitives ------------------------------------ #

    def memcmp_less(self, i: int, j: int) -> bool:
        """keys[i] < keys[j] byte-wise, reading 8-byte words until decided.

        Models glibc memcmp: word-at-a-time loads of both operands; no
        per-column interpretation or callbacks (the paper's point).  A
        small fixed instruction charge stands in for the runtime-size call
        overhead of a *dynamic* memcmp.
        """
        machine = self.machine
        machine.instr(3)
        a = self.keys[i]
        b = self.keys[j]
        base_a = self.key_address(i)
        base_b = self.key_address(j)
        for word_start in range(0, self.key_width, 8):
            word_end = min(word_start + 8, self.key_width)
            width = word_end - word_start
            machine.read(base_a + word_start, width)
            machine.read(base_b + word_start, width)
            chunk_a = a[word_start:word_end].tobytes()
            chunk_b = b[word_start:word_end].tobytes()
            if chunk_a != chunk_b:
                return chunk_a < chunk_b
        return False

    def read_byte(self, position: int, byte_index: int) -> int:
        self.machine.read(self.key_address(position) + byte_index, 1)
        return int(self.keys[position, byte_index])

    def copy_key(self, dst: int, src: int) -> None:
        self.machine.read(self.key_address(src), self.key_width)
        self.machine.write(self.key_address(dst), self.key_width)
        self.keys[dst] = self.keys[src]

    def swap_keys(self, i: int, j: int) -> None:
        """Exchange two key rows through the scratch slot (3 memcpys)."""
        machine = self.machine
        machine.read(self.key_address(i), self.key_width)
        machine.write(self.scratch_region.base, self.key_width)
        machine.read(self.key_address(j), self.key_width)
        machine.write(self.key_address(i), self.key_width)
        machine.read(self.scratch_region.base, self.key_width)
        machine.write(self.key_address(j), self.key_width)
        self.keys[[i, j]] = self.keys[[j, i]]

    def copy_key_between(
        self, dst_aux: bool, dst: int, src_aux: bool, src: int
    ) -> None:
        """Copy one key row between the main and auxiliary buffers."""
        dst_array = self.aux if dst_aux else self.keys
        src_array = self.aux if src_aux else self.keys
        dst_base = self.aux_address(dst) if dst_aux else self.key_address(dst)
        src_base = self.aux_address(src) if src_aux else self.key_address(src)
        self.machine.read(src_base, self.key_width)
        self.machine.write(dst_base, self.key_width)
        dst_array[dst] = src_array[src]

    def read_aux_byte(self, position: int, byte_index: int) -> int:
        self.machine.read(self.aux_address(position) + byte_index, 1)
        return int(self.aux[position, byte_index])

    def save_temp(self, position: int) -> None:
        self.machine.read(self.key_address(position), self.key_width)
        self.machine.write(self.temp_region.base, self.key_width)
        self._temp[:] = self.keys[position]

    def store_temp(self, position: int) -> None:
        self.machine.read(self.temp_region.base, self.key_width)
        self.machine.write(self.key_address(position), self.key_width)
        self.keys[position] = self._temp

    def temp_bytes(self) -> bytes:
        self.machine.read(self.temp_region.base, self.key_width)
        return self._temp.tobytes()

    def key_bytes(self, position: int) -> bytes:
        """Charged full-key read (used by temp comparisons)."""
        self.machine.read(self.key_address(position), self.key_width)
        return self.keys[position].tobytes()

    # -- verification helpers (not charged) ----------------------------- #

    def extract_order(self) -> np.ndarray:
        suffix = self.keys[:, self.num_columns * VALUE_WIDTH :]
        ids = np.ascontiguousarray(suffix).view(">u4").reshape(-1)
        return ids.astype(np.int64)

    def key_tuple(self, position: int) -> tuple[int, ...]:
        prefix = self.keys[position, : self.num_columns * VALUE_WIDTH]
        values = np.ascontiguousarray(prefix).view(">u4")
        return tuple(int(v) for v in values)
