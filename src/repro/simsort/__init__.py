"""Instrumented sorting: the paper's micro-benchmark suite on the simulator."""

from repro.simsort.adapters import (
    ColumnarAdapter,
    NormalizedKeyAdapter,
    RowAdapter,
)
from repro.simsort.algorithms import (
    duckdb_radix_sort,
    insertion_sort_adapter,
    introsort_adapter,
    lsd_radix_sort,
    merge_sort_adapter,
    msd_radix_sort,
    pdqsort_adapter,
)
from repro.simsort.engines import PARADIGMS, EngineRun, run_pipeline
from repro.simsort.harness import ALGORITHMS, APPROACHES, MicroResult, run_micro
from repro.simsort.layouts import (
    ColumnarLayout,
    NormalizedKeyLayout,
    RowLayout,
)
from repro.simsort.subsort import subsort

__all__ = [
    "ColumnarAdapter",
    "NormalizedKeyAdapter",
    "RowAdapter",
    "duckdb_radix_sort",
    "insertion_sort_adapter",
    "introsort_adapter",
    "lsd_radix_sort",
    "merge_sort_adapter",
    "msd_radix_sort",
    "pdqsort_adapter",
    "PARADIGMS",
    "EngineRun",
    "run_pipeline",
    "ALGORITHMS",
    "APPROACHES",
    "MicroResult",
    "run_micro",
    "ColumnarLayout",
    "NormalizedKeyLayout",
    "RowLayout",
    "subsort",
]
