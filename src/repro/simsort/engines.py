"""Execution-paradigm overhead: Volcano vs vectorized vs compiled.

Section V frames the whole study: "The Volcano iterator model ... leads to
tuple-at-a-time query execution, which causes high interpretation
overhead"; vectorization amortizes it per vector; compilation removes it.
This module puts numbers on that framing with the simulated machine, by
running the same scan-filter-sum pipeline under the three paradigms:

* **Volcano**: per tuple, every operator pays an interpretation step
  (dynamic dispatch of ``next()``) and a dynamic call;
* **vectorized**: the same interpretation is paid once per *vector* of
  1024 values, the data loop is tight;
* **compiled**: specialization removes interpretation entirely, leaving
  the data accesses.

All three stream the same column through the same cache simulator, so the
difference is exactly the overhead the paper attributes to the paradigms
-- and the reason its Section VI techniques matter for the vectorized
interpreted case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.machine import Machine

__all__ = ["EngineRun", "run_pipeline", "PARADIGMS"]

PARADIGMS = ("volcano", "vectorized", "compiled")

VECTOR_SIZE = 1024

_PIPELINE_OPERATORS = 3  # scan -> filter -> aggregate


@dataclass
class EngineRun:
    """Outcome of one paradigm executing the pipeline."""

    paradigm: str
    num_rows: int
    result: int
    cycles: float
    interpretation_ops: int
    function_calls: int


def run_pipeline(
    values: np.ndarray,
    threshold: int,
    paradigm: str,
    machine: Machine | None = None,
) -> EngineRun:
    """Run ``sum(v for v in values if v < threshold)`` under a paradigm."""
    if paradigm not in PARADIGMS:
        raise SimulationError(
            f"paradigm must be one of {PARADIGMS}, got {paradigm!r}"
        )
    values = np.ascontiguousarray(values, dtype=np.uint32)
    machine = machine or Machine()
    region = machine.arena.alloc(max(len(values), 1) * 4, "pipeline-col")
    total = 0
    with machine.measure() as measured:
        if paradigm == "volcano":
            for i in range(len(values)):
                # Each operator's next() is an interpreted virtual call.
                machine.interpret(_PIPELINE_OPERATORS)
                machine.call(_PIPELINE_OPERATORS)
                machine.read(region.base + i * 4, 4)
                value = int(values[i])
                if machine.branch("volcano-filter", value < threshold):
                    total += value
                machine.instr(1)
        elif paradigm == "vectorized":
            for start in range(0, len(values), VECTOR_SIZE):
                stop = min(start + VECTOR_SIZE, len(values))
                # Interpretation amortized once per operator per vector.
                machine.interpret(_PIPELINE_OPERATORS)
                machine.call(_PIPELINE_OPERATORS)
                for i in range(start, stop):
                    machine.read(region.base + i * 4, 4)
                    value = int(values[i])
                    if machine.branch("vector-filter", value < threshold):
                        total += value
                    machine.instr(1)
        else:  # compiled
            for i in range(len(values)):
                machine.read(region.base + i * 4, 4)
                value = int(values[i])
                if machine.branch("compiled-filter", value < threshold):
                    total += value
                machine.instr(1)
    counters = measured.counters
    return EngineRun(
        paradigm=paradigm,
        num_rows=len(values),
        result=total,
        cycles=float(measured.cycles),
        interpretation_ops=counters.interpretation_ops,
        function_calls=counters.function_calls,
    )
