"""Instrumented sorting algorithms running on the simulated machine.

Ports of the algorithm suite the paper benchmarks, expressed against the
adapter interface of :mod:`repro.simsort.adapters` so one implementation
serves every layout/comparator combination:

* :func:`introsort_adapter` -- the ``std::sort`` stand-in (median-of-3
  quicksort, heapsort depth fallback, final insertion sweep);
* :func:`merge_sort_adapter` -- the ``std::stable_sort`` stand-in
  (bottom-up merge with an auxiliary buffer: sequential access);
* :func:`pdqsort_adapter` -- pattern-defeating quicksort;
* :func:`lsd_radix_sort` / :func:`msd_radix_sort` /
  :func:`duckdb_radix_sort` -- byte-wise radix sorts over normalized keys
  (no comparisons, near-zero branch mispredictions, extra data movement).

Every data-dependent branch is charged to the machine's predictor under a
static site id; loop-control branches (which real hardware predicts almost
perfectly) are not charged, matching how ``perf branch-misses`` differences
show up in the paper's tables.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.simsort.layouts import NormalizedKeyLayout

__all__ = [
    "insertion_sort_adapter",
    "introsort_adapter",
    "merge_sort_adapter",
    "pdqsort_adapter",
    "lsd_radix_sort",
    "msd_radix_sort",
    "duckdb_radix_sort",
]

INSERTION_THRESHOLD = 16
PDQ_INSERTION_THRESHOLD = 24
PDQ_NINTHER_THRESHOLD = 128
RADIX_INSERTION_THRESHOLD = 24
MERGE_CHUNK = 16


def _log2(n: int) -> int:
    return max(1, n.bit_length() - 1)


# ---------------------------------------------------------------------- #
# Insertion sort (shared base case)
# ---------------------------------------------------------------------- #


def insertion_sort_adapter(seq, begin: int = 0, end: int | None = None) -> None:
    """Insertion sort of seq[begin:end) through the temp slot."""
    if end is None:
        end = seq.n
    for i in range(begin + 1, end):
        seq.save_temp(i)
        j = i - 1
        while j >= begin and seq.temp_less(j, site="ins-cmp"):
            seq.move(j + 1, j)
            j -= 1
        seq.store_temp(j + 1)


# ---------------------------------------------------------------------- #
# Introsort (std::sort)
# ---------------------------------------------------------------------- #


def introsort_adapter(seq) -> None:
    """Introsort over an adapter; mirrors :mod:`repro.sort.introsort`."""
    n = seq.n
    if n < 2:
        return
    _intro_loop(seq, 0, n, 2 * _log2(n))
    insertion_sort_adapter(seq, 0, n)


def _intro_loop(seq, begin: int, end: int, depth_limit: int) -> None:
    while end - begin > INSERTION_THRESHOLD:
        if depth_limit == 0:
            _heapsort_adapter(seq, begin, end)
            return
        depth_limit -= 1
        cut = _intro_partition(seq, begin, end)
        _intro_loop(seq, cut, end, depth_limit)
        end = cut


def _median_to_first(seq, first: int, i: int, j: int, k: int) -> None:
    if seq.less(i, j, site="med-1"):
        if seq.less(j, k, site="med-2"):
            seq.swap(first, j)
        elif seq.less(i, k, site="med-3"):
            seq.swap(first, k)
        else:
            seq.swap(first, i)
    elif seq.less(i, k, site="med-4"):
        seq.swap(first, i)
    elif seq.less(j, k, site="med-5"):
        seq.swap(first, k)
    else:
        seq.swap(first, j)


def _intro_partition(seq, begin: int, end: int) -> int:
    mid = begin + (end - begin) // 2
    _median_to_first(seq, begin, begin + 1, mid, end - 1)
    seq.save_temp(begin)  # pivot copy
    first, last = begin + 1, end
    while True:
        while seq.less_temp(first, site="qs-left"):
            first += 1
        last -= 1
        while seq.temp_less(last, site="qs-right"):
            last -= 1
        if first >= last:
            return first
        seq.swap(first, last)
        first += 1


def _heapsort_adapter(seq, begin: int, end: int) -> None:
    n = end - begin

    def sift_down(root: int, stop: int) -> None:
        while True:
            child = 2 * (root - begin) + 1 + begin
            if child >= stop:
                return
            if child + 1 < stop and seq.less(child, child + 1, site="heap-sib"):
                child += 1
            if seq.less(root, child, site="heap-down"):
                seq.swap(root, child)
                root = child
            else:
                return

    for start in range(begin + n // 2 - 1, begin - 1, -1):
        sift_down(start, end)
    for stop in range(end - 1, begin, -1):
        seq.swap(begin, stop)
        sift_down(begin, stop)


# ---------------------------------------------------------------------- #
# Bottom-up merge sort (std::stable_sort)
# ---------------------------------------------------------------------- #


def merge_sort_adapter(seq) -> None:
    """Stable merge sort over an adapter with a buffer-aware interface.

    Runs of MERGE_CHUNK are insertion sorted, then merged bottom-up,
    ping-ponging between the main (False) and auxiliary (True) buffers.
    Access is sequential, which is why this algorithm is far less
    sensitive to layout than quicksort (paper, Figures 3 and 5).
    """
    n = seq.n
    if n < 2:
        return
    for start in range(0, n, MERGE_CHUNK):
        insertion_sort_adapter(seq, start, min(start + MERGE_CHUNK, n))
    if n <= MERGE_CHUNK:
        return
    seq.ensure_aux()
    width = MERGE_CHUNK
    src_aux = False
    while width < n:
        dst_aux = not src_aux
        for start in range(0, n, 2 * width):
            mid = min(start + width, n)
            stop = min(start + 2 * width, n)
            _merge_between(seq, src_aux, dst_aux, start, mid, stop)
        src_aux = dst_aux
        width *= 2
    if src_aux:
        # Result ended in the auxiliary buffer; copy it home.
        for i in range(n):
            seq.move_between(False, i, True, i)


def _merge_between(
    seq, src_aux: bool, dst_aux: bool, start: int, mid: int, stop: int
) -> None:
    i, j = start, mid
    for k in range(start, stop):
        take_left = i < mid and (
            j >= stop
            or not seq.less_between(src_aux, j, src_aux, i, site="merge-cmp")
        )
        if take_left:
            seq.move_between(dst_aux, k, src_aux, i)
            i += 1
        else:
            seq.move_between(dst_aux, k, src_aux, j)
            j += 1


# ---------------------------------------------------------------------- #
# pdqsort
# ---------------------------------------------------------------------- #


def pdqsort_adapter(seq) -> None:
    """Pattern-defeating quicksort over an adapter.

    Mirrors :mod:`repro.sort.pdqsort` (insertion base case, median-of-3 /
    ninther pivots, partition_left for equal runs, partial insertion sort
    on already-partitioned input, pattern-breaking swaps, heapsort
    fallback).
    """
    n = seq.n
    if n < 2:
        return
    _pdq_loop(seq, 0, n, _log2(n), leftmost=True)


def _pdq_sort3(seq, i: int, j: int, k: int) -> None:
    if seq.less(j, i, site="pdq-s3a"):
        seq.swap(i, j)
    if seq.less(k, j, site="pdq-s3b"):
        seq.swap(j, k)
        if seq.less(j, i, site="pdq-s3c"):
            seq.swap(i, j)


def _pdq_choose_pivot(seq, begin: int, end: int) -> None:
    size = end - begin
    mid = begin + size // 2
    if size > PDQ_NINTHER_THRESHOLD:
        _pdq_sort3(seq, begin, mid, end - 1)
        _pdq_sort3(seq, begin + 1, mid - 1, end - 2)
        _pdq_sort3(seq, begin + 2, mid + 1, end - 3)
        _pdq_sort3(seq, mid - 1, mid, mid + 1)
        seq.swap(begin, mid)
    else:
        _pdq_sort3(seq, mid, begin, end - 1)


def _pdq_partition_right(seq, begin: int, end: int) -> tuple[int, bool]:
    seq.save_temp(begin)  # pivot
    first, last = begin, end
    first += 1
    while seq.less_temp(first, site="pdq-pl"):
        first += 1
    if first - 1 == begin:
        while first < last:
            last -= 1
            if seq.less_temp(last, site="pdq-pr"):
                break
    else:
        last -= 1
        while not seq.less_temp(last, site="pdq-pr"):
            last -= 1
    already_partitioned = first >= last
    while first < last:
        seq.swap(first, last)
        first += 1
        while seq.less_temp(first, site="pdq-pl"):
            first += 1
        last -= 1
        while not seq.less_temp(last, site="pdq-pr"):
            last -= 1
    pivot_pos = first - 1
    seq.move(begin, pivot_pos)
    seq.store_temp(pivot_pos)
    return pivot_pos, already_partitioned


def _pdq_partition_left(seq, begin: int, end: int) -> int:
    seq.save_temp(begin)  # pivot
    first, last = begin, end
    last -= 1
    while seq.temp_less(last, site="pdq-ll"):
        last -= 1
    if last + 1 == end:
        while first < last:
            first += 1
            if seq.temp_less(first, site="pdq-lr"):
                break
    else:
        first += 1
        while not seq.temp_less(first, site="pdq-lr"):
            first += 1
    while first < last:
        seq.swap(first, last)
        last -= 1
        while seq.temp_less(last, site="pdq-ll"):
            last -= 1
        first += 1
        while not seq.temp_less(first, site="pdq-lr"):
            first += 1
    pivot_pos = last
    seq.move(begin, pivot_pos)
    seq.store_temp(pivot_pos)
    return pivot_pos


def _pdq_partial_insertion_sort(seq, begin: int, end: int) -> bool:
    limit = 8
    moves = 0
    for i in range(begin + 1, end):
        j = i - 1
        if seq.less(i, j, site="pdq-pi"):
            seq.save_temp(i)
            while j >= begin and seq.temp_less(j, site="pdq-pi2"):
                seq.move(j + 1, j)
                j -= 1
                moves += 1
            seq.store_temp(j + 1)
            if moves > limit:
                return False
    return True


def _pdq_insertion_sort(seq, begin: int, end: int, unguarded: bool) -> None:
    for i in range(begin + 1, end):
        seq.save_temp(i)
        j = i - 1
        if unguarded:
            while seq.temp_less(j, site="pdq-ins"):
                seq.move(j + 1, j)
                j -= 1
        else:
            while j >= begin and seq.temp_less(j, site="pdq-ins"):
                seq.move(j + 1, j)
                j -= 1
        seq.store_temp(j + 1)


def _pdq_loop(seq, begin: int, end: int, bad_allowed: int, leftmost: bool) -> None:
    while True:
        size = end - begin
        if size < PDQ_INSERTION_THRESHOLD:
            _pdq_insertion_sort(seq, begin, end, unguarded=not leftmost)
            return
        _pdq_choose_pivot(seq, begin, end)
        if not leftmost and not seq.less(begin - 1, begin, site="pdq-eq"):
            begin = _pdq_partition_left(seq, begin, end) + 1
            continue
        pivot_pos, already_partitioned = _pdq_partition_right(seq, begin, end)
        left_size = pivot_pos - begin
        right_size = end - (pivot_pos + 1)
        highly_unbalanced = left_size < size // 8 or right_size < size // 8
        if highly_unbalanced:
            bad_allowed -= 1
            if bad_allowed == 0:
                _heapsort_adapter(seq, begin, end)
                return
            if left_size >= PDQ_INSERTION_THRESHOLD:
                quarter = left_size // 4
                seq.swap(begin, begin + quarter)
                seq.swap(pivot_pos - 1, pivot_pos - quarter)
                if left_size > PDQ_NINTHER_THRESHOLD:
                    seq.swap(begin + 1, begin + quarter + 1)
                    seq.swap(begin + 2, begin + quarter + 2)
                    seq.swap(pivot_pos - 2, pivot_pos - quarter - 1)
                    seq.swap(pivot_pos - 3, pivot_pos - quarter - 2)
            if right_size >= PDQ_INSERTION_THRESHOLD:
                quarter = right_size // 4
                seq.swap(pivot_pos + 1, pivot_pos + 1 + quarter)
                seq.swap(end - 1, end - quarter)
                if right_size > PDQ_NINTHER_THRESHOLD:
                    seq.swap(pivot_pos + 2, pivot_pos + 2 + quarter)
                    seq.swap(pivot_pos + 3, pivot_pos + 3 + quarter)
                    seq.swap(end - 2, end - quarter - 1)
                    seq.swap(end - 3, end - quarter - 2)
        elif already_partitioned:
            if _pdq_partial_insertion_sort(
                seq, begin, pivot_pos
            ) and _pdq_partial_insertion_sort(seq, pivot_pos + 1, end):
                return
        _pdq_loop(seq, begin, pivot_pos, bad_allowed, leftmost)
        begin = pivot_pos + 1
        leftmost = False


# ---------------------------------------------------------------------- #
# Radix sorts over normalized keys
# ---------------------------------------------------------------------- #


def _radix_histogram(
    layout: NormalizedKeyLayout,
    counts_base: int,
    begin: int,
    end: int,
    byte_index: int,
    from_aux: bool,
) -> list[int]:
    """Count byte values over [begin, end); charges reads + count updates."""
    machine = layout.machine
    counts = [0] * 256
    for position in range(begin, end):
        if from_aux:
            value = layout.read_aux_byte(position, byte_index)
        else:
            value = layout.read_byte(position, byte_index)
        machine.read(counts_base + value * 4, 4)
        machine.write(counts_base + value * 4, 4)
        counts[value] += 1
    return counts


def _single_bucket(counts: list[int], total: int) -> bool:
    return max(counts) == total


def lsd_radix_sort(layout: NormalizedKeyLayout, skip_copy: bool = True) -> None:
    """LSD radix sort of the key-column bytes (row-id suffix rides along).

    One stable counting pass per key byte, least significant first,
    ping-ponging between the key buffer and the auxiliary buffer.  A pass
    whose histogram is a single bucket moves no data (skip-copy).
    Branch-free by construction: the only data-dependent control flow is
    the scatter *address*, not a branch -- radix's branch advantage in
    Figure 10.
    """
    n = layout.num_rows
    if n <= 1:
        return
    layout.ensure_aux()
    machine = layout.machine
    counts_region = machine.arena.alloc(256 * 4, "radix-counts")
    key_bytes = layout.num_columns * 4  # radix passes cover key bytes only
    src_aux = False
    for byte_index in range(key_bytes - 1, -1, -1):
        counts = _radix_histogram(
            layout, counts_region.base, 0, n, byte_index, src_aux
        )
        if skip_copy and _single_bucket(counts, n):
            continue  # skip-copy optimization
        offsets = [0] * 256
        running = 0
        for value in range(256):
            machine.read(counts_region.base + value * 4, 4)
            machine.write(counts_region.base + value * 4, 4)
            offsets[value] = running
            running += counts[value]
        src = layout.aux if src_aux else layout.keys
        dst = layout.keys if src_aux else layout.aux
        src_base = (
            layout.aux_address(0) if src_aux else layout.key_address(0)
        )
        dst_base = (
            layout.key_address(0) if src_aux else layout.aux_address(0)
        )
        width = layout.key_width
        for position in range(n):
            if src_aux:
                value = layout.read_aux_byte(position, byte_index)
            else:
                value = layout.read_byte(position, byte_index)
            machine.read(counts_region.base + value * 4, 4)
            machine.write(counts_region.base + value * 4, 4)
            target = offsets[value]
            offsets[value] += 1
            machine.read(src_base + position * width, width)
            machine.write(dst_base + target * width, width)
            dst[target] = src[position]
            machine.swap()
        src_aux = not src_aux
    if src_aux:
        # Data ended in the auxiliary buffer; stream it back.
        for position in range(n):
            layout.copy_key_between(False, position, True, position)


def _msd_insertion_sort(layout: NormalizedKeyLayout, begin: int, end: int) -> None:
    """memcmp insertion sort for small MSD buckets (charged via layout)."""
    machine = layout.machine
    for i in range(begin + 1, end):
        layout.save_temp(i)
        temp = layout.temp_bytes()
        j = i - 1
        while j >= begin:
            machine.instr(3)
            other = layout.key_bytes(j)
            machine.compare()
            is_less = temp < other
            machine.branch("msd-ins", is_less)
            if not is_less:
                break
            layout.copy_key(j + 1, j)
            machine.swap()
            j -= 1
        layout.store_temp(j + 1)


def msd_radix_sort(
    layout: NormalizedKeyLayout,
    insertion_threshold: int = RADIX_INSERTION_THRESHOLD,
) -> None:
    """MSD radix sort: partition on the leading byte, recurse per bucket.

    Buckets at or below ``insertion_threshold`` rows finish with a memcmp
    insertion sort, like the paper's implementation.  Scatters go through
    the auxiliary buffer and are copied back, so data movement is charged
    both ways.
    """
    n = layout.num_rows
    if n <= 1:
        return
    layout.ensure_aux()
    machine = layout.machine
    counts_region = machine.arena.alloc(256 * 4, "radix-counts")
    key_bytes = layout.num_columns * 4
    width = layout.key_width
    stack: list[tuple[int, int, int]] = [(0, n, 0)]
    while stack:
        begin, end, byte_index = stack.pop()
        count = end - begin
        if count <= 1 or byte_index >= key_bytes:
            continue
        if count <= insertion_threshold:
            _msd_insertion_sort(layout, begin, end)
            continue
        counts = _radix_histogram(
            layout, counts_region.base, begin, end, byte_index, False
        )
        if _single_bucket(counts, count):
            stack.append((begin, end, byte_index + 1))
            continue
        offsets = [0] * 256
        running = 0
        for value in range(256):
            machine.read(counts_region.base + value * 4, 4)
            machine.write(counts_region.base + value * 4, 4)
            offsets[value] = running
            running += counts[value]
        # Scatter into aux, then copy the range back.
        for position in range(begin, end):
            value = layout.read_byte(position, byte_index)
            machine.read(counts_region.base + value * 4, 4)
            machine.write(counts_region.base + value * 4, 4)
            target = begin + offsets[value]
            offsets[value] += 1
            machine.read(layout.key_address(position), width)
            machine.write(layout.aux_address(target), width)
            layout.aux[target] = layout.keys[position]
            machine.swap()
        for position in range(begin, end):
            layout.copy_key_between(False, position, True, position)
        # Recurse into buckets larger than one row.
        bucket_start = begin
        for value in range(256):
            bucket_count = counts[value]
            if bucket_count > 1:
                stack.append(
                    (bucket_start, bucket_start + bucket_count, byte_index + 1)
                )
            bucket_start += bucket_count
    return None


def duckdb_radix_sort(
    layout: NormalizedKeyLayout, lsd_threshold_bytes: int = 4
) -> None:
    """DuckDB's choice: LSD for keys of <= 4 bytes, MSD otherwise."""
    if layout.num_columns * 4 <= lsd_threshold_bytes:
        lsd_radix_sort(layout)
    else:
        msd_radix_sort(layout)


def verify_sorted(seq_or_layout, key_tuple=None) -> bool:
    """Uncharged check that a layout's final order is non-decreasing."""
    layout = seq_or_layout
    get = key_tuple or layout.key_tuple
    previous = None
    for position in range(layout.num_rows):
        current = get(position)
        if previous is not None and current < previous:
            return False
        previous = current
    return True
