"""The global memory governor: byte grants arbitrating concurrent sorts.

PR 3 gave each external sort a *private* degradation ladder (retry ->
spill failover -> in-memory fallback), but nothing arbitrated between
operators: eight concurrent ORDER BYs would each buffer a full
``run_threshold`` of rows and the process would blow through any real
memory budget.  Polyntsov et al. (arXiv 2207.12713) frame external-sort
behavior as governed by the memory *grant*; this module is that grant
layer for the query service.

One :class:`MemoryGovernor` owns a fixed byte budget.  Each admitted
query acquires a :class:`MemoryGrant` before it executes; the governor
splits the budget fairly across the live grants, so admitting a new
query **revokes** part of every running query's grant -- the grant's
``granted_bytes`` simply shrinks, and because the sort operators re-read
``SortConfig.memory_grant.effective_run_threshold(...)`` at every sink
checkpoint, the revocation takes effect at the next buffered chunk: runs
are cut (and spilled) earlier, via the degradation machinery that
already exists.  No operator code ever blocks on the governor; pressure
propagates purely by shrinking numbers.

Admission blocks (bounded by a timeout) only when the budget cannot fit
another *minimum* grant; a timed-out acquire raises
:class:`repro.errors.ServiceOverloadError` with a retry-after estimate,
and the first moment an acquire starts waiting the ``on_starved`` hook
fires so the service can shed queued low-priority work.

Spill accounting rides the same object: operators report each written
run file via ``record_spill`` and the governor tracks the byte
high-watermark of concurrently live spill data
(``peak_concurrent_spill_bytes``), released when the grant is.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError, ServiceOverloadError

__all__ = [
    "DEFAULT_MIN_GRANT_BYTES",
    "DEFAULT_ROW_BYTES",
    "GovernorStats",
    "MemoryGrant",
    "MemoryGovernor",
]

DEFAULT_MIN_GRANT_BYTES = 64 << 10
"""Smallest useful grant: below this a sort would cut degenerate runs."""

DEFAULT_ROW_BYTES = 64
"""Assumed buffered bytes per row when translating a grant to rows."""

_STARVED_POLL_S = 0.05
"""How long one acquire wait slice lasts before re-checking the clock."""


@dataclass
class GovernorStats:
    """Counters the governor accumulates across its lifetime.

    ``grant_waits`` counts acquires that had to block at least once;
    ``grant_wait_s`` is their total blocked wall-clock.
    ``peak_concurrent_spill_bytes`` is the high-watermark of live spill
    file bytes across all concurrent grants (a grant's contribution is
    removed when it is released).  ``revocations`` counts share
    recomputations that shrank at least one live grant.
    """

    grants_issued: int = 0
    grant_waits: int = 0
    grant_wait_s: float = 0.0
    grant_timeouts: int = 0
    revocations: int = 0
    peak_active_grants: int = 0
    peak_concurrent_spill_bytes: int = 0


class MemoryGrant:
    """One query's slice of the governor's budget.

    The sort layer duck-types this object (``SortConfig.memory_grant``):
    it only calls :meth:`effective_run_threshold` and
    :meth:`record_spill`, so the sort package never imports the service
    package.  ``granted_bytes`` is read without the governor lock --
    it is a single int updated atomically under the lock; a sink
    checkpoint observing a stale value for one chunk is harmless, the
    next checkpoint sees the shrunk grant.
    """

    def __init__(
        self, governor: "MemoryGovernor", query_id: str, row_bytes: int
    ) -> None:
        self.governor = governor
        self.query_id = query_id
        self.row_bytes = max(1, row_bytes)
        self.granted_bytes = 0
        self.spilled_bytes = 0
        self.released = False

    def effective_run_threshold(self, base_rows: int) -> int:
        """The grant translated to buffered rows, capped at ``base_rows``."""
        rows = self.granted_bytes // self.row_bytes
        return max(1, min(base_rows, rows))

    def record_spill(self, nbytes: int) -> None:
        self.governor._record_spill(self, nbytes)

    def release(self) -> None:
        self.governor.release(self)

    def __enter__(self) -> "MemoryGrant":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False


class MemoryGovernor:
    """Fair-share arbiter of one process-wide sort memory budget.

    ``budget_bytes / min_grant_bytes`` bounds how many grants can be
    live at once (every query must hold at least a minimum grant to make
    progress); within that bound the budget is split evenly, so every
    admission shrinks -- revokes -- the shares of the queries already
    running, and every release grows them back.  Thread-safe; all state
    is guarded by one condition variable.
    """

    def __init__(
        self,
        budget_bytes: int,
        min_grant_bytes: int = DEFAULT_MIN_GRANT_BYTES,
        row_bytes: int = DEFAULT_ROW_BYTES,
    ) -> None:
        if budget_bytes <= 0:
            raise ServiceError("memory budget must be positive")
        min_grant_bytes = max(1, min(min_grant_bytes, budget_bytes))
        self.budget_bytes = budget_bytes
        self.min_grant_bytes = min_grant_bytes
        self.row_bytes = max(1, row_bytes)
        self.max_active = max(1, budget_bytes // min_grant_bytes)
        self.stats = GovernorStats()
        self._cond = threading.Condition()
        self._active: list[MemoryGrant] = []
        self._spill_bytes = 0

    # ------------------------------------------------------------------ #
    # Acquire / release
    # ------------------------------------------------------------------ #

    @property
    def active_grants(self) -> int:
        with self._cond:
            return len(self._active)

    def acquire(
        self,
        query_id: str,
        timeout_s: float = 30.0,
        on_starved=None,
    ) -> MemoryGrant:
        """Block until a minimum grant fits, then return the new grant.

        Admission immediately recomputes fair shares, shrinking every
        already-live grant.  ``on_starved`` fires on every wait slice
        while this acquire is starved (the service sheds queued
        low-priority work on that signal -- shedding is idempotent, and
        re-firing catches low work queued *after* the starvation
        began); it runs under the governor lock and must not re-enter
        the governor.  A wait exceeding ``timeout_s`` raises
        :class:`ServiceOverloadError` whose ``retry_after_s`` estimates
        one grant-hold time.
        """
        grant = MemoryGrant(self, query_id, self.row_bytes)
        deadline = time.monotonic() + max(0.0, timeout_s)
        waited = False
        started = time.monotonic()
        with self._cond:
            while len(self._active) >= self.max_active:
                if not waited:
                    waited = True
                    self.stats.grant_waits += 1
                if on_starved is not None:
                    on_starved()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.grant_timeouts += 1
                    self.stats.grant_wait_s += time.monotonic() - started
                    raise ServiceOverloadError(
                        f"memory governor starved: {len(self._active)} "
                        f"grants hold the {self.budget_bytes}-byte budget "
                        f"(waited {timeout_s:.1f}s)",
                        retry_after_s=max(timeout_s, _STARVED_POLL_S),
                    )
                self._cond.wait(min(remaining, _STARVED_POLL_S))
            if waited:
                self.stats.grant_wait_s += time.monotonic() - started
            self._active.append(grant)
            self.stats.grants_issued += 1
            self.stats.peak_active_grants = max(
                self.stats.peak_active_grants, len(self._active)
            )
            self._rebalance()
        return grant

    def release(self, grant: MemoryGrant) -> None:
        """Return a grant's bytes to the pool; idempotent."""
        with self._cond:
            if grant.released:
                return
            grant.released = True
            grant.granted_bytes = 0
            self._spill_bytes -= grant.spilled_bytes
            grant.spilled_bytes = 0
            try:
                self._active.remove(grant)
            except ValueError:
                pass
            self._rebalance()
            self._cond.notify_all()

    def _rebalance(self) -> None:
        """Split the budget evenly over the live grants (lock held)."""
        if not self._active:
            return
        share = max(self.min_grant_bytes, self.budget_bytes // len(self._active))
        shrank = False
        for grant in self._active:
            if grant.granted_bytes > share:
                shrank = True
            grant.granted_bytes = share
        if shrank:
            self.stats.revocations += 1

    # ------------------------------------------------------------------ #
    # Spill accounting
    # ------------------------------------------------------------------ #

    def _record_spill(self, grant: MemoryGrant, nbytes: int) -> None:
        if nbytes <= 0:
            return
        with self._cond:
            if grant.released:
                return
            grant.spilled_bytes += nbytes
            self._spill_bytes += nbytes
            if self._spill_bytes > self.stats.peak_concurrent_spill_bytes:
                self.stats.peak_concurrent_spill_bytes = self._spill_bytes

    @property
    def concurrent_spill_bytes(self) -> int:
        with self._cond:
            return self._spill_bytes
