"""The concurrent sort service: thread pool, admission control, deadlines.

This is the ROADMAP's "millions of users" first rung: a
:class:`SortService` wraps one :class:`repro.engine.Database` behind a
pool of worker threads and runs many ORDER BY / Top-N / window queries
concurrently while a :class:`repro.service.governor.MemoryGovernor`
arbitrates one process-wide memory budget between their sorts.

The request lifecycle::

    submit() -> [bounded queue, priority-ordered] -> worker picks ticket
        -> result cache probe (hit: done)
        -> governor grant acquire (may wait; may shed queued LOW work)
        -> deadline timer armed
        -> Database.execute_detailed under a per-query SortConfig carrying
           the ticket's cancel event + memory grant
        -> complete (result / typed error), grant released, timer joined

Admission control is explicit and typed: a full queue either sheds the
lowest-priority queued ticket (when the newcomer outranks it) or rejects
the newcomer with :class:`repro.errors.ServiceOverloadError` carrying a
retry-after estimate.  A governor starving mid-acquire triggers the same
shedding.  Nothing ever waits unbounded and nothing OOMs silently: under
overload the service degrades to *fewer admitted queries each spilling
earlier*, which is the robustness posture of Do & Graefe
(arXiv 2209.08420) -- graceful behavior across adverse conditions rather
than peak speed.

Cancellation and deadlines use the sort layer's cooperative checkpoints:
the per-query ``SortConfig.cancel_event`` is polled at sink, run
generation, merge rounds, prefetch scheduling and parallel dispatch, so
``QueryTicket.cancel()`` (or an expired deadline) aborts the sort at the
next checkpoint, the operator's ``finally`` paths remove every spill
file and join every helper thread, and the worker releases the grant.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
import time
from dataclasses import dataclass
from enum import IntEnum

from repro.engine.database import Database
from repro.errors import (
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadError,
    ServiceShutdownError,
    SortCancelledError,
)
from repro.service.cache import ResultCache
from repro.service.governor import MemoryGovernor
from repro.sort.incremental import DEFAULT_COMPACT_THRESHOLD, IncrementalSorter
from repro.sort.operator import SortConfig
from repro.table.table import Table

__all__ = [
    "Priority",
    "QueryTicket",
    "ServiceStats",
    "SortService",
]

_THREAD_PREFIX = "repro-service"
"""Name prefix of every thread the service creates (workers, deadline
timers) -- the test suite's leak guard asserts none survive shutdown."""


class Priority(IntEnum):
    """Admission priority class; higher values outrank lower ones."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


@dataclass
class ServiceStats:
    """Service-level counters (one snapshot; see ``SortService.stats``).

    ``admitted`` counts tickets accepted into the queue; ``rejected``
    tickets refused at the door (queue full, no shed candidate);
    ``shed`` queued tickets evicted to make room or relieve a starved
    governor; ``cancelled`` tickets aborted by the caller;
    ``timed_out`` tickets whose deadline expired mid-flight.
    ``governor_forced_spills`` sums the per-query
    ``SortStats.governor_forced_spills`` of completed queries, and
    ``sorts_elided`` / ``sorts_subsumed`` likewise sum the planner's
    order-propagation savings (sorts skipped because their order was
    already provided).  Grant and spill watermarks come from the
    governor, cache hit counters from the result cache --
    ``cache_prefix_hits`` counts requests answered below full-query
    granularity (a cached full ORDER BY sliced for Top-N or served
    under a prefix-compatible ORDER BY).  ``view_deltas`` /
    ``view_snapshots`` count completed maintenance operations on
    incremental sorted views (:meth:`SortService.append_delta` /
    :meth:`~SortService.view_snapshot`); both also count under
    ``completed``.
    """

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    cancelled: int = 0
    timed_out: int = 0
    completed: int = 0
    failed: int = 0
    view_deltas: int = 0
    view_snapshots: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_prefix_hits: int = 0
    sorts_elided: int = 0
    sorts_subsumed: int = 0
    grant_waits: int = 0
    grant_wait_s: float = 0.0
    revocations: int = 0
    peak_active_grants: int = 0
    peak_concurrent_spill_bytes: int = 0
    governor_forced_spills: int = 0
    queue_peak: int = 0


class QueryTicket:
    """One submitted query: a future plus its cancellation surface.

    ``result(timeout=None)`` blocks for the outcome and re-raises the
    query's typed error (``ServiceOverloadError`` when shed,
    ``QueryTimeoutError`` on deadline expiry, ``SortCancelledError``
    after ``cancel()``, or whatever the engine raised).  ``cancel()``
    is safe from any thread at any time: a queued ticket completes
    cancelled without running; a running ticket aborts at the sort's
    next cooperative checkpoint.
    """

    def __init__(
        self,
        query_id: str,
        sql: str,
        priority: Priority,
        deadline_s: float | None,
    ) -> None:
        self.query_id = query_id
        self.sql = sql
        self.priority = Priority(priority)
        self.deadline_s = deadline_s
        self.submitted_at = time.monotonic()
        self.cancel_event = threading.Event()
        self.sort_stats: list = []
        self.from_cache = False
        # Maintenance tickets (incremental-view appends/snapshots) carry
        # their work as a callable instead of SQL; see SortService.
        self._work = None
        self._done = threading.Event()
        self._result: Table | None = None
        self._error: BaseException | None = None
        self._timed_out = False

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def cancel(self) -> None:
        self.cancel_event.set()

    @property
    def cancelled(self) -> bool:
        return self.cancel_event.is_set()

    def result(self, timeout: float | None = None) -> Table:
        if not self._done.wait(timeout):
            raise ServiceError(
                f"query {self.query_id} still running after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._done.wait(timeout):
            raise ServiceError(
                f"query {self.query_id} still running after {timeout}s"
            )
        return self._error

    def _complete(self, result: Table) -> None:
        self._result = result
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()


class _MaintainedView:
    """One incremental sorted view: its sorter plus a maintenance lock.

    The lock serializes appends, compactions, and snapshots -- the
    service may run maintenance tickets for the same view on different
    workers, and :class:`IncrementalSorter` is not thread-safe.
    """

    __slots__ = ("name", "sorter", "lock")

    def __init__(self, name: str, sorter: IncrementalSorter) -> None:
        self.name = name
        self.sorter = sorter
        self.lock = threading.Lock()


class SortService:
    """Thread-pool query service over one :class:`Database`.

    ``memory_budget`` bytes are shared by every concurrent query's sort
    (see :class:`MemoryGovernor`); ``queue_limit`` bounds queued-but-
    not-running tickets; ``workers`` threads execute queries.  Use as a
    context manager, or call :meth:`shutdown` -- every worker and timer
    thread is joined on the way out.
    """

    def __init__(
        self,
        database: Database,
        memory_budget: int,
        workers: int = 4,
        queue_limit: int = 32,
        cache_capacity: int = 32,
        admission_timeout_s: float = 30.0,
        min_grant_bytes: int | None = None,
        grant_row_bytes: int | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError("workers must be at least 1")
        if queue_limit < 1:
            raise ServiceError("queue_limit must be at least 1")
        self.database = database
        governor_kwargs = {}
        if min_grant_bytes is not None:
            governor_kwargs["min_grant_bytes"] = min_grant_bytes
        if grant_row_bytes is not None:
            governor_kwargs["row_bytes"] = grant_row_bytes
        self.governor = MemoryGovernor(memory_budget, **governor_kwargs)
        self.cache = ResultCache(cache_capacity)
        self.queue_limit = queue_limit
        self.admission_timeout_s = admission_timeout_s
        self._stats = ServiceStats()
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: list[QueryTicket] = []
        self._views: dict[str, _MaintainedView] = {}
        self._seq = itertools.count()
        self._order = itertools.count()  # FIFO tiebreak within a priority
        self._queue_order: dict[str, int] = {}
        self._shutdown = False
        self._latency_ewma = 0.1  # retry-after seed, updated per query
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{_THREAD_PREFIX}-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def shutdown(self) -> None:
        """Stop admitting, fail queued tickets, join every worker."""
        with self._work:
            if self._shutdown:
                pending: list[QueryTicket] = []
            else:
                self._shutdown = True
                pending = list(self._queue)
                self._queue.clear()
                self._queue_order.clear()
            self._work.notify_all()
        for ticket in pending:
            ticket._fail(
                ServiceShutdownError(
                    f"service shut down before query {ticket.query_id} ran"
                )
            )
        for thread in self._workers:
            thread.join()

    # ------------------------------------------------------------------ #
    # Submission / admission control
    # ------------------------------------------------------------------ #

    def submit(
        self,
        sql: str,
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
    ) -> QueryTicket:
        """Admit a query (or raise :class:`ServiceOverloadError`).

        A full queue is resolved by rank: if some queued ticket has a
        strictly lower priority than the newcomer, the *lowest* such
        ticket is shed (completed with a ``shed=True`` overload error)
        and the newcomer takes its place; otherwise the newcomer is
        rejected with a retry-after estimated from recent query latency.
        """
        ticket = QueryTicket(
            f"q{next(self._seq):06d}", sql, priority, deadline_s
        )
        shed_ticket: QueryTicket | None = None
        with self._work:
            if self._shutdown:
                raise ServiceShutdownError("service is shut down")
            if len(self._queue) >= self.queue_limit:
                victim = self._lowest_priority_queued()
                if victim is None or victim.priority >= ticket.priority:
                    self._stats.rejected += 1
                    raise ServiceOverloadError(
                        f"admission queue full ({self.queue_limit} queued)",
                        retry_after_s=self._retry_after(),
                    )
                self._queue.remove(victim)
                self._queue_order.pop(victim.query_id, None)
                self._stats.shed += 1
                shed_ticket = victim
            self._queue.append(ticket)
            self._queue_order[ticket.query_id] = next(self._order)
            self._stats.admitted += 1
            self._stats.queue_peak = max(
                self._stats.queue_peak, len(self._queue)
            )
            self._work.notify()
        if shed_ticket is not None:
            shed_ticket._fail(
                ServiceOverloadError(
                    f"query {shed_ticket.query_id} shed for higher "
                    "priority work",
                    retry_after_s=self._retry_after(),
                    shed=True,
                )
            )
        return ticket

    def execute(
        self,
        sql: str,
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> Table:
        """Submit and wait: the one-call blocking entry point."""
        return self.submit(sql, priority, deadline_s).result(timeout)

    # ------------------------------------------------------------------ #
    # Incremental sorted views (the continuously-serving workload)
    # ------------------------------------------------------------------ #

    def maintain_view(
        self,
        name: str,
        table: str,
        order_by: str,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        """Start maintaining a sorted view over deltas for ``table``.

        The view begins empty and is fed by :meth:`append_delta`; its
        schema comes from the registered ``table``.  Maintenance runs as
        ordinary tickets on the worker pool: appends and snapshots queue
        behind queries, acquire a governor grant while they merge, honor
        deadlines/cancellation through the sorter's cooperative
        checkpoints, and are serialized per view.
        """
        schema = self.database.table(table).schema
        sorter = IncrementalSorter(
            schema,
            order_by,
            config=self.database.sort_config,
            compact_threshold=compact_threshold,
        )
        with self._lock:
            if name in self._views:
                raise ServiceError(f"view {name!r} is already maintained")
            self._views[name] = _MaintainedView(name, sorter)

    def _view(self, name: str) -> "_MaintainedView":
        with self._lock:
            try:
                return self._views[name]
            except KeyError:
                raise ServiceError(f"no maintained view {name!r}") from None

    def _submit_work(
        self,
        label: str,
        work,
        priority: Priority,
        deadline_s: float | None,
    ) -> QueryTicket:
        """Admit a maintenance ticket through the normal queue rules."""
        ticket = self.submit(label, priority, deadline_s)
        ticket._work = work
        return ticket

    def append_delta(
        self,
        name: str,
        delta: Table,
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
    ) -> QueryTicket:
        """Queue one arriving batch for a maintained view.

        The returned ticket completes with the delta once it is merged
        into the view (so ``result()`` doubles as a write barrier);
        admission control, shedding, deadlines, and cancellation apply
        exactly as for queries.  Workers dequeue appends FIFO within a
        priority class, but with several workers two appends to one
        view can race to the view lock -- equal-key tie order then
        depends on application order.  When arrival order must be
        deterministic (e.g. byte identity with a one-shot sort), wait
        on each append's ``result()`` before submitting the next, or
        run a single-worker service.
        """
        view = self._view(name)

        def work(config: SortConfig) -> Table:
            with view.lock:
                previous = view.sorter.config
                view.sorter.config = config
                try:
                    view.sorter.insert(delta)
                finally:
                    view.sorter.config = previous
            with self._lock:
                self._stats.view_deltas += 1
            return delta

        return self._submit_work(
            f"@view-append {name}", work, priority, deadline_s
        )

    def view_snapshot(
        self,
        name: str,
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
    ) -> QueryTicket:
        """Queue a read of a maintained view's current sorted state.

        The ticket completes with the sorted :class:`Table` covering
        every delta whose append ticket ran before this one (compaction
        and, for long strings, exact-order refinement happen here if
        pending -- repeat snapshots of an unchanged view are served from
        the sorter's cache).
        """
        view = self._view(name)

        def work(config: SortConfig) -> Table:
            with view.lock:
                previous = view.sorter.config
                view.sorter.config = config
                try:
                    result = view.sorter.view()
                finally:
                    view.sorter.config = previous
            with self._lock:
                self._stats.view_snapshots += 1
            return result

        return self._submit_work(
            f"@view-snapshot {name}", work, priority, deadline_s
        )

    def publish_view(
        self,
        name: str,
        priority: Priority = Priority.NORMAL,
        deadline_s: float | None = None,
        timeout: float | None = None,
    ) -> Table:
        """Snapshot a maintained view into the database catalog.

        Takes a :meth:`view_snapshot` (exact sorted order), registers
        the result as table ``name``, and declares its ordering via
        :meth:`repro.engine.database.Database.declare_ordering` -- so
        subsequent queries over the published view get planner-level
        sort elision, subsumption, and tie-group refinement.  Blocks
        for the snapshot; returns the published table.
        """
        view = self._view(name)
        table = self.view_snapshot(name, priority, deadline_s).result(timeout)
        self.database.register(name, table)
        self.database.declare_ordering(name, view.sorter.spec)
        return table

    def view_stats(self, name: str):
        """The view's :class:`repro.sort.incremental.IncrementalStats`."""
        return self._view(name).sorter.stats

    def _lowest_priority_queued(self) -> QueryTicket | None:
        """The shed candidate: lowest priority, then newest (lock held)."""
        if not self._queue:
            return None
        return min(
            self._queue,
            key=lambda t: (t.priority, -self._queue_order[t.query_id]),
        )

    def _retry_after(self) -> float:
        return max(0.05, 2.0 * self._latency_ewma)

    def _shed_for_starved_governor(self) -> None:
        """Governor-starved hook: shed the lowest-priority queued LOW ticket.

        Runs on a worker thread that is *waiting* for a grant; freeing
        queue slots keeps submitters unblocked and sheds work that would
        only deepen the starvation.  Only ``LOW`` tickets are shed here
        -- a starved governor is not a reason to drop normal work that
        admission already accepted.
        """
        with self._work:
            victims = [
                t for t in self._queue if t.priority == Priority.LOW
            ]
            for victim in victims:
                self._queue.remove(victim)
                self._queue_order.pop(victim.query_id, None)
                self._stats.shed += 1
        for victim in victims:
            victim._fail(
                ServiceOverloadError(
                    f"query {victim.query_id} shed: memory governor "
                    "starved",
                    retry_after_s=self._retry_after(),
                    shed=True,
                )
            )

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #

    def _next_ticket(self) -> QueryTicket | None:
        with self._work:
            while not self._queue and not self._shutdown:
                self._work.wait()
            if not self._queue:
                return None
            ticket = max(
                self._queue,
                key=lambda t: (t.priority, -self._queue_order[t.query_id]),
            )
            self._queue.remove(ticket)
            self._queue_order.pop(ticket.query_id, None)
            return ticket

    def _worker_loop(self) -> None:
        while True:
            ticket = self._next_ticket()
            if ticket is None:
                return
            try:
                self._run_ticket(ticket)
            except BaseException as error:  # never kill the worker
                if not ticket.done:
                    ticket._fail(error)

    def _run_ticket(self, ticket: QueryTicket) -> None:
        started = time.monotonic()
        if ticket.cancelled:
            with self._lock:
                self._stats.cancelled += 1
            ticket._fail(
                SortCancelledError(
                    f"query {ticket.query_id} cancelled before it ran"
                )
            )
            return
        try:
            if ticket._work is not None:
                # Maintenance work (incremental-view appends/snapshots)
                # has no SQL plan and never touches the result cache --
                # a view is its own versioned state.
                result = self._run_query(ticket, None)
                key = None
            else:
                plan = self.database.plan(ticket.sql)
                versions = tuple(
                    (name, self.database.table_version(name))
                    for name in self.database.referenced_tables(plan)
                )
                key = ResultCache.key(ticket.sql, versions)
                cached = self.cache.get(key)
                if cached is None:
                    # Below full-query granularity: a cached complete
                    # ORDER BY result can answer this query's Top-N /
                    # prefix-compatible ORDER BY by slicing.
                    cached = self.cache.serve_prefix(ticket.sql, versions)
                if cached is not None:
                    with self._lock:
                        self._stats.completed += 1
                    ticket.from_cache = True
                    ticket._complete(cached)
                    return
                result = self._run_query(ticket, plan)
        except BaseException as error:
            self._finish_error(ticket, error)
            return
        if key is not None:
            self.cache.put(key, result, ticket.sql)
        self._observe_latency(time.monotonic() - started)
        with self._lock:
            self._stats.completed += 1
            for stats in ticket.sort_stats:
                self._stats.governor_forced_spills += (
                    stats.governor_forced_spills
                )
                self._stats.sorts_elided += stats.sorts_elided
                self._stats.sorts_subsumed += stats.sorts_subsumed
        ticket._complete(result)

    def _run_query(self, ticket: QueryTicket, plan) -> Table:
        """Grant -> deadline timer -> execute; always releases both."""
        timeout = self.admission_timeout_s
        if ticket.deadline_s is not None:
            elapsed = time.monotonic() - ticket.submitted_at
            timeout = min(timeout, max(0.0, ticket.deadline_s - elapsed))
        grant = self.governor.acquire(
            ticket.query_id,
            timeout_s=timeout,
            on_starved=self._shed_for_starved_governor,
        )
        timer: threading.Timer | None = None
        try:
            if ticket.deadline_s is not None:
                remaining = ticket.deadline_s - (
                    time.monotonic() - ticket.submitted_at
                )
                if remaining <= 0:
                    ticket._timed_out = True
                    raise SortCancelledError("deadline already expired")

                def expire() -> None:
                    ticket._timed_out = True
                    ticket.cancel_event.set()

                timer = threading.Timer(remaining, expire)
                timer.name = f"{_THREAD_PREFIX}-deadline-{ticket.query_id}"
                timer.daemon = True
                timer.start()
            config = dataclasses.replace(
                self.database.sort_config,
                cancel_event=ticket.cancel_event,
                memory_grant=grant,
            )
            if ticket._work is not None:
                return ticket._work(config)
            result, ticket.sort_stats = self.database.execute_bound(
                plan, config
            )
            return result
        finally:
            if timer is not None:
                timer.cancel()
                timer.join()
            grant.release()

    def _finish_error(self, ticket: QueryTicket, error: BaseException) -> None:
        if isinstance(error, SortCancelledError):
            if ticket._timed_out:
                with self._lock:
                    self._stats.timed_out += 1
                error = QueryTimeoutError(
                    f"query {ticket.query_id} exceeded its "
                    f"{ticket.deadline_s}s deadline"
                )
            else:
                with self._lock:
                    self._stats.cancelled += 1
        else:
            with self._lock:
                self._stats.failed += 1
        ticket._fail(error)

    def _observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latency_ewma = 0.8 * self._latency_ewma + 0.2 * seconds

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> ServiceStats:
        """A merged snapshot of service, governor, and cache counters."""
        with self._lock:
            snapshot = dataclasses.replace(self._stats)
        gov = self.governor.stats
        snapshot.grant_waits = gov.grant_waits
        snapshot.grant_wait_s = gov.grant_wait_s
        snapshot.revocations = gov.revocations
        snapshot.peak_active_grants = gov.peak_active_grants
        snapshot.peak_concurrent_spill_bytes = (
            gov.peak_concurrent_spill_bytes
        )
        snapshot.cache_hits = self.cache.hits
        snapshot.cache_misses = self.cache.misses
        snapshot.cache_prefix_hits = self.cache.prefix_hits
        return snapshot
