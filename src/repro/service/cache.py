"""Sorted-result cache keyed on (query text, table versions).

ORDER BY workloads are read-heavy and repetitive: the same sort spec
over the same table version produces byte-identical output, so the
service memoizes finished result tables.  The cache key is the SQL text
plus the ``(table, version)`` pair of every base table the bound plan
scans (:meth:`repro.engine.database.Database.table_version`); because
``Database.register`` bumps the version on every write, a stale entry
can never be *returned* -- its key simply stops being asked for, and
LRU eviction reclaims it.  That makes invalidation-on-write free: no
write hook, no cross-thread invalidation storm, just version-stamped
keys.

Key normalization is token-based: the SQL is run through the engine's
tokenizer, keywords compare case-insensitively (the tokenizer
uppercases them) and whitespace collapses, while identifiers and string
literals stay byte-exact -- ``select * from t where s = 'Ab'`` and
``SELECT * FROM t WHERE s = 'Ab'`` share a key, but ``'Ab'`` and
``'ab'`` never do.

Beyond exact keys, the cache serves *below* full-query granularity
(:meth:`ResultCache.serve_prefix`): a cached full ORDER BY answer also
answers

* the same query with ``LIMIT``/``OFFSET`` (slice the cached rows), and
* any query over the same base whose ORDER BY is a *prefix* of the
  cached spec (rows sorted by ``a, b, c`` are sorted by ``a, b``),
  again sliced for Top-N.

Same-spec slices are byte-identical to a fresh execution (the engine's
Top-N equals sort-then-slice).  Proper-prefix serving returns rows
whose prefix-tie order follows the cached spec's extra columns rather
than a fresh stable sort's arrival order -- a correct answer for the
requested ORDER BY, with different tie resolution; callers needing
arrival-order ties must bypass the cache.

Thread-safe; entries are whole immutable :class:`repro.table.table.Table`
results, shared by reference (callers must not mutate result tables --
the same contract ``Database.execute`` already implies).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ParseError
from repro.engine.ast_nodes import (
    AggregateItem,
    CountStar,
    JoinRef,
    SelectStatement,
    StarSelection,
    SubqueryRef,
    TableRef,
)
from repro.engine.parser import parse, tokenize
from repro.table.table import Table

__all__ = ["ResultCache", "query_profile"]


def _normalize_sql(sql: str) -> str:
    """Canonical cache-key text: tokenized, single-spaced.

    Keywords arrive uppercased from the tokenizer; identifiers keep
    their case (the catalog is case-sensitive) and string literals are
    re-quoted byte-exact.  Unparseable text falls back to plain
    whitespace collapsing -- such queries fail at parse time anyway,
    but the key function must never raise.
    """
    try:
        tokens = tokenize(sql)
    except ParseError:
        return " ".join(sql.split())
    parts = []
    for token in tokens:
        if token.kind == "eof":
            break
        if token.kind == "string":
            parts.append("'" + token.text.replace("'", "''") + "'")
        else:
            parts.append(token.text)
    return " ".join(parts)


def _render_literal(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)


def _render_selection(selection) -> str:
    if isinstance(selection, StarSelection):
        return "*"
    if isinstance(selection, CountStar):
        return "count(*)"
    parts = []
    for item in selection:
        if isinstance(item, AggregateItem):
            parts.append(f"{item.function}({item.column or '*'})")
        else:
            parts.append(item)
    return ", ".join(parts)


def _render_source(source) -> str:
    if isinstance(source, TableRef):
        return source.name
    if isinstance(source, SubqueryRef):
        inner = _render_statement(source.query)
        alias = f" AS {source.alias}" if source.alias else ""
        return f"({inner}){alias}"
    if isinstance(source, JoinRef):
        pairs = " AND ".join(f"{a} = {b}" for a, b in source.on)
        return (
            f"{_render_source(source.left)} JOIN "
            f"{_render_source(source.right)} ON {pairs}"
        )
    raise ParseError(f"cannot render {source!r}")


def _render_statement(
    statement: SelectStatement, include_order: bool = True
) -> str:
    """A canonical rendering of a bound-able statement.

    With ``include_order=False`` the *top-level* ORDER BY / LIMIT /
    OFFSET are stripped (subqueries keep theirs): that text is the
    "base fingerprint" two queries must share for one's full sorted
    result to serve the other's prefix request.
    """
    parts = [
        "SELECT",
        _render_selection(statement.selection),
        "FROM",
        _render_source(statement.source),
    ]
    if statement.where is not None:
        conditions = " AND ".join(
            f"{c.column} {c.op}"
            + (
                ""
                if c.op.startswith("is")
                else f" {_render_literal(c.literal)}"
            )
            for c in statement.where.comparisons
        )
        parts.append(f"WHERE {conditions}")
    if statement.group_by:
        parts.append("GROUP BY " + ", ".join(statement.group_by))
    if include_order:
        if statement.order_by:
            keys = ", ".join(
                str(item.to_sort_key()) for item in statement.order_by
            )
            parts.append(f"ORDER BY {keys}")
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
        if statement.offset is not None:
            parts.append(f"OFFSET {statement.offset}")
    return " ".join(parts)


def query_profile(sql: str):
    """``(base, signature, limit, offset)`` of an ordered SELECT.

    ``base`` is the canonical statement text without its top-level
    ORDER BY / LIMIT / OFFSET; ``signature`` is the tuple of
    ``(column, order, effective null order)`` of the ORDER BY keys.
    Returns ``None`` for unparseable or unordered statements -- those
    never participate in prefix serving.
    """
    try:
        statement = parse(sql)
    except ParseError:
        return None
    if not statement.order_by:
        return None
    signature = tuple(
        (key.column, key.order, key.effective_null_order)
        for key in (item.to_sort_key() for item in statement.order_by)
    )
    try:
        base = _render_statement(statement, include_order=False)
    except ParseError:
        return None
    return base, signature, statement.limit, statement.offset or 0


class ResultCache:
    """A bounded LRU of finished query results.

    ``capacity`` counts entries, not bytes -- service results are
    bounded by the queries the benchmark runs; a byte-budgeted cache
    would need result sizing that Table does not expose cheaply.
    ``capacity <= 0`` disables caching (every ``get`` misses, ``put``
    drops).

    ``hits`` / ``misses`` count exact-key probes; ``prefix_hits``
    counts requests answered below full-query granularity by
    :meth:`serve_prefix` (a full cached ORDER BY sliced for Top-N /
    LIMIT-OFFSET, or re-served under a prefix-compatible ORDER BY).
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.prefix_hits = 0
        self._lock = threading.Lock()
        # key -> (table, full_ref); full_ref indexes _full when the
        # entry is a complete (unlimited) ordered result, else None.
        self._entries: "OrderedDict[tuple, tuple[Table, tuple | None]]" = (
            OrderedDict()
        )
        # (base, versions) -> (entry key, ORDER BY signature)
        self._full: dict[tuple, tuple[tuple, tuple]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key(sql: str, versions: tuple[tuple[str, int], ...]) -> tuple:
        """The cache key: normalized SQL text + sorted version stamps."""
        return (_normalize_sql(sql), tuple(sorted(versions)))

    def get(self, key: tuple) -> Table | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: tuple, result: Table, sql: str | None = None) -> None:
        """Cache a finished result; ``sql`` enables prefix serving.

        When ``sql`` is a complete ordered SELECT (no LIMIT/OFFSET),
        the entry is also indexed by its base fingerprint so later
        Top-N / prefix-ORDER-BY requests over the same table versions
        can be sliced from it.
        """
        if self.capacity <= 0:
            return
        full_ref = None
        signature = None
        if sql is not None:
            profile = query_profile(sql)
            if profile is not None:
                base, signature, limit, offset = profile
                if limit is None and offset == 0:
                    full_ref = (base, key[1])
        with self._lock:
            self._entries[key] = (result, full_ref)
            if full_ref is not None:
                self._full[full_ref] = (key, signature)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                old_key, (_, old_ref) = self._entries.popitem(last=False)
                if old_ref is not None:
                    stored = self._full.get(old_ref)
                    if stored is not None and stored[0] == old_key:
                        del self._full[old_ref]

    def serve_prefix(
        self, sql: str, versions: tuple[tuple[str, int], ...]
    ) -> Table | None:
        """Answer ``sql`` from a cached full result, or ``None``.

        Serves when a complete cached result exists for the same base
        fingerprint and table versions whose ORDER BY signature has the
        request's signature as a leading prefix; the cached rows are
        sliced by the request's LIMIT/OFFSET.  See the module docstring
        for the tie-order caveat on proper-prefix serving.
        """
        profile = query_profile(sql)
        if profile is None:
            return None
        base, signature, limit, offset = profile
        with self._lock:
            stored = self._full.get((base, tuple(sorted(versions))))
            if stored is None:
                return None
            full_key, full_signature = stored
            if (
                len(signature) > len(full_signature)
                or full_signature[: len(signature)] != signature
            ):
                return None
            table = self._entries[full_key][0]
            self._entries.move_to_end(full_key)
            self.prefix_hits += 1
        n = table.num_rows
        start = min(offset, n)
        stop = n if limit is None else min(start + limit, n)
        return table.slice(start, stop)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._full.clear()
