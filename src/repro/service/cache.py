"""Sorted-result cache keyed on (query text, table versions).

ORDER BY workloads are read-heavy and repetitive: the same sort spec
over the same table version produces byte-identical output, so the
service memoizes finished result tables.  The cache key is the SQL text
plus the ``(table, version)`` pair of every base table the bound plan
scans (:meth:`repro.engine.database.Database.table_version`); because
``Database.register`` bumps the version on every write, a stale entry
can never be *returned* -- its key simply stops being asked for, and
LRU eviction reclaims it.  That makes invalidation-on-write free: no
write hook, no cross-thread invalidation storm, just version-stamped
keys.

Thread-safe; entries are whole immutable :class:`repro.table.table.Table`
results, shared by reference (callers must not mutate result tables --
the same contract ``Database.execute`` already implies).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.table.table import Table

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded LRU of finished query results.

    ``capacity`` counts entries, not bytes -- service results are
    bounded by the queries the benchmark runs; a byte-budgeted cache
    would need result sizing that Table does not expose cheaply.
    ``capacity <= 0`` disables caching (every ``get`` misses, ``put``
    drops).
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Table]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def key(sql: str, versions: tuple[tuple[str, int], ...]) -> tuple:
        """The cache key: normalized SQL text + sorted version stamps."""
        return (" ".join(sql.split()), tuple(sorted(versions)))

    def get(self, key: tuple) -> Table | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, result: Table) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
