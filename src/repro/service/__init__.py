"""Concurrent query service over the mini engine.

Public surface::

    from repro.service import SortService, Priority

    db = Database(sort_config=SortConfig(external=True))
    db.register("t", table)
    with SortService(db, memory_budget=64 << 20, workers=8) as service:
        ticket = service.submit("SELECT * FROM t ORDER BY a", Priority.HIGH)
        result = ticket.result(timeout=30)

See :mod:`repro.service.core` for the service, admission control and
deadlines; :mod:`repro.service.governor` for the shared memory grant
protocol; :mod:`repro.service.cache` for the version-keyed result cache.
"""

from repro.service.cache import ResultCache
from repro.service.core import (
    Priority,
    QueryTicket,
    ServiceStats,
    SortService,
)
from repro.service.governor import (
    GovernorStats,
    MemoryGovernor,
    MemoryGrant,
)

__all__ = [
    "GovernorStats",
    "MemoryGovernor",
    "MemoryGrant",
    "Priority",
    "QueryTicket",
    "ResultCache",
    "ServiceStats",
    "SortService",
]
