"""Logical types for relational data.

The paper sorts relational data whose key columns "can be arbitrarily complex
and contain any of the types that the system supports".  This module defines
the logical types our reproduction supports, together with their physical
representation as numpy dtypes and the metadata key normalization needs
(fixed width, signedness, float-ness).

The set matches what the paper's benchmarks exercise: 32/64-bit signed
integers, 16-bit integers (TPC-DS surrogate keys are small ints), 32/64-bit
IEEE-754 floats, DATE (stored as days since epoch), BOOLEAN, and VARCHAR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import TypeError_

__all__ = [
    "TypeId",
    "DataType",
    "BOOLEAN",
    "SMALLINT",
    "INTEGER",
    "BIGINT",
    "FLOAT",
    "DOUBLE",
    "DATE",
    "VARCHAR",
    "type_from_name",
    "type_for_numpy_dtype",
]


class TypeId(enum.Enum):
    """Identifier for each supported logical type."""

    BOOLEAN = "BOOLEAN"
    SMALLINT = "SMALLINT"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    FLOAT = "FLOAT"
    DOUBLE = "DOUBLE"
    DATE = "DATE"
    VARCHAR = "VARCHAR"


@dataclass(frozen=True)
class DataType:
    """A logical type plus the physical facts the rest of the system needs.

    Attributes:
        type_id: which logical type this is.
        numpy_dtype: physical storage dtype in columnar (DSM) form.  VARCHAR
            columns are stored as numpy object arrays of ``str``.
        fixed_width: width in bytes of the in-row (NSM) representation, or
            ``None`` for variable-width types (VARCHAR), which live in a
            string heap and store a pointer-sized slot in the row.
        is_signed: whether the physical representation is a signed integer
            (needs a sign-bit flip during key normalization).
        is_float: whether the physical representation is IEEE-754 (needs the
            float total-order transform during key normalization).
    """

    type_id: TypeId
    numpy_dtype: np.dtype
    fixed_width: int | None
    is_signed: bool
    is_float: bool

    @property
    def name(self) -> str:
        """SQL-ish name of the type (e.g. ``"INTEGER"``)."""
        return self.type_id.value

    @property
    def is_variable_width(self) -> bool:
        """True for types whose values have no fixed byte width (VARCHAR)."""
        return self.fixed_width is None

    def validate_array(self, values: np.ndarray) -> None:
        """Raise :class:`TypeError_` unless ``values`` matches this type.

        For fixed-width types the numpy dtype must match exactly.  VARCHAR
        accepts object arrays whose non-null entries are ``str``.
        """
        if self.type_id is TypeId.VARCHAR:
            if values.dtype != np.dtype(object):
                raise TypeError_(
                    f"VARCHAR column must be an object array, got {values.dtype}"
                )
            return
        if values.dtype != self.numpy_dtype:
            raise TypeError_(
                f"{self.name} column must have dtype {self.numpy_dtype}, "
                f"got {values.dtype}"
            )

    def __str__(self) -> str:
        return self.name


BOOLEAN = DataType(TypeId.BOOLEAN, np.dtype(np.uint8), 1, False, False)
SMALLINT = DataType(TypeId.SMALLINT, np.dtype(np.int16), 2, True, False)
INTEGER = DataType(TypeId.INTEGER, np.dtype(np.int32), 4, True, False)
BIGINT = DataType(TypeId.BIGINT, np.dtype(np.int64), 8, True, False)
FLOAT = DataType(TypeId.FLOAT, np.dtype(np.float32), 4, False, True)
DOUBLE = DataType(TypeId.DOUBLE, np.dtype(np.float64), 8, False, True)
DATE = DataType(TypeId.DATE, np.dtype(np.int32), 4, True, False)
VARCHAR = DataType(TypeId.VARCHAR, np.dtype(object), None, False, False)

_BY_NAME = {
    t.name: t
    for t in (BOOLEAN, SMALLINT, INTEGER, BIGINT, FLOAT, DOUBLE, DATE, VARCHAR)
}
# Common SQL aliases accepted by the mini engine's parser.
_BY_NAME["INT"] = INTEGER
_BY_NAME["INT4"] = INTEGER
_BY_NAME["INT8"] = BIGINT
_BY_NAME["INT2"] = SMALLINT
_BY_NAME["REAL"] = FLOAT
_BY_NAME["STRING"] = VARCHAR
_BY_NAME["TEXT"] = VARCHAR
_BY_NAME["BOOL"] = BOOLEAN


def type_from_name(name: str) -> DataType:
    """Look up a :class:`DataType` by SQL name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise TypeError_(f"unknown type name: {name!r}") from None


def type_for_numpy_dtype(dtype: np.dtype) -> DataType:
    """Infer the logical type for a numpy dtype (DATE is not inferable)."""
    dtype = np.dtype(dtype)
    if dtype == np.dtype(object):
        return VARCHAR
    for candidate in (SMALLINT, INTEGER, BIGINT, FLOAT, DOUBLE, BOOLEAN):
        if candidate.numpy_dtype == dtype:
            return candidate
    raise TypeError_(f"no logical type for numpy dtype {dtype}")
