"""Schemas: named, typed, ordered collections of columns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.types.datatypes import DataType
from repro.types.sortspec import SortSpec

__all__ = ["ColumnDef", "Schema"]


@dataclass(frozen=True)
class ColumnDef:
    """One column: a name, a logical type, and whether NULLs may appear."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype.name}{null}"


@dataclass(frozen=True)
class Schema:
    """An ordered set of uniquely named columns.

    Provides lookup by name and by position, plus the split into key and
    payload columns given a :class:`SortSpec` -- the paper's terminology for
    ORDER BY columns vs all other selected columns.
    """

    columns: tuple[ColumnDef, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        names = [c.name for c in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")

    @classmethod
    def of(cls, *columns: ColumnDef | tuple) -> "Schema":
        """Build a schema from ColumnDefs or (name, dtype[, nullable]) tuples."""
        defs = []
        for col in columns:
            if isinstance(col, ColumnDef):
                defs.append(col)
            else:
                defs.append(ColumnDef(*col))
        return cls(tuple(defs))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column(self, name: str) -> ColumnDef:
        """Look up a column by name, raising :class:`SchemaError` if absent."""
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column named {name!r} (have {list(self.names)})")

    def index_of(self, name: str) -> int:
        """Position of a column by name."""
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"no column named {name!r} (have {list(self.names)})")

    def select(self, names) -> "Schema":
        """A new schema with just the given columns, in the given order."""
        return Schema(tuple(self.column(n) for n in names))

    def split_key_payload(self, spec: SortSpec) -> tuple["Schema", "Schema"]:
        """Split into (key columns, payload columns) for a sort spec.

        Key columns appear in *spec order*; payload columns keep their
        original order.  Every spec column must exist in the schema.
        """
        key_schema = self.select(spec.column_names)
        key_names = set(spec.column_names)
        payload = tuple(c for c in self.columns if c.name not in key_names)
        return key_schema, Schema(payload)

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.columns) + ")"
