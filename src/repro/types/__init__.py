"""Logical types, sort-order semantics, and schemas."""

from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    FLOAT,
    INTEGER,
    SMALLINT,
    VARCHAR,
    DataType,
    TypeId,
    type_for_numpy_dtype,
    type_from_name,
)
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import (
    NullOrder,
    Order,
    SortKey,
    SortSpec,
    compare_values,
    tuple_compare,
)

__all__ = [
    "BIGINT",
    "BOOLEAN",
    "DATE",
    "DOUBLE",
    "FLOAT",
    "INTEGER",
    "SMALLINT",
    "VARCHAR",
    "DataType",
    "TypeId",
    "type_for_numpy_dtype",
    "type_from_name",
    "ColumnDef",
    "Schema",
    "NullOrder",
    "Order",
    "SortKey",
    "SortSpec",
    "compare_values",
    "tuple_compare",
]
