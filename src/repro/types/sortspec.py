"""Sort specifications: ORDER BY semantics for one or more key columns.

A :class:`SortKey` captures everything the paper's example query expresses:
which column, ascending or descending, and whether NULLs sort first or last.
A :class:`SortSpec` is the ordered list of keys from an ORDER BY clause.

The comparison semantics implemented here (``compare_values`` and
``tuple_compare``) are the ground truth the rest of the library is tested
against: key normalization must produce byte strings whose memcmp order
matches ``tuple_compare`` exactly.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import SortError

__all__ = [
    "Order",
    "NullOrder",
    "SortKey",
    "SortSpec",
    "common_order_prefix",
    "compare_values",
    "ordering_satisfies",
    "tuple_compare",
]


class Order(enum.Enum):
    """Sort direction of one key column."""

    ASCENDING = "ASC"
    DESCENDING = "DESC"


class NullOrder(enum.Enum):
    """Where NULL values sort relative to non-NULL values."""

    NULLS_FIRST = "NULLS FIRST"
    NULLS_LAST = "NULLS LAST"


def default_null_order(order: Order) -> NullOrder:
    """The default NULL placement used when a query does not specify one.

    We follow DuckDB's default (NULLS LAST for ASC, NULLS FIRST for DESC is
    *not* DuckDB's behaviour -- DuckDB defaults to NULLS LAST in both
    directions since 0.8; we use NULLS LAST uniformly).
    """
    return NullOrder.NULLS_LAST


@dataclass(frozen=True)
class SortKey:
    """One entry of an ORDER BY clause.

    Attributes:
        column: column name.
        order: ascending or descending.
        null_order: NULLS FIRST or NULLS LAST.  If omitted the default from
            :func:`default_null_order` is used.
    """

    column: str
    order: Order = Order.ASCENDING
    null_order: NullOrder | None = None

    @property
    def effective_null_order(self) -> NullOrder:
        """The NULL placement to actually use (applies the default)."""
        if self.null_order is not None:
            return self.null_order
        return default_null_order(self.order)

    @property
    def descending(self) -> bool:
        return self.order is Order.DESCENDING

    @property
    def nulls_first(self) -> bool:
        return self.effective_null_order is NullOrder.NULLS_FIRST

    @classmethod
    def parse(cls, text: str) -> "SortKey":
        """Parse a key from text like ``"c_birth_country DESC NULLS LAST"``.

        Accepted grammar::

            column [ASC|DESC] [NULLS FIRST|NULLS LAST]
        """
        tokens = text.split()
        if not tokens:
            raise SortError("empty sort key")
        column = tokens[0]
        order = Order.ASCENDING
        null_order: NullOrder | None = None
        rest = [t.upper() for t in tokens[1:]]
        i = 0
        while i < len(rest):
            tok = rest[i]
            if tok in ("ASC", "ASCENDING"):
                order = Order.ASCENDING
            elif tok in ("DESC", "DESCENDING"):
                order = Order.DESCENDING
            elif tok == "NULLS" and i + 1 < len(rest):
                nxt = rest[i + 1]
                if nxt == "FIRST":
                    null_order = NullOrder.NULLS_FIRST
                elif nxt == "LAST":
                    null_order = NullOrder.NULLS_LAST
                else:
                    raise SortError(f"expected FIRST or LAST after NULLS, got {nxt}")
                i += 1
            else:
                raise SortError(f"unexpected token in sort key: {tok}")
            i += 1
        return cls(column, order, null_order)

    def __str__(self) -> str:
        parts = [self.column, self.order.value, self.effective_null_order.value]
        return " ".join(parts)


@dataclass(frozen=True)
class SortSpec:
    """An ordered list of :class:`SortKey` -- a full ORDER BY clause."""

    keys: tuple[SortKey, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.keys:
            raise SortError("a SortSpec needs at least one key")
        object.__setattr__(self, "keys", tuple(self.keys))

    @classmethod
    def of(cls, *keys: "SortKey | str") -> "SortSpec":
        """Build a spec from SortKey objects and/or textual keys.

        >>> SortSpec.of("a DESC", SortKey("b"))
        """
        parsed = tuple(
            k if isinstance(k, SortKey) else SortKey.parse(k) for k in keys
        )
        return cls(parsed)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(k.column for k in self.keys)

    def __len__(self) -> int:
        return len(self.keys)

    def __iter__(self):
        return iter(self.keys)

    def __str__(self) -> str:
        return ", ".join(str(k) for k in self.keys)


def _keys_equivalent(provided: SortKey, required: SortKey) -> bool:
    """Whether one provided key delivers exactly one required key's order.

    Column, direction, and *effective* NULL placement must all agree:
    ``a`` and ``a ASC NULLS LAST`` are the same ordering under the
    engine's defaults, while ``a DESC`` or ``a NULLS FIRST`` are not.
    """
    return (
        provided.column == required.column
        and provided.order is required.order
        and provided.effective_null_order is required.effective_null_order
    )


def common_order_prefix(provided: SortSpec, required: SortSpec) -> int:
    """Length of the longest shared leading key run of two specs.

    Rows sorted by ``provided`` are also sorted by any leading prefix of
    it, so the first ``common_order_prefix`` keys of ``required`` come
    for free from an input ordered by ``provided``.
    """
    count = 0
    for have, need in zip(provided.keys, required.keys):
        if not _keys_equivalent(have, need):
            break
        count += 1
    return count


def ordering_satisfies(provided: SortSpec | None, required: SortSpec) -> bool:
    """Whether an input ordered by ``provided`` already satisfies
    ``required`` -- i.e. ``required`` is a (possibly full) leading prefix
    of ``provided``.  ``ORDER BY a, b`` is satisfied by an input sorted
    on ``a, b, c``; it is *not* satisfied by ``a DESC, b`` or ``b, a``.
    """
    if provided is None:
        return False
    return common_order_prefix(provided, required) >= len(required.keys)


def compare_values(left: Any, right: Any, key: SortKey) -> int:
    """Three-way compare of two values under one sort key's semantics.

    ``None`` denotes NULL.  NaN floats sort after all other floats
    (ascending), matching the total order our key normalization encodes.
    Returns negative / zero / positive like a C comparator.
    """
    left_null = left is None
    right_null = right is None
    if left_null or right_null:
        if left_null and right_null:
            return 0
        null_cmp = -1 if key.nulls_first else 1
        return null_cmp if left_null else -null_cmp

    result = _compare_non_null(left, right)
    return -result if key.descending else result


def _compare_non_null(left: Any, right: Any) -> int:
    """Ascending three-way compare of two non-NULL values of the same type."""
    if isinstance(left, float) or isinstance(right, float):
        left_nan = isinstance(left, float) and math.isnan(left)
        right_nan = isinstance(right, float) and math.isnan(right)
        if left_nan or right_nan:
            if left_nan and right_nan:
                return 0
            return 1 if left_nan else -1
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def tuple_compare(
    left: Sequence[Any], right: Sequence[Any], spec: SortSpec
) -> int:
    """Three-way compare of two tuples under a full sort spec.

    This is the reference "tuple-at-a-time" comparator from the paper: walk
    the key columns in order and return the first non-tie.  Everything else
    in the library (normalized keys, subsort, radix sort) must agree with it.
    """
    if len(left) != len(spec.keys) or len(right) != len(spec.keys):
        raise SortError(
            f"tuple arity {len(left)}/{len(right)} does not match "
            f"spec arity {len(spec.keys)}"
        )
    for value_l, value_r, key in zip(left, right, spec.keys):
        result = compare_values(value_l, value_r, key)
        if result != 0:
            return result
    return 0
