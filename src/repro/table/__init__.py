"""Columnar (DSM) table storage: columns, tables, chunks, and CSV I/O."""

from repro.table.chunk import VECTOR_SIZE, DataChunk, chunk_table, concat_chunks
from repro.table.column import ColumnVector
from repro.table.io import read_csv, table_to_csv_string, write_csv
from repro.table.table import Table

__all__ = [
    "VECTOR_SIZE",
    "DataChunk",
    "chunk_table",
    "concat_chunks",
    "ColumnVector",
    "read_csv",
    "table_to_csv_string",
    "write_csv",
    "Table",
]
