"""CSV input/output for tables.

A small, dependency-free CSV layer so the library is usable on real data:
``read_csv`` parses a header + rows into a :class:`Table` (with type
inference or explicit types; empty fields are NULL), ``write_csv`` is its
inverse.  Round-trips are property-tested.
"""

from __future__ import annotations

import csv
import io
import os
from typing import IO, Any, Mapping

from repro.errors import ReproError, TypeError_
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    VARCHAR,
    DataType,
    TypeId,
)
from repro.types.schema import ColumnDef, Schema

__all__ = ["read_csv", "write_csv"]

NULL_TOKEN = ""
"""Empty CSV fields are NULL (and NULL is written as an empty field)."""


def _open_source(source: str | IO[str]) -> tuple[IO[str], bool]:
    if isinstance(source, str):
        return open(source, "r", newline="", encoding="utf-8"), True
    return source, False


def _parse_value(text: str, dtype: DataType) -> Any:
    if text == NULL_TOKEN:
        return None
    if dtype.type_id is TypeId.VARCHAR:
        return text
    if dtype.type_id is TypeId.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "t", "1"):
            return True
        if lowered in ("false", "f", "0"):
            return False
        raise TypeError_(f"cannot parse {text!r} as BOOLEAN")
    try:
        if dtype.is_float:
            return float(text)
        return int(text)
    except ValueError:
        raise TypeError_(
            f"cannot parse {text!r} as {dtype.name}"
        ) from None


def _infer_column_type(values: list[str]) -> DataType:
    """Infer INTEGER/BIGINT/DOUBLE/BOOLEAN/VARCHAR from text values."""
    non_null = [v for v in values if v != NULL_TOKEN]
    if not non_null:
        return VARCHAR
    if all(v.strip().lower() in ("true", "false", "t", "f") for v in non_null):
        return BOOLEAN
    try:
        ints = [int(v) for v in non_null]
        limit = 2**31
        if all(-limit <= v < limit for v in ints):
            return INTEGER
        return BIGINT
    except ValueError:
        pass
    try:
        for v in non_null:
            float(v)
        return DOUBLE
    except ValueError:
        return VARCHAR


def read_csv(
    source: str | IO[str],
    dtypes: Mapping[str, DataType] | None = None,
    delimiter: str = ",",
) -> Table:
    """Read a header-ful CSV file (or file-like) into a table.

    ``dtypes`` overrides inference per column.  Empty fields are NULL.
    """
    handle, owned = _open_source(source)
    try:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError("CSV input has no header row") from None
        if not header or any(not name for name in header):
            raise ReproError(f"invalid CSV header: {header!r}")
        rows = list(reader)
    finally:
        if owned:
            handle.close()
    for line_number, row in enumerate(rows, start=2):
        if len(row) != len(header):
            raise ReproError(
                f"CSV line {line_number} has {len(row)} fields, "
                f"expected {len(header)}"
            )
    dtypes = dict(dtypes or {})
    columns = []
    defs = []
    for index, name in enumerate(header):
        raw = [row[index] for row in rows]
        dtype = dtypes.get(name) or _infer_column_type(raw)
        values = [_parse_value(v, dtype) for v in raw]
        column = ColumnVector.from_values(values, dtype)
        columns.append(column)
        defs.append(ColumnDef(name, dtype))
    return Table(Schema(tuple(defs)), columns)


def _format_value(value: Any) -> str:
    if value is None:
        return NULL_TOKEN
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def write_csv(
    table: Table, target: str | IO[str], delimiter: str = ","
) -> None:
    """Write a table as CSV with a header row (NULLs as empty fields)."""
    if isinstance(target, str):
        directory = os.path.dirname(target)
        if directory and not os.path.isdir(directory):
            raise ReproError(f"no such directory: {directory}")
        handle: IO[str] = open(target, "w", newline="", encoding="utf-8")
        owned = True
    else:
        handle, owned = target, False
    try:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.schema.names)
        for row in table.iter_rows():
            writer.writerow([_format_value(v) for v in row])
    finally:
        if owned:
            handle.close()


def table_to_csv_string(table: Table, delimiter: str = ",") -> str:
    """The table as one CSV string (convenience for tests and repr)."""
    buffer = io.StringIO()
    write_csv(table, buffer, delimiter)
    return buffer.getvalue()
