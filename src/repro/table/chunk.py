"""DataChunk: the unit of vectorized execution.

Vectorized interpreted engines (VectorWise, DuckDB) move data between
operators in fixed-size batches of column vectors so interpretation overhead
is amortized "vector-at-a-time" instead of paid per tuple.  A
:class:`DataChunk` is one such batch: a horizontal slice of a table, at most
:data:`VECTOR_SIZE` rows (DuckDB uses 2048; we default to 1024, matching the
paper's description of conversion "one block of vectors at a time").
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SchemaError
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.schema import Schema

__all__ = ["VECTOR_SIZE", "DataChunk", "chunk_table"]

VECTOR_SIZE = 1024
"""Default number of rows per vector batch."""


class DataChunk:
    """A batch of up to ``VECTOR_SIZE`` rows in columnar (DSM) form."""

    __slots__ = ("schema", "vectors")

    def __init__(self, schema: Schema, vectors: list[ColumnVector]) -> None:
        if len(vectors) != len(schema):
            raise SchemaError(
                f"chunk has {len(vectors)} vectors for {len(schema)} columns"
            )
        lengths = {len(v) for v in vectors}
        if len(lengths) > 1:
            raise SchemaError(f"vectors have differing lengths: {sorted(lengths)}")
        self.schema = schema
        self.vectors = vectors

    @property
    def size(self) -> int:
        return len(self.vectors[0]) if self.vectors else 0

    def __len__(self) -> int:
        return self.size

    def vector(self, name: str) -> ColumnVector:
        return self.vectors[self.schema.index_of(name)]

    def to_table(self) -> Table:
        return Table(self.schema, list(self.vectors))

    @classmethod
    def from_table(cls, table: Table) -> "DataChunk":
        return cls(table.schema, list(table.columns))


def chunk_table(table: Table, vector_size: int = VECTOR_SIZE) -> Iterator[DataChunk]:
    """Split a table into DataChunks of at most ``vector_size`` rows.

    This is what a table scan feeding a vectorized pipeline produces.
    """
    if vector_size <= 0:
        raise SchemaError(f"vector_size must be positive, got {vector_size}")
    for start in range(0, table.num_rows, vector_size):
        stop = min(start + vector_size, table.num_rows)
        yield DataChunk.from_table(table.slice(start, stop))
    if table.num_rows == 0:
        yield DataChunk.from_table(table)


def concat_chunks(chunks: list[DataChunk]) -> Table:
    """Reassemble chunks into one table (inverse of :func:`chunk_table`)."""
    if not chunks:
        raise SchemaError("cannot concat zero chunks")
    table = chunks[0].to_table()
    for chunk in chunks[1:]:
        table = table.concat(chunk.to_table())
    return table
