"""Columnar tables: the DSM face of the library.

A :class:`Table` is an immutable-ish collection of equally long
:class:`~repro.table.column.ColumnVector` objects described by a
:class:`~repro.types.schema.Schema`.  It is the input and output of the sort
operator and of the mini query engine.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.errors import SchemaError, TypeError_
from repro.table.column import ColumnVector
from repro.types.datatypes import DataType
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortSpec, tuple_compare

__all__ = ["Table"]


class Table:
    """An ordered collection of named, typed columns of equal length."""

    __slots__ = ("schema", "_columns")

    def __init__(self, schema: Schema, columns: Iterable[ColumnVector]) -> None:
        columns = list(columns)
        if len(columns) != len(schema):
            raise SchemaError(
                f"schema has {len(schema)} columns but {len(columns)} given"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        for col_def, col in zip(schema, columns):
            if col.dtype.type_id is not col_def.dtype.type_id:
                raise TypeError_(
                    f"column {col_def.name!r} declared {col_def.dtype.name} "
                    f"but data is {col.dtype.name}"
                )
            if not col_def.nullable and col.has_nulls:
                raise TypeError_(
                    f"column {col_def.name!r} is NOT NULL but contains NULLs"
                )
        self.schema = schema
        self._columns = columns

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pydict(
        cls,
        data: Mapping[str, Iterable[Any]],
        dtypes: Mapping[str, DataType] | None = None,
    ) -> "Table":
        """Build a table from ``{name: values}``; ``None`` entries are NULL."""
        dtypes = dict(dtypes or {})
        columns = []
        defs = []
        for name, values in data.items():
            col = ColumnVector.from_values(values, dtypes.get(name))
            columns.append(col)
            defs.append(ColumnDef(name, col.dtype))
        return cls(Schema(tuple(defs)), columns)

    @classmethod
    def from_numpy(cls, data: Mapping[str, np.ndarray]) -> "Table":
        """Build a NULL-free table directly from numpy arrays."""
        columns = [ColumnVector.from_numpy(arr) for arr in data.values()]
        defs = tuple(
            ColumnDef(name, col.dtype) for name, col in zip(data, columns)
        )
        return cls(Schema(defs), columns)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """A zero-row table with the given schema."""
        columns = []
        for col_def in schema:
            dt = col_def.dtype
            data = np.empty(0, dtype=dt.numpy_dtype)
            columns.append(ColumnVector(dt, data))
        return cls(schema, columns)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> ColumnVector:
        return self._columns[self.schema.index_of(name)]

    def column_at(self, index: int) -> ColumnVector:
        return self._columns[index]

    @property
    def columns(self) -> tuple[ColumnVector, ...]:
        return tuple(self._columns)

    def row(self, index: int) -> tuple[Any, ...]:
        """One row as a Python tuple (``None`` for NULL)."""
        return tuple(col.value(index) for col in self._columns)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def to_pydict(self) -> dict[str, list[Any]]:
        return {
            name: col.to_pylist()
            for name, col in zip(self.schema.names, self._columns)
        }

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def select(self, names: Iterable[str]) -> "Table":
        """Project to the given columns, in the given order."""
        names = list(names)
        schema = self.schema.select(names)
        return Table(schema, [self.column(n) for n in names])

    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position (the payload-reorder primitive)."""
        return Table(self.schema, [c.take(indices) for c in self._columns])

    def slice(self, start: int, stop: int) -> "Table":
        return Table(self.schema, [c.slice(start, stop) for c in self._columns])

    def concat(self, other: "Table") -> "Table":
        if self.schema.names != other.schema.names:
            raise SchemaError("cannot concat tables with different schemas")
        return Table(
            self.schema,
            [a.concat(b) for a, b in zip(self._columns, other._columns)],
        )

    def equals(self, other: "Table") -> bool:
        if self.schema.names != other.schema.names:
            return False
        return all(a.equals(b) for a, b in zip(self._columns, other._columns))

    # ------------------------------------------------------------------ #
    # Sort-related checks (used heavily by the test suite)
    # ------------------------------------------------------------------ #

    def is_sorted_by(self, spec: SortSpec) -> bool:
        """True iff consecutive rows are non-decreasing under ``spec``."""
        key_table = self.select(spec.column_names)
        prev = None
        for row in key_table.iter_rows():
            if prev is not None and tuple_compare(prev, row, spec) > 0:
                return False
            prev = row
        return True

    def __repr__(self) -> str:
        return f"Table{self.schema} with {self.num_rows} rows"
