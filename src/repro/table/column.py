"""Column vectors: a typed numpy array plus a validity mask.

This is the DSM (Decomposition Storage Model) building block: each column of
a table lives in its own contiguous array.  NULLs are represented with a
separate boolean validity mask (True = value present), the same choice
DuckDB, Arrow, and most vectorized systems make, so the value array keeps a
uniform dtype.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import TypeError_
from repro.types.datatypes import DataType, TypeId, type_for_numpy_dtype

__all__ = ["ColumnVector"]


class ColumnVector:
    """A typed column of values with NULL tracking.

    Attributes:
        dtype: the logical type of the column.
        data: numpy array of physical values.  Slots that are NULL hold an
            unspecified (but type-valid) filler value.
        validity: boolean numpy array, True where the value is present.  A
            column with no NULLs may share one cached all-True mask.
    """

    __slots__ = ("dtype", "data", "validity")

    def __init__(
        self,
        dtype: DataType,
        data: np.ndarray,
        validity: np.ndarray | None = None,
    ) -> None:
        dtype.validate_array(data)
        if data.ndim != 1:
            raise TypeError_(f"column data must be 1-D, got shape {data.shape}")
        if validity is None:
            validity = np.ones(len(data), dtype=bool)
        if validity.shape != data.shape:
            raise TypeError_(
                f"validity shape {validity.shape} != data shape {data.shape}"
            )
        self.dtype = dtype
        self.data = data
        self.validity = np.asarray(validity, dtype=bool)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(
        cls, values: Iterable[Any], dtype: DataType | None = None
    ) -> "ColumnVector":
        """Build a column from a Python iterable; ``None`` entries are NULL.

        If ``dtype`` is omitted it is inferred: ints -> INTEGER (BIGINT if any
        value overflows 32 bits), floats -> DOUBLE, str -> VARCHAR,
        bool -> BOOLEAN.
        """
        values = list(values)
        if dtype is None:
            dtype = _infer_dtype(values)
        n = len(values)
        validity = np.array([v is not None for v in values], dtype=bool)
        if dtype.type_id is TypeId.VARCHAR:
            data = np.empty(n, dtype=object)
            for i, v in enumerate(values):
                data[i] = v if v is not None else ""
        else:
            filler: Any = 0
            data = np.array(
                [v if v is not None else filler for v in values],
                dtype=dtype.numpy_dtype,
            )
        return cls(dtype, data, validity)

    @classmethod
    def from_numpy(
        cls, array: np.ndarray, dtype: DataType | None = None
    ) -> "ColumnVector":
        """Wrap an existing numpy array (no NULLs) as a column."""
        if dtype is None:
            dtype = type_for_numpy_dtype(array.dtype)
        return cls(dtype, np.ascontiguousarray(array))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.data)

    @property
    def has_nulls(self) -> bool:
        return not bool(self.validity.all())

    @property
    def null_count(self) -> int:
        return int(len(self) - self.validity.sum())

    def value(self, index: int) -> Any:
        """The Python value at ``index`` (``None`` for NULL)."""
        if not self.validity[index]:
            return None
        raw = self.data[index]
        if self.dtype.type_id is TypeId.VARCHAR:
            return str(raw)
        if self.dtype.is_float:
            return float(raw)
        if self.dtype.type_id is TypeId.BOOLEAN:
            return bool(raw)
        return int(raw)

    def to_pylist(self) -> list[Any]:
        """All values as a Python list with ``None`` for NULLs."""
        return [self.value(i) for i in range(len(self))]

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def take(self, indices: np.ndarray) -> "ColumnVector":
        """Gather rows by position -- the payload-reorder primitive."""
        return ColumnVector(
            self.dtype, self.data[indices], self.validity[indices]
        )

    def slice(self, start: int, stop: int) -> "ColumnVector":
        """A zero-copy slice view of this column."""
        return ColumnVector(
            self.dtype, self.data[start:stop], self.validity[start:stop]
        )

    def concat(self, other: "ColumnVector") -> "ColumnVector":
        """This column followed by ``other`` (types must match)."""
        if other.dtype.type_id is not self.dtype.type_id:
            raise TypeError_(
                f"cannot concat {self.dtype.name} with {other.dtype.name}"
            )
        return ColumnVector(
            self.dtype,
            np.concatenate([self.data, other.data]),
            np.concatenate([self.validity, other.validity]),
        )

    def equals(self, other: "ColumnVector") -> bool:
        """Value equality including NULL positions (NULL == NULL here)."""
        if self.dtype.type_id is not other.dtype.type_id:
            return False
        if len(self) != len(other):
            return False
        if not np.array_equal(self.validity, other.validity):
            return False
        valid = self.validity
        if self.dtype.type_id is TypeId.VARCHAR:
            return all(
                self.data[i] == other.data[i]
                for i in np.flatnonzero(valid)
            )
        mine, theirs = self.data[valid], other.data[valid]
        if self.dtype.is_float:
            return bool(
                np.array_equal(mine, theirs)
                or np.allclose(mine, theirs, equal_nan=True)
            )
        return bool(np.array_equal(mine, theirs))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.to_pylist()[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"ColumnVector<{self.dtype.name}>[{preview}{suffix}]"


def _infer_dtype(values: Sequence[Any]) -> DataType:
    """Infer a logical type from Python values (used by from_values)."""
    from repro.types.datatypes import BIGINT, BOOLEAN, DOUBLE, INTEGER, VARCHAR

    non_null = [v for v in values if v is not None]
    if not non_null:
        return INTEGER
    if all(isinstance(v, bool) for v in non_null):
        return BOOLEAN
    if all(isinstance(v, int) and not isinstance(v, bool) for v in non_null):
        limit = 2**31
        if all(-limit <= v < limit for v in non_null):
            return INTEGER
        return BIGINT
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in non_null):
        return DOUBLE
    if all(isinstance(v, str) for v in non_null):
        return VARCHAR
    raise TypeError_(f"cannot infer a column type from values {non_null[:5]!r}")
