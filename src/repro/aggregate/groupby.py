"""Sort-based GROUP BY aggregation.

The paper's future work observes that "the aggregate, join, and window
operators are also blocking operators" sharing DuckDB's unified row
format.  This module is the aggregate: it materializes its input, sorts
by the grouping keys with the normalized-key sort operator, detects group
boundaries on the key bytes, and evaluates aggregates per group with
vectorized numpy (``np.add.reduceat`` and friends).

Sort-based (rather than hash-based) aggregation is exactly the design the
paper's row format enables: groups come out in key order, and the same
normalized keys drive both the sort and the boundary detection.

Supported aggregates: ``count`` (non-NULL of a column, or ``count(*)``),
``sum``, ``min``, ``max``, ``avg``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.stringsort import exact_group_changed
from repro.sort.operator import SortConfig, sort_table
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import BIGINT, DOUBLE
from repro.types.schema import ColumnDef, Schema
from repro.types.sortspec import SortKey, SortSpec

__all__ = ["Aggregate", "group_by"]

_AGGREGATES = ("count", "sum", "min", "max", "avg")


@dataclass(frozen=True)
class Aggregate:
    """One aggregate expression.

    Attributes:
        name: count / sum / min / max / avg.
        column: argument column; ``None`` means ``count(*)``.
        output: output column name (defaults to ``name_column``).
    """

    name: str
    column: str | None = None
    output: str | None = None

    def __post_init__(self) -> None:
        if self.name not in _AGGREGATES:
            raise SortError(
                f"unknown aggregate {self.name!r}; supported: {_AGGREGATES}"
            )
        if self.name != "count" and self.column is None:
            raise SortError(f"{self.name} needs an argument column")

    @property
    def output_name(self) -> str:
        if self.output:
            return self.output
        if self.column:
            return f"{self.name}_{self.column}"
        return "count_star"


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[Aggregate],
    config: SortConfig | None = None,
    presorted: bool = False,
) -> Table:
    """Group ``table`` by ``keys`` and evaluate ``aggregates`` per group.

    Output: one row per distinct key combination (NULL is a group, SQL
    semantics), key columns first in key order, then aggregate columns.

    ``presorted`` asserts the input already arrives sorted by ``keys``
    (ascending, NULLS LAST -- the exact spec this function would sort
    by): the internal sort is skipped and boundary detection runs
    directly.  The output is byte-identical either way, because the
    sort is stable and sorting an already-sorted table is the identity
    permutation.
    """
    keys = list(keys)
    if not keys:
        raise SortError("group_by needs at least one key column")
    if not aggregates:
        raise SortError("group_by needs at least one aggregate")
    names = [a.output_name for a in aggregates]
    if len(set(names)) != len(names) or any(n in keys for n in names):
        raise SortError("aggregate output names collide")
    for a in aggregates:
        if a.column is not None:
            dtype = table.schema.column(a.column).dtype
            if a.name in ("sum", "avg") and dtype.is_variable_width:
                raise SortError(f"{a.name} needs a numeric column")

    spec = SortSpec(tuple(SortKey(k) for k in keys))
    if presorted:
        sorted_table = table
    else:
        sorted_table = sort_table(table, spec, config)
    n = sorted_table.num_rows

    norm = normalize_keys(
        sorted_table, spec, string_prefix=MAX_STRING_PREFIX,
        include_row_id=False,
    )
    if n == 0:
        starts = np.zeros(0, dtype=np.int64)
    else:
        # Exact even for strings longer than the key prefix: truncated
        # VARCHAR segments are patched with one vectorized comparison of
        # the original values.
        changed = exact_group_changed(sorted_table, norm)
        starts = np.concatenate(([0], np.flatnonzero(changed) + 1)).astype(
            np.int64
        )

    # Key columns: first row of each group.
    out_columns: list[ColumnVector] = []
    out_defs: list[ColumnDef] = []
    for key in keys:
        column = sorted_table.column(key)
        out_columns.append(column.take(starts))
        out_defs.append(ColumnDef(key, column.dtype))

    stops = np.concatenate((starts[1:], [n])).astype(np.int64)
    for aggregate in aggregates:
        out_columns.append(
            _evaluate(aggregate, sorted_table, starts, stops)
        )
        out_defs.append(
            ColumnDef(aggregate.output_name, out_columns[-1].dtype)
        )
    return Table(Schema(tuple(out_defs)), out_columns)


def _evaluate(
    aggregate: Aggregate, sorted_table: Table, starts, stops
) -> ColumnVector:
    num_groups = len(starts)
    if aggregate.column is None:
        counts = (stops - starts).astype(np.int64)
        return ColumnVector(BIGINT, counts)

    column = sorted_table.column(aggregate.column)
    valid = column.validity.astype(np.int64)
    if aggregate.name == "count":
        counts = _reduceat_sum(valid, starts)
        return ColumnVector(BIGINT, counts.astype(np.int64))

    if column.dtype.is_variable_width:
        # min/max over strings: per-group Python reduction.
        values = []
        validity = np.zeros(num_groups, dtype=bool)
        out = np.empty(num_groups, dtype=object)
        for g, (start, stop) in enumerate(zip(starts, stops)):
            group = [
                column.value(r)
                for r in range(int(start), int(stop))
                if column.validity[r]
            ]
            if group:
                validity[g] = True
                out[g] = min(group) if aggregate.name == "min" else max(group)
            else:
                out[g] = ""
        del values
        return ColumnVector(column.dtype, out, validity)

    data = column.data.astype(np.float64)
    masked = np.where(column.validity, data, 0.0)
    counts = _reduceat_sum(valid, starts)
    validity = counts > 0
    if aggregate.name in ("sum", "avg"):
        sums = _reduceat_sum(masked, starts)
        if aggregate.name == "avg":
            safe = np.where(counts > 0, counts, 1)
            return ColumnVector(DOUBLE, sums / safe, validity)
        return ColumnVector(DOUBLE, sums, validity)
    # min / max: mask NULLs with the opposite extreme, reduce per group.
    if aggregate.name == "min":
        filler = np.inf
        reducer = np.minimum
    else:
        filler = -np.inf
        reducer = np.maximum
    masked = np.where(column.validity, data, filler)
    extremes = reducer.reduceat(masked, starts) if len(starts) else np.zeros(0)
    extremes = np.where(validity, extremes, 0.0)
    return ColumnVector(DOUBLE, extremes.astype(np.float64), validity)


def _reduceat_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    if len(starts) == 0:
        return np.zeros(0, dtype=np.float64)
    return np.add.reduceat(values, starts)
