"""Sort-based aggregation (GROUP BY)."""

from repro.aggregate.groupby import Aggregate, group_by

__all__ = ["Aggregate", "group_by"]
