"""NSM (row) storage: fixed-width aligned rows with a string heap."""

from repro.rows.block import RowBlock
from repro.rows.layout import ROW_ALIGNMENT, STRING_SLOT_WIDTH, RowLayout, RowSlot

__all__ = [
    "RowBlock",
    "ROW_ALIGNMENT",
    "STRING_SLOT_WIDTH",
    "RowLayout",
    "RowSlot",
]
