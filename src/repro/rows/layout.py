"""The NSM (row) layout: where each column lives inside a fixed-width row.

DuckDB's unified row format, as described in the paper's Figure 11, stores
rows with a fixed size and 8-byte alignment; variable-sized types (strings)
are stored separately in a heap and the row holds a fixed-width reference.
This module computes that layout for a schema:

* a leading validity bitmask (one bit per column, rounded up to whole bytes),
* one naturally-aligned slot per column -- fixed-width types store the value,
  VARCHAR stores ``(heap offset: uint32, byte length: uint32)``,
* the row size padded to a multiple of 8 bytes, because the paper found
  8-byte alignment "improves the performance of memcpy".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types.datatypes import DataType, TypeId
from repro.types.schema import Schema

__all__ = ["ROW_ALIGNMENT", "STRING_SLOT_WIDTH", "RowSlot", "RowLayout"]

ROW_ALIGNMENT = 8
"""Rows are padded to a multiple of this many bytes (paper, Section VII)."""

STRING_SLOT_WIDTH = 8
"""In-row width of a VARCHAR slot: uint32 heap offset + uint32 length."""


def _align(offset: int, alignment: int) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    remainder = offset % alignment
    return offset if remainder == 0 else offset + alignment - remainder


@dataclass(frozen=True)
class RowSlot:
    """One column's slot inside the row."""

    name: str
    dtype: DataType
    offset: int
    width: int

    @property
    def is_string(self) -> bool:
        return self.dtype.type_id is TypeId.VARCHAR


@dataclass(frozen=True)
class RowLayout:
    """Byte layout of one fixed-width row for a schema."""

    schema: Schema
    validity_bytes: int
    slots: tuple[RowSlot, ...]
    row_width: int

    @classmethod
    def for_schema(cls, schema: Schema) -> "RowLayout":
        """Compute the aligned row layout for ``schema``."""
        validity_bytes = (len(schema) + 7) // 8
        offset = validity_bytes
        slots = []
        for col in schema:
            if col.dtype.is_variable_width:
                width = STRING_SLOT_WIDTH
                alignment = 4
            else:
                width = col.dtype.fixed_width
                alignment = width
            offset = _align(offset, alignment)
            slots.append(RowSlot(col.name, col.dtype, offset, width))
            offset += width
        row_width = _align(offset, ROW_ALIGNMENT)
        return cls(schema, validity_bytes, tuple(slots), row_width)

    def slot(self, name: str) -> RowSlot:
        for s in self.slots:
            if s.name == name:
                return s
        raise KeyError(name)

    def validity_position(self, column_index: int) -> tuple[int, int]:
        """(byte offset, bit) of a column's validity bit within the row."""
        return column_index // 8, column_index % 8
