"""RowBlock: relational data materialized in NSM (row) form.

A :class:`RowBlock` holds ``n`` fixed-width rows as an ``(n, row_width)``
uint8 matrix plus a string heap, per the layout in
:mod:`repro.rows.layout`.  It provides the two conversions the paper's
Figure 1 shows -- DSM (vectors) to NSM (rows) and back -- and the gather
operation used to retrieve payload in sorted order.

The scatter/gather is vectorized per column: each column's values are
written into a strided view of the row matrix in one numpy operation, which
is the programmatic equivalent of converting "one vector at a time".
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConversionError
from repro.keys.encoding import utf8_byte_lengths
from repro.rows.layout import RowLayout
from repro.table.column import ColumnVector
from repro.table.table import Table
from repro.types.datatypes import TypeId
from repro.types.schema import Schema

__all__ = ["RowBlock", "gather_slices"]


def gather_slices(
    buffer: np.ndarray, offsets: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Concatenate ``buffer[offsets[i] : offsets[i] + lengths[i]]`` slices.

    One fancy-indexing gather instead of a per-slice Python loop: the flat
    source index of every output byte is its slice's start offset plus its
    position within the slice, both built with ``repeat``/``cumsum``.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=buffer.dtype)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        ends - lengths, lengths
    )
    return buffer[np.repeat(offsets, lengths) + within]


def _decode_string_slot(
    heap: bytes,
    offsets: np.ndarray,
    lengths: np.ndarray,
    validity: np.ndarray,
) -> np.ndarray:
    """Decode one string column out of the heap, vectorized.

    The referenced heap slices are gathered into a zero-padded
    ``(n, max_len)`` byte matrix with one fancy-indexing pass and decoded
    with a single ``np.strings.decode`` over an ``S``-dtype view.  Because
    the ``S`` view strips trailing NULs, any 0x00 byte *inside* a string
    falls back to the per-row decode loop (NULs are vanishingly rare in
    real text, so the vectorized path dominates).
    """
    n = len(offsets)
    data = np.empty(n, dtype=object)
    data.fill("")
    valid_indices = np.flatnonzero(validity & (lengths > 0))
    if not len(valid_indices):
        return data
    starts = offsets[valid_indices].astype(np.int64)
    sizes = lengths[valid_indices].astype(np.int64)
    heap_array = np.frombuffer(heap, dtype=np.uint8)
    gathered = gather_slices(heap_array, starts, sizes)
    if (gathered == 0).any():
        for index, start, size in zip(
            valid_indices.tolist(), starts.tolist(), sizes.tolist()
        ):
            data[index] = heap[start : start + size].decode("utf-8")
        return data
    width = int(sizes.max())
    padded = np.zeros((len(valid_indices), width), dtype=np.uint8)
    ends = np.cumsum(sizes)
    within = np.arange(len(gathered), dtype=np.int64) - np.repeat(
        ends - sizes, sizes
    )
    padded[np.repeat(np.arange(len(valid_indices)), sizes), within] = gathered
    decode = getattr(np, "strings", np.char).decode
    decoded = decode(padded.view(f"S{width}").reshape(-1), "utf-8")
    data[valid_indices] = decoded.astype(object)
    return data


class RowBlock:
    """Rows of a table in the fixed-width NSM format plus a string heap."""

    __slots__ = ("layout", "rows", "heap")

    def __init__(
        self, layout: RowLayout, rows: np.ndarray, heap: bytes
    ) -> None:
        if rows.dtype != np.uint8 or rows.ndim != 2:
            raise ConversionError("row matrix must be 2-D uint8")
        if rows.shape[1] != layout.row_width:
            raise ConversionError(
                f"row width {rows.shape[1]} != layout width {layout.row_width}"
            )
        self.layout = layout
        self.rows = rows
        self.heap = heap

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def schema(self) -> Schema:
        return self.layout.schema

    @property
    def row_width(self) -> int:
        return self.layout.row_width

    # ------------------------------------------------------------------ #
    # DSM -> NSM (scatter)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_table(cls, table: Table) -> "RowBlock":
        """Convert a columnar table to rows (the paper's 'columns to rows')."""
        layout = RowLayout.for_schema(table.schema)
        n = table.num_rows
        rows = np.zeros((n, layout.row_width), dtype=np.uint8)
        heap = bytearray()
        for col_index, slot in enumerate(layout.slots):
            column = table.column_at(col_index)
            byte_off, bit = layout.validity_position(col_index)
            rows[:, byte_off] |= (
                column.validity.astype(np.uint8) << np.uint8(bit)
            )
            if slot.is_string:
                offsets = np.zeros(n, dtype=np.uint32)
                lengths = np.zeros(n, dtype=np.uint32)
                valid_indices = np.flatnonzero(column.validity)
                if len(valid_indices):
                    # One join-encoded buffer for the whole column; the
                    # per-value (offset, length) slots follow from the
                    # vectorized UTF-8 byte lengths by offset arithmetic.
                    values = column.data[valid_indices]
                    byte_lengths = utf8_byte_lengths(values)
                    encoded = "".join(map(str, values)).encode("utf-8")
                    ends = np.cumsum(byte_lengths)
                    offsets[valid_indices] = len(heap) + ends - byte_lengths
                    lengths[valid_indices] = byte_lengths
                    heap.extend(encoded)
                view = rows[:, slot.offset : slot.offset + 8]
                view[:, :4] = offsets.view(np.uint8).reshape(n, 4)
                view[:, 4:] = lengths.view(np.uint8).reshape(n, 4)
            else:
                width = slot.width
                data = np.ascontiguousarray(column.data)
                raw = data.view(np.uint8).reshape(n, width)
                rows[:, slot.offset : slot.offset + width] = raw
        return cls(layout, rows, bytes(heap))

    # ------------------------------------------------------------------ #
    # NSM -> DSM (gather)
    # ------------------------------------------------------------------ #

    def to_table(self) -> Table:
        """Convert rows back to a columnar table ('rows to columns')."""
        n = len(self.rows)
        columns = []
        for col_index, slot in enumerate(self.layout.slots):
            byte_off, bit = self.layout.validity_position(col_index)
            validity = (self.rows[:, byte_off] >> np.uint8(bit)) & 1
            validity = validity.astype(bool)
            if slot.is_string:
                view = self.rows[:, slot.offset : slot.offset + 8]
                offsets = np.ascontiguousarray(view[:, :4]).view(np.uint32)
                lengths = np.ascontiguousarray(view[:, 4:]).view(np.uint32)
                offsets = offsets.reshape(-1)
                lengths = lengths.reshape(-1)
                data = _decode_string_slot(
                    self.heap, offsets, lengths, validity
                )
            else:
                raw = np.ascontiguousarray(
                    self.rows[:, slot.offset : slot.offset + slot.width]
                )
                data = raw.view(slot.dtype.numpy_dtype).reshape(-1).copy()
            columns.append(ColumnVector(slot.dtype, data, validity))
        return Table(self.schema, columns)

    # ------------------------------------------------------------------ #
    # Reordering
    # ------------------------------------------------------------------ #

    def take(self, indices: np.ndarray) -> "RowBlock":
        """Gather rows by position: one contiguous memcpy per output row.

        This is why NSM payload retrieval has the better access pattern the
        paper describes -- each gathered row is a single contiguous copy
        instead of one random access per column.
        """
        return RowBlock(self.layout, self.rows[indices], self.heap)

    def concat(self, other: "RowBlock") -> "RowBlock":
        """This block's rows followed by ``other``'s (re-basing its heap)."""
        if other.schema.names != self.schema.names:
            raise ConversionError("cannot concat row blocks of different schemas")
        shifted = other.rows.copy()
        heap_base = len(self.heap)
        for col_index, slot in enumerate(self.layout.slots):
            if not slot.is_string:
                continue
            byte_off, bit = self.layout.validity_position(col_index)
            valid = ((shifted[:, byte_off] >> np.uint8(bit)) & 1).astype(bool)
            view = shifted[:, slot.offset : slot.offset + 4]
            offsets = np.ascontiguousarray(view).view(np.uint32).reshape(-1)
            offsets = offsets + np.uint32(heap_base)
            raw = offsets.astype(np.uint32).view(np.uint8).reshape(-1, 4)
            shifted[valid, slot.offset : slot.offset + 4] = raw[valid]
        return RowBlock(
            self.layout,
            np.concatenate([self.rows, shifted]),
            self.heap + other.heap,
        )

    # ------------------------------------------------------------------ #
    # Point access (tests, debugging)
    # ------------------------------------------------------------------ #

    def value(self, row: int, column: str) -> Any:
        """The Python value of one field (``None`` for NULL)."""
        slot = self.layout.slot(column)
        col_index = self.schema.index_of(column)
        byte_off, bit = self.layout.validity_position(col_index)
        if not (int(self.rows[row, byte_off]) >> bit) & 1:
            return None
        raw = self.rows[row, slot.offset : slot.offset + slot.width]
        if slot.is_string:
            offset = int(np.ascontiguousarray(raw[:4]).view(np.uint32)[0])
            length = int(np.ascontiguousarray(raw[4:]).view(np.uint32)[0])
            return self.heap[offset : offset + length].decode("utf-8")
        value = np.ascontiguousarray(raw).view(slot.dtype.numpy_dtype)[0]
        if slot.dtype.is_float:
            return float(value)
        if slot.dtype.type_id is TypeId.BOOLEAN:
            return bool(value)
        return int(value)
