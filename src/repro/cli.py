"""Command-line interface: sort CSVs, run SQL, regenerate paper exhibits.

Usage::

    python -m repro sort data.csv --by "country DESC, year" -o sorted.csv
    python -m repro sql "SELECT a, count(*) FROM t GROUP BY a" --table t=data.csv
    python -m repro serve --table t=data.csv -q "SELECT * FROM t ORDER BY a" \
        --memory-budget 4M --threads 8
    python -m repro bench figure-9
    python -m repro bench --list
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.bench import (
    ablation_block_size,
    ablation_engine_paradigms,
    ablation_heuristic_chooser,
    ablation_merge_path,
    ablation_msd_pdq_fallback,
    ablation_radix_skip_copy,
    ablation_radix_switch,
    ablation_sorting_side_benefits,
    ablation_string_prefix,
    figure2_subsort_columnar,
    figure3_subsort_columnar_stable,
    figure4_row_vs_columnar,
    figure5_row_vs_columnar_stable,
    figure6_dynamic_comparator,
    figure8_normalized_keys,
    figure9_radix_vs_pdqsort,
    figure10_counters_radix_pdq,
    figure12_integers_floats,
    figure13_catalog_sales,
    figure14_customer,
    robustness_predictors,
    rungen_comparison_budget,
    table1_hardware,
    thread_scalability,
    table2_counters_columnar,
    table3_counters_row,
    table4_cardinalities,
)
from repro.engine import Database
from repro.errors import ReproError
from repro.sort.external import ExternalSortOperator, external_sort_table
from repro.sort.operator import SortConfig, SortOperator, sort_table
from repro.table.chunk import chunk_table
from repro.table.io import read_csv, table_to_csv_string, write_csv
from repro.table.table import Table
from repro.types.sortspec import SortSpec

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable] = {
    "table-1": table1_hardware,
    "table-2": table2_counters_columnar,
    "table-3": table3_counters_row,
    "table-4": table4_cardinalities,
    "figure-2": figure2_subsort_columnar,
    "figure-3": figure3_subsort_columnar_stable,
    "figure-4": figure4_row_vs_columnar,
    "figure-5": figure5_row_vs_columnar_stable,
    "figure-6": figure6_dynamic_comparator,
    "figure-8": figure8_normalized_keys,
    "figure-9": figure9_radix_vs_pdqsort,
    "figure-10": figure10_counters_radix_pdq,
    "figure-12": figure12_integers_floats,
    "figure-13": figure13_catalog_sales,
    "figure-14": figure14_customer,
    "section-2": rungen_comparison_budget,
    "robustness-predictors": robustness_predictors,
    "thread-scalability": thread_scalability,
    "ablation-prefix": ablation_string_prefix,
    "ablation-radix-switch": ablation_radix_switch,
    "ablation-merge-path": ablation_merge_path,
    "ablation-skip-copy": ablation_radix_skip_copy,
    "ablation-block-size": ablation_block_size,
    "ablation-heuristic": ablation_heuristic_chooser,
    "ablation-msd-pdq": ablation_msd_pdq_fallback,
    "ablation-paradigms": ablation_engine_paradigms,
    "ablation-side-benefits": ablation_sorting_side_benefits,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Row-based relational sorting (reproduction of Kuiper & "
            "Mühleisen, ICDE 2023)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sort_cmd = commands.add_parser("sort", help="sort a CSV file")
    sort_cmd.add_argument("input", help="input CSV path (with header)")
    sort_cmd.add_argument(
        "--by",
        required=True,
        help='ORDER BY spec, e.g. "country DESC NULLS LAST, year"',
    )
    sort_cmd.add_argument(
        "-o", "--output", help="output CSV path (default: stdout)"
    )
    sort_cmd.add_argument(
        "--algorithm",
        choices=["radix", "pdqsort", "heuristic"],
        help="override the run-sort algorithm choice",
    )
    sort_cmd.add_argument(
        "--external",
        action="store_true",
        help="spill sorted runs to disk (out-of-core sort)",
    )
    sort_cmd.add_argument(
        "--spill-dir",
        action="append",
        default=[],
        metavar="DIR",
        help=(
            "failover spill directory for --external (repeatable; tried "
            "in order when the primary spill target keeps failing)"
        ),
    )
    sort_cmd.add_argument(
        "--no-spill-checksums",
        action="store_true",
        help="skip CRC32 verification of spill file reads (--external)",
    )
    sort_cmd.add_argument(
        "--run-threshold",
        type=int,
        default=None,
        help="rows per sorted run (forces multi-run merging when small)",
    )
    sort_cmd.add_argument(
        "--no-compress-keys",
        action="store_true",
        help=(
            "disable runtime key compression (keep full-width normalized "
            "keys; compression narrows key columns to the byte widths "
            "their observed value ranges need)"
        ),
    )
    sort_cmd.add_argument(
        "--prefetch-blocks",
        type=int,
        default=None,
        metavar="N",
        help=(
            "read-ahead depth per spilled run per stream during --external "
            "merges (0 disables the prefetch threads; default 1)"
        ),
    )
    sort_cmd.add_argument(
        "--replacement-selection",
        choices=["auto", "on", "off"],
        default="auto",
        help=(
            "run generation for --external: 'on' forces replacement "
            "selection (longer runs on near-sorted input), 'off' forces "
            "plain argsort runs, 'auto' probes the first spill's "
            "presortedness (default)"
        ),
    )
    sort_cmd.add_argument(
        "--merge-fan-in",
        type=int,
        default=None,
        metavar="K",
        help=(
            "maximum runs merged per pass during --external merges "
            "(multipass when exceeded; 0 = single pass over all runs, "
            "the default)"
        ),
    )
    sort_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for multi-core sorting (morsel-driven run "
            "generation + Merge-Path merges over shared memory; 1 = serial, "
            "output is byte-identical either way)"
        ),
    )
    sort_cmd.add_argument(
        "--stats",
        action="store_true",
        help=(
            "print sort statistics to stderr (rows, runs, merge and "
            "offset-value-coding counters, string re-encode work, "
            "per-phase wall-clock)"
        ),
    )

    sql_cmd = commands.add_parser("sql", help="run a SQL query over CSVs")
    sql_cmd.add_argument("query", help="the SELECT statement")
    sql_cmd.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register a CSV file as a table (repeatable)",
    )
    sql_cmd.add_argument(
        "-o", "--output", help="output CSV path (default: stdout)"
    )
    sql_cmd.add_argument(
        "--explain",
        action="store_true",
        help="print the query plan instead of executing",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="run queries concurrently under a shared memory budget",
        description=(
            "Drive the thread-pool query service: register CSVs, submit "
            "every --query concurrently, and let the memory governor "
            "arbitrate sort memory between them.  Queries that cannot be "
            "admitted are rejected with a typed overload error instead "
            "of exhausting memory."
        ),
    )
    serve_cmd.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register a CSV file as a table (repeatable)",
    )
    serve_cmd.add_argument(
        "-q",
        "--query",
        action="append",
        default=[],
        metavar="SQL",
        help="a query to submit (repeatable; all run concurrently)",
    )
    serve_cmd.add_argument(
        "--memory-budget",
        default="64M",
        metavar="BYTES",
        help=(
            "total sort-memory budget shared by all concurrent queries, "
            "with an optional K/M/G suffix (default 64M)"
        ),
    )
    serve_cmd.add_argument(
        "--threads",
        type=int,
        default=4,
        metavar="N",
        help="service worker threads (default 4)",
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        metavar="N",
        help="bounded admission queue depth (default 32)",
    )
    serve_cmd.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="submit each query N times (default 1)",
    )
    serve_cmd.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query deadline; queries past it are cancelled",
    )
    serve_cmd.add_argument(
        "--external",
        action="store_true",
        help="run sorts out-of-core (spill runs to disk)",
    )
    serve_cmd.add_argument(
        "--run-threshold",
        type=int,
        default=None,
        help="rows per sorted run before the governor shrinks it",
    )
    serve_cmd.add_argument(
        "-o",
        "--output",
        help="write the last successful result as CSV (default: none)",
    )
    serve_cmd.add_argument(
        "--stats",
        action="store_true",
        help="print service statistics to stderr after the run",
    )

    bench_cmd = commands.add_parser(
        "bench", help="regenerate a paper table/figure or ablation"
    )
    bench_cmd.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id, one of: {', '.join(EXPERIMENTS)}",
    )
    bench_cmd.add_argument(
        "--list", action="store_true", help="list available experiments"
    )

    commands.add_parser("info", help="print version and simulator config")
    return parser


def _emit(table: Table, output: str | None) -> None:
    if output:
        write_csv(table, output)
    else:
        sys.stdout.write(table_to_csv_string(table))


def _cmd_sort(args: argparse.Namespace) -> int:
    table = read_csv(args.input)
    kwargs = {}
    if args.algorithm:
        kwargs["force_algorithm"] = args.algorithm
    if args.run_threshold:
        kwargs["run_threshold"] = args.run_threshold
    if args.workers < 1:
        raise ReproError("--workers must be at least 1")
    if args.workers > 1:
        kwargs["num_workers"] = args.workers
    if args.prefetch_blocks is not None:
        kwargs["prefetch_blocks"] = args.prefetch_blocks
    if args.replacement_selection != "auto":
        kwargs["replacement_selection"] = args.replacement_selection == "on"
    if args.merge_fan_in is not None:
        kwargs["merge_fan_in"] = args.merge_fan_in
    config = SortConfig(
        external=args.external,
        spill_directories=tuple(args.spill_dir),
        verify_spill_checksums=not args.no_spill_checksums,
        compress_keys=not args.no_compress_keys,
        **kwargs,
    )
    if not args.stats:
        if config.external:
            result = external_sort_table(table, args.by, config)
        else:
            result = sort_table(table, args.by, config)
        _emit(result, args.output)
        return 0
    # --stats drives the operators directly: the one-shot helpers do
    # not hand their SortStats back.
    spec = SortSpec.of(*[part.strip() for part in args.by.split(",")])
    if config.external:
        with ExternalSortOperator(table.schema, spec, config) as operator:
            for chunk in chunk_table(table, config.vector_size):
                operator.sink(chunk)
            result = operator.finalize()
            stats = operator.stats
    else:
        operator = SortOperator(table.schema, spec, config)
        for chunk in chunk_table(table, config.vector_size):
            operator.sink(chunk)
        result = operator.finalize()
        stats = operator.stats
    _emit(result, args.output)
    _print_sort_stats(stats)
    return 0


def _run_length_histogram(lengths) -> str:
    """Compact power-of-two histogram, e.g. ``8Ki-16Ki:3 32Ki-64Ki:1``."""
    buckets: dict[int, int] = {}
    for length in lengths:
        buckets[max(1, length).bit_length()] = (
            buckets.get(max(1, length).bit_length(), 0) + 1
        )

    def label(bits: int) -> str:
        lo = 1 << (bits - 1)
        for suffix, scale in (("Mi", 1 << 20), ("Ki", 1 << 10)):
            if lo >= scale:
                return f"{lo // scale}{suffix}-{2 * lo // scale}{suffix}"
        return f"{lo}-{2 * lo}"

    return " ".join(
        f"{label(bits)}:{buckets[bits]}" for bits in sorted(buckets)
    )


def _print_sort_stats(stats) -> None:
    """Render a SortStats to stderr, one ``name: value`` line per counter."""
    err = sys.stderr
    print(f"rows_sorted: {stats.rows_sorted}", file=err)
    print(f"runs_generated: {stats.runs_generated}", file=err)
    if stats.rungen_path:
        probe = (
            f" probe={stats.rungen_probe:.3f}"
            if stats.rungen_probe >= 0
            else ""
        )
        print(f"rungen: path={stats.rungen_path}{probe}", file=err)
    if stats.run_lengths:
        print(
            f"run_lengths: {_run_length_histogram(stats.run_lengths)}",
            file=err,
        )
    if stats.merge_passes:
        print(f"merge_passes: {stats.merge_passes}", file=err)
    fetches = stats.prefetch_hits + stats.prefetch_misses
    if fetches:
        print(
            "prefetch: "
            f"hits={stats.prefetch_hits} misses={stats.prefetch_misses} "
            f"hit_rate={stats.prefetch_hits / fetches:.2f} "
            f"peak_blocks={stats.prefetch_peak_blocks}",
            file=err,
        )
    if stats.algorithm:
        print(f"algorithm: {stats.algorithm}", file=err)
    print(f"prefix_exact: {stats.prefix_exact}", file=err)
    print(
        "merges: "
        f"kernel={stats.kernel_merges} scalar={stats.scalar_merges} "
        f"kway_kernel={stats.kernel_kway_merges} "
        f"kway_scalar={stats.scalar_kway_merges}",
        file=err,
    )
    print(
        "offset_value_coding: "
        f"compares={stats.ovc_compares} ties={stats.ovc_ties}",
        file=err,
    )
    print(
        "exact_strings: "
        f"full_key_compares={stats.full_key_compares} "
        f"reencode_rounds={stats.reencode_rounds} "
        f"reencoded_rows={stats.reencoded_rows}",
        file=err,
    )
    if (
        stats.sorts_elided
        or stats.sorts_subsumed
        or stats.sorts_refined
        or stats.refine_fallbacks
    ):
        print(
            "order_propagation: "
            f"elided={stats.sorts_elided} "
            f"subsumed={stats.sorts_subsumed} "
            f"refined={stats.sorts_refined} "
            f"refine_fallbacks={stats.refine_fallbacks}",
            file=err,
        )
    if stats.key_width_used:
        print(
            "key_width: "
            f"used={stats.key_width_used} full={stats.key_width_full}",
            file=err,
        )
    for phase in sorted(stats.phase_seconds):
        print(
            f"phase_{phase}_s: {stats.phase_seconds[phase]:.6f}", file=err
        )


def _cmd_sql(args: argparse.Namespace) -> int:
    database = Database()
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ReproError(
                f"--table expects NAME=PATH, got {spec!r}"
            )
        database.register(name, read_csv(path))
    if args.explain:
        print(database.explain(args.query))
        return 0
    _emit(database.execute(args.query), args.output)
    return 0


def parse_byte_size(text: str) -> int:
    """Parse ``"262144"``, ``"256K"``, ``"64M"`` or ``"1G"`` into bytes."""
    raw = text.strip()
    scale = 1
    suffixes = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if raw and raw[-1].upper() in suffixes:
        scale = suffixes[raw[-1].upper()]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise ReproError(
            f"invalid byte size {text!r} (expected an integer with an "
            "optional K/M/G suffix, e.g. 256K or 64M)"
        ) from None
    if value <= 0:
        raise ReproError(f"byte size must be positive, got {text!r}")
    return value * scale


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServiceOverloadError
    from repro.service import SortService

    if not args.query:
        raise ReproError("serve needs at least one --query")
    budget = parse_byte_size(args.memory_budget)
    kwargs = {"external": args.external}
    if args.run_threshold:
        kwargs["run_threshold"] = args.run_threshold
    database = Database(sort_config=SortConfig(**kwargs))
    for spec in args.table:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise ReproError(f"--table expects NAME=PATH, got {spec!r}")
        database.register(name, read_csv(path))

    queries = [sql for sql in args.query for _ in range(max(1, args.repeat))]
    last_result: Table | None = None
    rejected = 0
    failures = 0
    with SortService(
        database,
        memory_budget=budget,
        workers=args.threads,
        queue_limit=args.queue_limit,
    ) as service:
        tickets = []
        for sql in queries:
            try:
                tickets.append(
                    service.submit(sql, deadline_s=args.deadline)
                )
            except ServiceOverloadError as error:
                rejected += 1
                print(
                    f"rejected: {sql!r} ({error})",
                    file=sys.stderr,
                )
        for ticket in tickets:
            try:
                last_result = ticket.result()
                print(
                    f"ok: {ticket.sql!r} -> {last_result.num_rows} rows"
                    + (" (cached)" if ticket.from_cache else ""),
                    file=sys.stderr,
                )
            except ReproError as error:
                failures += 1
                print(f"failed: {ticket.sql!r} ({error})", file=sys.stderr)
        stats = service.stats
    if args.output and last_result is not None:
        write_csv(last_result, args.output)
    if args.stats:
        err = sys.stderr
        print(f"admitted: {stats.admitted}", file=err)
        print(f"completed: {stats.completed}", file=err)
        print(
            "rejected/shed/cancelled/timed_out: "
            f"{stats.rejected}/{stats.shed}/"
            f"{stats.cancelled}/{stats.timed_out}",
            file=err,
        )
        print(
            f"cache: hits={stats.cache_hits} misses={stats.cache_misses} "
            f"prefix_hits={stats.cache_prefix_hits}",
            file=err,
        )
        print(
            "order_propagation: "
            f"elided={stats.sorts_elided} subsumed={stats.sorts_subsumed}",
            file=err,
        )
        print(
            "governor: "
            f"waits={stats.grant_waits} "
            f"wait_s={stats.grant_wait_s:.3f} "
            f"revocations={stats.revocations} "
            f"peak_grants={stats.peak_active_grants} "
            f"forced_spills={stats.governor_forced_spills} "
            f"peak_spill_bytes={stats.peak_concurrent_spill_bytes}",
            file=err,
        )
        print(f"queue_peak: {stats.queue_peak}", file=err)
    return 1 if failures else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.list or not args.experiment:
        for name in EXPERIMENTS:
            print(name)
        return 0
    try:
        experiment = EXPERIMENTS[args.experiment]
    except KeyError:
        raise ReproError(
            f"unknown experiment {args.experiment!r}; "
            "use --list to see the available ids"
        ) from None
    print(experiment().render())
    return 0


def _cmd_info() -> int:
    from repro.sim.machine import Machine
    from repro.systems import HardwareProfile

    machine = Machine()
    profile = HardwareProfile()
    print(f"repro {__version__}")
    print(f"micro-benchmark simulator: {machine.caches}")
    print(
        "end-to-end model: "
        f"L1 {profile.l1_bytes // 1024} KiB, "
        f"L2 {profile.l2_bytes // 1024} KiB, "
        f"L3 {profile.l3_bytes // (1024 * 1024)} MiB, "
        f"{profile.threads} threads @ {profile.frequency_hz / 1e9:.1f} GHz"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "sort":
            return _cmd_sort(args)
        if args.command == "sql":
            return _cmd_sql(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "bench":
            return _cmd_bench(args)
        return _cmd_info()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream consumer (e.g. `head`) closed the pipe: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
