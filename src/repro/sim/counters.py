"""Performance counters: the simulator's answer to ``perf``.

The paper measures ``branch-misses`` and ``L1-dcache-load-misses`` with
Linux ``perf`` on a bare-metal Xeon.  Our simulated machine exposes the
same quantities (plus the instruction/overhead counts the cost model needs)
through a :class:`PerfCounters` record that supports snapshot arithmetic,
so experiments can report deltas over a region of interest exactly like
wrapping a region with ``perf stat``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Event counts accumulated by a simulated machine.

    Attributes:
        instructions: abstract executed operations (address arithmetic,
            ALU work); each memory access and branch also counts one.
        reads / writes: memory accesses issued.
        l1_hits / l1_misses: L1 data-cache line outcomes.
        l2_hits / l2_misses: L2 outcomes (zero when no L2 is configured).
        branches / branch_mispredictions: conditional branches executed and
            how many the predictor got wrong.
        function_calls: dynamic (indirect) calls -- the "function call
            overhead" of interpreted engines the paper discusses.
        interpretation_ops: per-value interpretation steps (type/order
            dispatch) -- the other interpreted-engine overhead.
        comparisons / swaps: algorithm-level events, for sanity checks
            against the analytic comparison counts of Section II.
    """

    instructions: int = 0
    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    branches: int = 0
    branch_mispredictions: int = 0
    function_calls: int = 0
    interpretation_ops: int = 0
    comparisons: int = 0
    swaps: int = 0

    def copy(self) -> "PerfCounters":
        return PerfCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def branch_miss_rate(self) -> float:
        return (
            self.branch_mispredictions / self.branches if self.branches else 0.0
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:
        return (
            f"instructions={self.instructions} accesses={self.accesses} "
            f"L1-miss={self.l1_misses} ({self.l1_miss_rate:.1%}) "
            f"branch-miss={self.branch_mispredictions} "
            f"({self.branch_miss_rate:.1%}) calls={self.function_calls} "
            f"interp={self.interpretation_ops}"
        )
