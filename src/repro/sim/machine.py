"""The simulated machine: caches + branch predictor + cost model.

A :class:`Machine` is what the instrumented sorting implementations in
:mod:`repro.simsort` run on.  Every memory access goes through the cache
hierarchy, every data-dependent branch through the branch predictor, and
every dynamic call / interpretation step is charged explicitly.  The
:class:`CostModel` then folds the counters into *simulated cycles* -- the
quantity our figures report where the paper reports wall-clock seconds.

The penalty constants are calibration knobs, set to textbook magnitudes
(L1 miss ~ 12 cycles to L2, ~ 60 to memory; mispredict ~ 15; indirect call
~ 25).  The paper's observed ratios -- e.g. the factor ~2 slowdown of a
dynamic comparator in Figure 6 -- emerge from these rather than being
hard-coded.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.branch import BranchPredictor, TwoBitPredictor
from repro.sim.cache import CacheHierarchy
from repro.sim.counters import PerfCounters
from repro.sim.memory import Arena

__all__ = ["CostModel", "Machine"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs charged per counted event."""

    instruction: float = 1.0
    l1_hit: float = 1.0
    l1_miss: float = 12.0
    l2_miss: float = 60.0
    branch: float = 0.5
    branch_misprediction: float = 15.0
    function_call: float = 16.0
    interpretation_op: float = 25.0

    def cycles(self, counters: PerfCounters) -> float:
        """Fold a counter delta into simulated cycles."""
        return (
            counters.instructions * self.instruction
            + counters.l1_hits * self.l1_hit
            + counters.l1_misses * self.l1_miss
            + counters.l2_misses * self.l2_miss
            + counters.branches * self.branch
            + counters.branch_mispredictions * self.branch_misprediction
            + counters.function_calls * self.function_call
            + counters.interpretation_ops * self.interpretation_op
        )


class Machine:
    """A simulated CPU core with caches, a branch predictor, and an arena."""

    __slots__ = ("arena", "caches", "predictor", "cost_model", "counters")

    def __init__(
        self,
        caches: CacheHierarchy | None = None,
        predictor: BranchPredictor | None = None,
        cost_model: CostModel | None = None,
        arena: Arena | None = None,
    ) -> None:
        self.caches = caches or CacheHierarchy.scaled_default()
        self.predictor = predictor or TwoBitPredictor()
        self.cost_model = cost_model or CostModel()
        self.arena = arena or Arena()
        self.counters = PerfCounters()

    # ------------------------------------------------------------------ #
    # Event recording (the hot path of every instrumented algorithm)
    # ------------------------------------------------------------------ #

    def read(self, address: int, size: int) -> None:
        """A load of ``size`` bytes; touches the covered cache lines."""
        c = self.counters
        c.reads += 1
        c.instructions += 1
        misses = self.caches.access(address, size)
        if misses:
            c.l1_misses += misses
            # L2 outcome was recorded inside the hierarchy; mirror it.
            self._mirror_lower_levels()
        else:
            c.l1_hits += 1

    def write(self, address: int, size: int) -> None:
        """A store of ``size`` bytes (write-allocate: same line behaviour)."""
        c = self.counters
        c.writes += 1
        c.instructions += 1
        misses = self.caches.access(address, size)
        if misses:
            c.l1_misses += misses
            self._mirror_lower_levels()
        else:
            c.l1_hits += 1

    def _mirror_lower_levels(self) -> None:
        """Copy the L2 hit/miss totals into the counters.

        The hierarchy keeps its own per-level totals; we sample them so the
        PerfCounters delta arithmetic works over any region of interest.
        """
        if len(self.caches.levels) > 1:
            l2 = self.caches.levels[1]
            self.counters.l2_hits = l2.hits
            self.counters.l2_misses = l2.misses

    def branch(self, site: object, taken: bool) -> bool:
        """A conditional branch; returns the outcome for convenience."""
        c = self.counters
        c.branches += 1
        c.instructions += 1
        if self.predictor.record(site, taken):
            c.branch_mispredictions += 1
        return taken

    def call(self, count: int = 1) -> None:
        """A dynamic (indirect / virtual / function-pointer) call."""
        self.counters.function_calls += count
        self.counters.instructions += count

    def interpret(self, count: int = 1) -> None:
        """A per-value interpretation step (type / sort-order dispatch)."""
        self.counters.interpretation_ops += count
        self.counters.instructions += count

    def instr(self, count: int = 1) -> None:
        """Plain ALU / bookkeeping work."""
        self.counters.instructions += count

    def compare(self, count: int = 1) -> None:
        """Algorithm-level comparison counter (not costed directly)."""
        self.counters.comparisons += count

    def swap(self, count: int = 1) -> None:
        """Algorithm-level swap/move counter (not costed directly)."""
        self.counters.swaps += count

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #

    def snapshot(self) -> PerfCounters:
        self._mirror_lower_levels()
        return self.counters.copy()

    def cycles(self, delta: PerfCounters | None = None) -> float:
        """Simulated cycles for ``delta`` (default: everything so far)."""
        return self.cost_model.cycles(delta or self.snapshot())

    @contextmanager
    def measure(self):
        """Context manager measuring a region: yields a live delta holder.

        >>> with machine.measure() as region:
        ...     run_algorithm()
        >>> region.counters.l1_misses, region.cycles
        """
        holder = _Measurement(self)
        start = self.snapshot()
        try:
            yield holder
        finally:
            holder._finish(self.snapshot() - start)

    def reset(self) -> None:
        """Clear counters and microarchitectural state (not allocations)."""
        self.counters = PerfCounters()
        self.caches.reset()
        self.predictor.reset()


class _Measurement:
    """Result holder produced by :meth:`Machine.measure`."""

    __slots__ = ("_machine", "counters", "cycles")

    def __init__(self, machine: Machine) -> None:
        self._machine = machine
        self.counters: PerfCounters | None = None
        self.cycles: float | None = None

    def _finish(self, delta: PerfCounters) -> None:
        self.counters = delta
        self.cycles = self._machine.cost_model.cycles(delta)

    def __str__(self) -> str:
        if self.counters is None:
            raise SimulationError("measurement still open")
        return f"{self.cycles:.0f} cycles; {self.counters}"
