"""The simulated machine: caches, branch predictors, arena, cost model."""

from repro.sim.branch import (
    AlwaysTakenPredictor,
    BranchPredictor,
    GShareBranchPredictor,
    TwoBitPredictor,
)
from repro.sim.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.sim.counters import PerfCounters
from repro.sim.machine import CostModel, Machine
from repro.sim.memory import Arena, Region

__all__ = [
    "AlwaysTakenPredictor",
    "BranchPredictor",
    "GShareBranchPredictor",
    "TwoBitPredictor",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "PerfCounters",
    "CostModel",
    "Machine",
    "Arena",
    "Region",
]
