"""The simulated address space: an arena allocator.

Instrumented data structures (the DSM and NSM layouts of
:mod:`repro.simsort`) need *addresses* so the cache simulator can classify
their accesses.  The arena hands out disjoint, aligned address ranges; the
actual values live in ordinary numpy arrays owned by the layouts -- the
arena only models where they would sit in memory.

Regions are padded apart by a line so that distinct allocations never
share a cache line (matching ``malloc``-ed arrays in the C++ benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemoryError, SimulationError

__all__ = ["Region", "Arena"]


@dataclass(frozen=True)
class Region:
    """One allocated address range."""

    base: int
    size: int
    label: str

    @property
    def end(self) -> int:
        return self.base + self.size

    def address_of(self, offset: int) -> int:
        """Byte address of ``offset`` within the region, bounds-checked."""
        if not 0 <= offset < self.size:
            raise SimulationError(
                f"offset {offset} out of bounds for region {self.label!r} "
                f"of {self.size} bytes"
            )
        return self.base + offset


class Arena:
    """Bump allocator over a bounded simulated address space."""

    __slots__ = ("capacity", "alignment", "_cursor", "regions")

    def __init__(
        self, capacity: int = 1 << 32, alignment: int = 64
    ) -> None:
        if capacity <= 0:
            raise SimulationError("arena capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise SimulationError("alignment must be a positive power of two")
        self.capacity = capacity
        self.alignment = alignment
        self._cursor = alignment  # keep address 0 unused
        self.regions: list[Region] = []

    def alloc(self, size: int, label: str = "") -> Region:
        """Allocate ``size`` bytes aligned to the arena alignment."""
        if size <= 0:
            raise SimulationError(f"allocation size must be positive: {size}")
        base = self._cursor
        end = base + size
        if end > self.capacity:
            raise OutOfMemoryError(
                f"arena exhausted: need {size} bytes at {base}, "
                f"capacity {self.capacity}"
            )
        # Advance past the region, re-aligning so regions never share lines.
        step = self.alignment
        self._cursor = ((end + step - 1) // step) * step
        region = Region(base, size, label)
        self.regions.append(region)
        return region

    @property
    def bytes_allocated(self) -> int:
        return sum(r.size for r in self.regions)
