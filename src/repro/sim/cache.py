"""Set-associative cache simulation with LRU replacement.

The paper's central explanation for NSM beating DSM is cache behaviour:
random accesses across separate column arrays miss the L1 data cache, while
co-located row keys hit it.  This module models exactly that mechanism: a
configurable set-associative, write-allocate, LRU cache hierarchy that
classifies each byte-addressed access as hit or miss per level.

Geometry defaults are scaled down from the paper's Xeon (32 KiB 8-way L1,
64-byte lines) in proportion to the scaled-down workloads, so the
working-set-vs-capacity crossovers land at the same *relative* input sizes
as the paper's Figures 2-5 (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["CacheConfig", "CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_size: int = 64
    associativity: int = 8
    name: str = "L1"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_size <= 0 or self.associativity <= 0:
            raise SimulationError("cache geometry must be positive")
        if self.size_bytes % (self.line_size * self.associativity):
            raise SimulationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways = {self.line_size * self.associativity}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)


class CacheLevel:
    """One level of set-associative cache with true-LRU replacement."""

    __slots__ = (
        "config",
        "_sets",
        "_num_sets",
        "_line_bits",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._num_sets = config.num_sets
        line = config.line_size
        if line & (line - 1):
            raise SimulationError("line size must be a power of two")
        self._line_bits = line.bit_length() - 1
        # Each set is an ordered list of tags; index 0 = most recent.
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access_line(self, line_address: int) -> bool:
        """Access one line (already address >> line_bits); True on hit."""
        set_index = line_address % self._num_sets
        ways = self._sets[set_index]
        try:
            position = ways.index(line_address)
        except ValueError:
            self.misses += 1
            ways.insert(0, line_address)
            if len(ways) > self.config.associativity:
                ways.pop()
                self.evictions += 1
            return False
        self.hits += 1
        if position:
            ways.pop(position)
            ways.insert(0, line_address)
        return True

    def line_of(self, address: int) -> int:
        return address >> self._line_bits

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class CacheHierarchy:
    """An inclusive multi-level hierarchy (L1 [+ L2 ...] + memory).

    ``access(address, size)`` touches every line the byte range covers;
    a line that misses level i is looked up in level i+1.  Returns the
    number of L1 misses the access caused (the paper's headline counter).
    """

    __slots__ = ("levels", "_line_bits")

    def __init__(self, configs: list[CacheConfig]) -> None:
        if not configs:
            raise SimulationError("need at least one cache level")
        line_sizes = {c.line_size for c in configs}
        if len(line_sizes) != 1:
            raise SimulationError("all levels must share one line size")
        self.levels = [CacheLevel(c) for c in configs]
        self._line_bits = self.levels[0]._line_bits

    @classmethod
    def scaled_default(cls) -> "CacheHierarchy":
        """The default scaled geometry: 4 KiB 8-way L1 + 32 KiB 8-way L2.

        The paper's Xeon has a 32 KiB L1; our micro-benchmarks run inputs
        scaled down ~8x in bytes, so an ~8x smaller L1 preserves where
        "data no longer fits in cache" happens relative to input size.
        """
        return cls(
            [
                CacheConfig(4 * 1024, line_size=64, associativity=8, name="L1"),
                CacheConfig(32 * 1024, line_size=64, associativity=8, name="L2"),
            ]
        )

    def access(self, address: int, size: int = 1) -> int:
        """Access ``size`` bytes at ``address``; returns L1 line misses."""
        if size <= 0:
            raise SimulationError(f"access size must be positive, got {size}")
        first = address >> self._line_bits
        last = (address + size - 1) >> self._line_bits
        l1_misses = 0
        for line in range(first, last + 1):
            missed_l1 = not self.levels[0].access_line(line)
            if missed_l1:
                l1_misses += 1
                for level in self.levels[1:]:
                    if level.access_line(line):
                        break
        return l1_misses

    def reset(self) -> None:
        for level in self.levels:
            level.reset()

    @property
    def l1(self) -> CacheLevel:
        return self.levels[0]

    def __str__(self) -> str:
        parts = [
            f"{lvl.config.name}: {lvl.config.size_bytes // 1024} KiB "
            f"{lvl.config.associativity}-way, {lvl.config.line_size} B lines"
            for lvl in self.levels
        ]
        return "; ".join(parts)
