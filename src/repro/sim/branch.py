"""Branch predictor models.

The second mechanism behind the paper's results is branch prediction: the
tuple-at-a-time comparator's "compare the next column?" branch is
unpredictable on correlated data, while subsort's single-column comparator
and radix sort are (nearly) branchless.  We model the predictors that
matter for that story:

* :class:`TwoBitPredictor` -- the classic per-site 2-bit saturating counter
  (the default; a good stand-in for a modern predictor on data-dependent
  branches, which are what sorting exposes).
* :class:`GShareBranchPredictor` -- global-history XOR indexing, to show
  results are robust to a smarter predictor.
* :class:`AlwaysTakenPredictor` -- a degenerate baseline.

Each predictor observes ``(site, taken)`` and reports whether the hardware
would have mispredicted.  ``site`` identifies the static branch (a stable
string or int), as the PC would.
"""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = [
    "BranchPredictor",
    "AlwaysTakenPredictor",
    "TwoBitPredictor",
    "GShareBranchPredictor",
]


class BranchPredictor:
    """Interface: observe an executed branch, return True if mispredicted."""

    def record(self, site: object, taken: bool) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class AlwaysTakenPredictor(BranchPredictor):
    """Predicts every branch taken; mispredicts every not-taken branch."""

    def record(self, site: object, taken: bool) -> bool:
        return not taken

    def reset(self) -> None:  # stateless
        return None


class TwoBitPredictor(BranchPredictor):
    """Per-site 2-bit saturating counters.

    States 0-1 predict not-taken, 2-3 predict taken; each outcome nudges
    the counter.  A branch that alternates unpredictably mispredicts about
    half the time -- exactly the behaviour the paper's comparator analysis
    relies on.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[object, int] = {}

    def record(self, site: object, taken: bool) -> bool:
        counter = self._counters.get(site, 2)  # weakly taken initially
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        if taken:
            if counter < 3:
                self._counters[site] = counter + 1
        else:
            if counter > 0:
                self._counters[site] = counter - 1
        return mispredicted

    def reset(self) -> None:
        self._counters.clear()


class GShareBranchPredictor(BranchPredictor):
    """gshare: 2-bit counters indexed by (site hash XOR global history)."""

    __slots__ = ("_history_bits", "_history", "_table", "_mask")

    def __init__(self, history_bits: int = 8, table_bits: int = 12) -> None:
        if history_bits <= 0 or table_bits <= 0:
            raise SimulationError("history and table bits must be positive")
        if history_bits > table_bits:
            raise SimulationError("history cannot exceed table index width")
        self._history_bits = history_bits
        self._history = 0
        self._mask = (1 << table_bits) - 1
        self._table = [2] * (1 << table_bits)

    def record(self, site: object, taken: bool) -> bool:
        index = (hash(site) ^ self._history) & self._mask
        counter = self._table[index]
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        else:
            if counter > 0:
                self._table[index] = counter - 1
        self._history = (
            (self._history << 1) | int(taken)
        ) & ((1 << self._history_bits) - 1)
        return mispredicted

    def reset(self) -> None:
        self._history = 0
        self._table = [2] * (self._mask + 1)
