"""Streaming incremental sort: a sorted view maintained over deltas.

The first "continuously serving" workload (ROADMAP): instead of sorting
one materialized table, a consumer keeps a **sorted view** alive while
batches of new rows arrive.  Each delta is sorted with the same vector
kernels the one-shot operator uses (:func:`repro.sort.heuristic.
vector_sort_rows` over normalized keys), buffered as a sorted run, and
runs are periodically **compacted** into the view through the existing
block-streaming k-way kernel (:func:`repro.sort.kway.
kway_merge_indices`) -- so steady-state serving exercises exactly the
merge machinery the external sort spills through, minus the disk.

Ordering semantics match the one-shot operator bit for bit:

* Row ids are assigned in arrival order across the whole stream
  (``row_id_base`` advances per delta), and both the per-delta sort and
  the k-way merge are stable with earlier-run-wins ties, so the view
  equals ``sort_table(concat(deltas), spec)`` -- the differential tests
  assert byte identity against the tuple-key oracle.
* Truncated VARCHAR prefixes: stored runs stay in raw **byte order**
  (the k-way kernel requires memcmp-sorted input, which string-refined
  rows violate -- the same reason the external sort gates its multipass
  merges on inexactness), and the exact full-string order is produced
  at ``view()`` time by one adaptive tie-break re-encoding pass
  (:func:`repro.sort.stringsort.refine_key_order`) over the compacted
  view, cached until the next insert.  Long-string views are exact.

Amortization: deltas accumulate as sorted runs until
``compact_threshold`` runs exist, then one k-way merge folds them into
the view (the LSM-ish policy); ``view()`` always compacts first, so a
read sees every insert.  ``IncrementalStats`` records deltas, runs
merged, rows moved by compaction, and the dispatch/refine counters via
an embedded :class:`~repro.sort.operator.SortStats`.

The service integration (``SortService.maintain_view`` /
``append_delta`` / ``view_snapshot``) runs inserts and compactions on
the service's worker pool under its memory governor -- see
:mod:`repro.service.core`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.heuristic import vector_sort_rows
from repro.sort.kernels import KWayBlockStats
from repro.sort.kway import kway_merge_indices
from repro.sort.operator import SortConfig, SortStats, raise_if_cancelled
from repro.sort.stringsort import refine_key_order
from repro.table.table import Table
from repro.types.datatypes import TypeId
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec

__all__ = ["DEFAULT_COMPACT_THRESHOLD", "IncrementalSorter", "IncrementalStats"]

DEFAULT_COMPACT_THRESHOLD = 8
"""Sorted runs buffered before an automatic compaction merges them."""


@dataclass
class IncrementalStats:
    """What the maintained view did: insert, compaction, and sort work.

    ``rows_compacted`` counts rows *moved* by compaction merges (a row
    merged in three compactions counts three times -- the write
    amplification of the maintenance policy); ``peak_runs`` is the most
    sorted runs buffered at once.  ``sort`` holds the per-delta dispatch
    and refine counters (``vector_sort_paths``, ``full_key_compares``,
    ...), and ``kway`` the merge kernel's frontier counters.
    """

    deltas_inserted: int = 0
    rows_inserted: int = 0
    compactions: int = 0
    runs_compacted: int = 0
    rows_compacted: int = 0
    peak_runs: int = 0
    sort: SortStats = field(default_factory=SortStats)
    kway: KWayBlockStats = field(default_factory=KWayBlockStats)


@dataclass
class _SortedRun:
    """One sorted run of the view: full-width keys plus payload rows."""

    keys: np.ndarray  # (n, total_width) uint8, sorted, row-id suffix included
    table: Table  # payload rows in key order


class IncrementalSorter:
    """Maintains a sorted view of everything inserted so far.

    Use as::

        sorter = IncrementalSorter(schema, SortSpec.of("a DESC", "b"))
        sorter.insert(first_batch)
        sorter.insert(second_batch)
        snapshot = sorter.view()   # sorted over both batches

    Requires the vector kernels (``SortConfig.use_vector_kernels``); the
    scalar path survives only as the one-shot oracle the differential
    tests compare against.
    """

    def __init__(
        self,
        schema: Schema,
        spec: SortSpec | str,
        config: SortConfig | None = None,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        if isinstance(spec, str):
            spec = SortSpec.of(*[part.strip() for part in spec.split(",")])
        if compact_threshold < 2:
            raise SortError("compact_threshold must be at least 2")
        self.schema = schema
        self.spec = spec
        self.config = config or SortConfig()
        if not self.config.use_vector_kernels:
            raise SortError(
                "IncrementalSorter requires use_vector_kernels=True; the "
                "scalar path is the one-shot oracle, not a maintained view"
            )
        for name in spec.column_names:
            schema.column(name)  # raises SchemaError on unknown columns
        self.compact_threshold = compact_threshold
        self.stats = IncrementalStats()
        self._runs: list[_SortedRun] = []
        self._next_row_id = 0
        self._key_width: int | None = None
        self._view_cache: Table | None = None
        # The widest-inexactness layout seen: refinement consults segment
        # prefix_exact flags, and a later delta whose strings all fit the
        # prefix must not mask an earlier delta's truncation.
        self._refine_layout = None
        self._has_string_key = any(
            schema.column(name).dtype.type_id is TypeId.VARCHAR
            for name in spec.column_names
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        """Rows inserted so far (equals ``len(view())``)."""
        return self._next_row_id

    @property
    def pending_runs(self) -> int:
        """Sorted runs currently buffered (1 after a compaction)."""
        return len(self._runs)

    # ------------------------------------------------------------------ #
    # Insert
    # ------------------------------------------------------------------ #

    def insert(self, delta: Table) -> None:
        """Sort one arriving batch and buffer it as a run."""
        if delta.schema.names != self.schema.names:
            raise SortError(
                f"delta schema {delta.schema.names} does not match view "
                f"schema {self.schema.names}"
            )
        raise_if_cancelled(self.config)
        if delta.num_rows == 0:
            return
        # One fixed layout across deltas: forced 12-byte VARCHAR prefix
        # (like the one-shot operator's multi-run rule), no stats-driven
        # compression -- every run must memcmp against every other.
        string_prefix = self.config.string_prefix
        if string_prefix is None and self._has_string_key:
            string_prefix = MAX_STRING_PREFIX
        keys = normalize_keys(
            delta,
            self.spec,
            string_prefix=string_prefix,
            include_row_id=True,
            row_id_base=self._next_row_id,
            row_id_width=8,
        )
        width = keys.layout.key_width
        if self._key_width is None:
            self._key_width = width
        elif width != self._key_width:
            raise SortError(
                f"delta key width {width} != view key width "
                f"{self._key_width}"
            )
        if not keys.prefix_exact:
            if not self.config.exact_varchar:
                raise SortError(
                    "exact_varchar=False is not supported by the "
                    "incremental sorter: prefix-only views drift as "
                    "deltas arrive"
                )
            self._merge_refine_layout(keys.layout)
        order = vector_sort_rows(
            keys.matrix[:, :width],
            width,
            self.stats.sort,
            self.stats.sort.radix,
        )
        # Stored in raw byte order (refinement happens per view): the
        # compaction kernel requires memcmp-sorted runs.
        matrix = keys.matrix[order]
        table = delta.take(order)
        self._next_row_id += delta.num_rows
        self._view_cache = None
        self._runs.append(_SortedRun(matrix, table))
        self.stats.deltas_inserted += 1
        self.stats.rows_inserted += delta.num_rows
        # Each delta is one sorted run; mirror the operator counters so
        # run-shape consumers (the bench matrix) see the same fields.
        self.stats.sort.runs_generated += 1
        self.stats.sort.run_lengths.append(delta.num_rows)
        self.stats.sort.rows_sorted += delta.num_rows
        self.stats.peak_runs = max(self.stats.peak_runs, len(self._runs))
        if len(self._runs) >= self.compact_threshold:
            self._compact()

    def _merge_refine_layout(self, layout) -> None:
        """Accumulate the pessimistic layout for view refinement."""
        if self._refine_layout is None:
            self._refine_layout = layout
            return
        merged = tuple(
            dataclasses.replace(
                kept, prefix_exact=kept.prefix_exact and new.prefix_exact
            )
            for kept, new in zip(
                self._refine_layout.segments, layout.segments
            )
        )
        self._refine_layout = dataclasses.replace(
            self._refine_layout, segments=merged
        )

    # ------------------------------------------------------------------ #
    # Compaction / view
    # ------------------------------------------------------------------ #

    def view(self) -> Table:
        """The sorted view over every row inserted so far.

        Compacts pending runs, then (with truncated string prefixes)
        refines the byte order to exact full-string order.  The refined
        snapshot is cached until the next insert, so steady reads of an
        unchanged view cost nothing.
        """
        raise_if_cancelled(self.config)
        if not self._runs:
            return Table.empty(self.schema)
        if self._view_cache is None:
            self._compact()
            run = self._runs[0]
            self._view_cache = (
                run.table
                if self._refine_layout is None
                else self._refine(run.keys, run.table, self._refine_layout)[1]
            )
        return self._view_cache

    def _compact(self) -> None:
        """Fold every buffered run into one through the k-way kernel."""
        if len(self._runs) <= 1:
            return
        raise_if_cancelled(self.config)
        width = self._key_width
        # Runs are kept in arrival order, so row ids ascend run to run
        # and the kernel's earlier-run-wins tie rule is exactly the
        # stable (row-id) order -- no suffix comparison needed.
        run_ids, row_ids = kway_merge_indices(
            [run.keys[:, :width] for run in self._runs],
            block_stats=self.stats.kway,
        )
        offsets = np.zeros(len(self._runs), dtype=np.int64)
        np.cumsum(
            [len(run.keys) for run in self._runs[:-1]], out=offsets[1:]
        )
        gather = offsets[run_ids] + row_ids
        merged_keys = np.concatenate(
            [run.keys for run in self._runs], axis=0
        )[gather]
        merged_table = self._concat_tables(
            [run.table for run in self._runs]
        ).take(gather)
        self.stats.compactions += 1
        self.stats.runs_compacted += len(self._runs)
        self.stats.rows_compacted += len(merged_keys)
        self._runs = [_SortedRun(merged_keys, merged_table)]

    @staticmethod
    def _concat_tables(parts: list[Table]) -> Table:
        while len(parts) > 1:
            parts = [
                parts[i].concat(parts[i + 1])
                if i + 1 < len(parts)
                else parts[i]
                for i in range(0, len(parts), 2)
            ]
        return parts[0]

    def _refine(
        self, matrix: np.ndarray, table: Table, layout
    ) -> tuple[np.ndarray, Table]:
        """Repair byte-order to exact full-string order (sorted input)."""

        def fetch_tied(tied: np.ndarray):
            def get(name: str):
                column = table.column(name)
                return column.data[tied], column.validity[tied]

            return get

        perm = refine_key_order(
            matrix[:, : self._key_width],
            layout,
            fetch_tied,
            self.stats.sort,
        )
        if perm is None:
            return matrix, table
        return matrix[perm], table.take(perm)
