"""Adaptive tie-break re-encoding for exact string sorting.

Normalized keys carry at most :data:`~repro.keys.normalizer.MAX_STRING_PREFIX`
bytes per VARCHAR segment, so two long strings sharing a prefix compare equal
on the key matrix even when the full values differ.  Historically that
demoted the whole pipeline to per-row Python compares (or a hard error in the
external sort).  This module makes the vector path exact instead:

* :func:`refine_key_order` repairs a prefix-sorted permutation.  Rows tied
  on the key bytes up to the first inexact VARCHAR segment are grouped with
  one vectorized adjacent-row comparison; each inexact segment is then
  resolved in key order -- its tie groups are re-encoded at progressively
  wider string offsets (chunks of :data:`CHUNK_WIDTH` bytes past the already
  compared prefix) and re-sorted with a stable ``np.lexsort``, subdividing
  groups until every group is a singleton or the strings are exhausted.
  Between segments the groups are extended with the key bytes separating
  them, so a full string always outranks every later ORDER BY column.  Work
  per round is proportional to the rows still tied: unique-prefix inputs pay
  nothing, pathological shared-prefix inputs pay ``O(ties * extra_bytes)``.
* :func:`exact_group_changed` is the boundary-detection analogue for
  GROUP BY / PARTITION BY consumers: the prefix boundary mask ORed with an
  exact elementwise string comparison on the inexact segments.

String order here is zero-padded UTF-8 byte order, identical to Python's
``str`` ordering for text without embedded NUL characters (UTF-8 preserves
codepoint order and the zero pad byte sorts before every real byte).
Strings that differ only by trailing NUL codepoints are treated as equal;
their relative order falls back to the stable row-id tiebreak.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.keys.encoding import utf8_byte_lengths

__all__ = [
    "CHUNK_WIDTH",
    "exact_group_changed",
    "inexact_prefix_end",
    "refine_key_order",
    "refinement_must_defer",
]

#: Bytes of string tail re-encoded per refinement round.  Wide enough that a
#: typical tie resolves in one round, narrow enough that rows differing right
#: after the prefix do not drag in a long tail.
CHUNK_WIDTH = 16


def inexact_prefix_end(layout) -> int | None:
    """End byte of the first truncated VARCHAR segment, or ``None``.

    Rows equal on the key bytes up to this offset may still need full-string
    comparison; rows that differ within it are already ordered exactly.
    Callers batching refinement (the external merge's carry buffer) use it
    as the tie-group criterion.
    """
    for segment in layout.segments:
        if not segment.prefix_exact:
            return segment.offset + segment.total_width
    return None


def refinement_must_defer(layout) -> bool:
    """True when key bytes follow the first truncated VARCHAR segment.

    Refinement stable-sorts byte-equal tie groups on their full strings,
    which scrambles every *later* key segment's bytes within the group.
    With nothing after the truncated segment but the row-id suffix
    (which merges never compare) a refined run stays memcmp-mergeable;
    with later ORDER BY columns it does not -- the merge kernels would
    consume runs that are no longer byte-sorted.  Such sorts must keep
    every run and intermediate merge in raw byte order and refine only
    the final merged result (whose tie groups then arrive ordered by
    the remaining key bytes and row id, exactly the stable-refinement
    precondition).
    """
    end = inexact_prefix_end(layout)
    return end is not None and end < layout.key_width


def _tie_groups(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """Positions and group ids of rows tied with a neighbour.

    ``matrix`` rows must be sorted, so equal rows are adjacent.  Returns
    ``(tied, group_ids)`` -- the ascending positions of every row in a group
    of two or more equal rows, and the 0-based non-decreasing group ordinal
    of each -- or ``None`` when every row is unique.
    """
    n = len(matrix)
    if n < 2:
        return None
    same = np.all(matrix[1:] == matrix[:-1], axis=1)
    if not same.any():
        return None
    boundary = np.concatenate(([True], ~same))
    ids = np.cumsum(boundary) - 1
    counts = np.bincount(ids)
    tied = np.flatnonzero(counts[ids] > 1)
    return tied, ids[tied]


def _refine_segment(
    order: np.ndarray,
    groups: np.ndarray,
    values: np.ndarray,
    validity: np.ndarray,
    descending: bool,
    start_byte: int,
    stats,
) -> tuple[np.ndarray, np.ndarray]:
    """One segment's chunked re-encode loop over the current tie groups.

    ``order`` maps sorted slot -> tied-row index; ``groups`` is the
    non-decreasing group id per slot.  The sort is stable, so rows whose
    string tails are fully equal keep their current relative order -- which
    is their order on the remaining key bytes (later ORDER BY columns, then
    the row id).  Returns the refined ``(order, groups)`` pair, with groups
    subdivided down to string-tail equality classes.
    """
    # Flat UTF-8 buffer for the tied rows only (NULLs encode as empty:
    # the key prefix's NULL byte already separated them into their own
    # groups, so they simply stay tied and keep stable order).
    texts = [
        str(v) if ok else ""
        for v, ok in zip(values.tolist(), np.asarray(validity).tolist())
    ]
    source = np.asarray(texts, dtype=object)
    lengths = utf8_byte_lengths(source).astype(np.int64)
    buffer = np.frombuffer("".join(texts).encode("utf-8"), dtype=np.uint8)
    starts = np.cumsum(lengths) - lengths

    pos = int(start_byte)
    while True:
        counts = np.bincount(groups)
        multi = counts[groups] > 1
        if not (multi & (lengths[order] > pos)).any():
            break
        # Every row of a still-multi group participates: rows whose string
        # is exhausted compare as all-pad (sort first ascending, last
        # descending), exactly the zero-padded semantics of the key prefix.
        rows = np.flatnonzero(multi)
        idx = order[rows]
        take = np.clip(lengths[idx] - pos, 0, CHUNK_WIDTH)
        chunk = np.zeros((len(rows), CHUNK_WIDTH), dtype=np.uint8)
        total = int(take.sum())
        if total:
            within = np.arange(total) - np.repeat(np.cumsum(take) - take, take)
            dest = np.repeat(np.arange(len(rows)), take)
            chunk[dest, within] = buffer[
                np.repeat(starts[idx] + pos, take) + within
            ]
        if descending:
            np.subtract(255, chunk, out=chunk)
        # Stable sort: group id is the primary key (ids are non-decreasing
        # in slot order, so equal ids are contiguous), the chunk bytes the
        # secondary keys, and the slot ordinal the explicit final tiebreak.
        sub = np.lexsort(
            (np.arange(len(rows)),)
            + tuple(chunk.T[::-1])
            + (groups[rows],)
        )
        order[rows] = idx[sub]
        chunk_sorted = chunk[sub]
        g_sorted = groups[rows][sub]

        # Subdivide: a new boundary wherever the chunk (or group) changed.
        changed = np.concatenate(([True], groups[1:] != groups[:-1]))
        if len(rows) > 1:
            diff = (g_sorted[1:] != g_sorted[:-1]) | np.any(
                chunk_sorted[1:] != chunk_sorted[:-1], axis=1
            )
            changed[rows[1:]] |= diff
        groups = np.cumsum(changed) - 1
        pos += CHUNK_WIDTH
        if stats is not None:
            stats.reencode_rounds += 1
            stats.reencoded_rows += len(rows)
    return order, groups


def refine_key_order(
    matrix: np.ndarray,
    layout,
    fetch_tied: Callable[[np.ndarray], Callable[[str], tuple[np.ndarray, np.ndarray]]],
    stats=None,
) -> np.ndarray | None:
    """Turn a prefix-sorted permutation into an exact one.

    Args:
        matrix: the sorted key matrix truncated to ``layout.key_width``
            (no row-id suffix).
        layout: the :class:`~repro.keys.normalizer.KeyLayout` that produced
            it; only segments with ``prefix_exact=False`` are refined.
        fetch_tied: called once with the tied row positions; returns a
            getter ``get(column_name) -> (values, validity)`` for those rows
            (lets callers gather from tables, row blocks, or spilled runs).
        stats: optional ``SortStats``; ``full_key_compares`` counts the tied
            rows whose full strings were consulted, ``reencode_rounds`` /
            ``reencoded_rows`` the re-encode work.

    Tie groups start as runs of rows equal on the key bytes up to the first
    inexact segment (later bytes must not pre-partition them: the full
    string outranks every later ORDER BY column).  Each inexact segment is
    refined in key order; before the next one, groups are extended with the
    exact key bytes separating the two segments -- within a group the rows
    are stable-sorted by those bytes already, so adjacent comparison
    suffices.

    Returns a full-length permutation to apply on top of the prefix order,
    or ``None`` when the prefix order is already exact.
    """
    inexact = [s for s in layout.segments if not s.prefix_exact]
    if not inexact:
        return None
    covered = inexact[0].offset + inexact[0].total_width
    found = _tie_groups(matrix[:, :covered])
    if found is None:
        return None
    tied, groups = found
    groups = groups.astype(np.int64)
    get = fetch_tied(tied)
    if stats is not None:
        stats.full_key_compares += len(tied)
    order = np.arange(len(tied), dtype=np.int64)
    for segment in inexact:
        end = segment.offset + segment.total_width
        if end > covered:
            # Extend group equality with the exact bytes between the
            # previous inexact segment and this one, in current slot
            # order (stable refinement kept equal-tail rows sorted by
            # their remaining key bytes, so runs stay adjacent).
            block = matrix[tied[order], covered:end]
            changed = np.concatenate(([True], groups[1:] != groups[:-1]))
            if len(block) > 1:
                changed[1:] |= np.any(block[1:] != block[:-1], axis=1)
            groups = np.cumsum(changed) - 1
            covered = end
        if np.bincount(groups).max() <= 1:
            break
        values, validity = get(segment.key.column)
        order, groups = _refine_segment(
            order,
            groups,
            values,
            validity,
            segment.key.descending,
            segment.value_width,
            stats,
        )
    perm = np.arange(len(matrix), dtype=np.int64)
    perm[tied] = tied[order]
    return perm


def exact_group_changed(sorted_table, norm) -> np.ndarray:
    """Exact adjacent-row "key changed" mask for a sorted table.

    ``norm`` is the :class:`~repro.keys.normalizer.NormalizedKeys` of the
    sorted table (no row-id suffix).  The prefix mask is exact for every
    segment except truncated VARCHAR prefixes; those are patched with one
    vectorized elementwise comparison of the original string values -- the
    prefix already separates NULL from valid rows, so only valid/valid pairs
    need the value check.
    """
    changed = np.any(norm.matrix[1:] != norm.matrix[:-1], axis=1)
    if norm.prefix_exact:
        return changed
    for segment in norm.layout.segments:
        if segment.prefix_exact:
            continue
        column = sorted_table.column(segment.key.column)
        values = column.data
        valid = column.validity
        changed |= (values[1:] != values[:-1]) & valid[1:] & valid[:-1]
    return changed
