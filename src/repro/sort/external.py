"""External (out-of-core) sorting: graceful degradation beyond memory.

The paper's future-work section calls for blocking operators whose
"performance gracefully degrades as the data size exceeds the memory
limit", using the unified row format "to offload the data to secondary
storage".  This module implements that design for the sort operator:

* runs are generated exactly as in :mod:`repro.sort.operator` (normalized
  keys + row-format payload), but once sorted each run is **spilled** to a
  temporary file instead of held in memory;
* finalization streams the spilled runs back block-by-block through a k-way
  merge, so peak memory is O(num_runs * block_rows) instead of O(n).

The spill format per run is a single ``.npz`` with the sorted key matrix,
the payload row matrix, and the string heap -- the unified row format
serializes trivially because it is already flat bytes.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import SortError
from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.rows.block import RowBlock
from repro.rows.layout import RowLayout
from repro.sort.kernels import argsort_rows
from repro.sort.kway import cascade_merge_indices
from repro.sort.operator import SortConfig
from repro.sort.pdqsort import pdqsort
from repro.sort.radix import VECTOR_FINISH_THRESHOLD, radix_argsort
from repro.table.chunk import DataChunk, chunk_table
from repro.table.table import Table
from repro.types.datatypes import TypeId
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec

__all__ = ["SpilledRun", "ExternalSortOperator", "external_sort_table"]


@dataclass
class SpilledRun:
    """A sorted run on disk: path plus enough metadata to stream it back."""

    path: str
    num_rows: int

    def load(self) -> tuple[np.ndarray, np.ndarray, bytes]:
        """Read back (keys, rows, heap) of the whole run."""
        with np.load(self.path, allow_pickle=False) as archive:
            return (
                archive["keys"],
                archive["rows"],
                archive["heap"].tobytes(),
            )

    def iter_blocks(
        self, block_rows: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (keys, rows) slices of at most ``block_rows`` rows.

        The heap is not sliced (string offsets are run-relative); callers
        that need strings load it once per run via :meth:`load`.
        """
        keys, rows, _ = self.load()
        for start in range(0, self.num_rows, block_rows):
            stop = min(start + block_rows, self.num_rows)
            yield keys[start:stop], rows[start:stop]


class ExternalSortOperator:
    """Sort that spills sorted runs to disk and streams the merge.

    The public protocol matches :class:`~repro.sort.operator.SortOperator`:
    ``sink`` chunks, then ``finalize``.  ``spill_directory`` defaults to a
    fresh temporary directory that is removed on finalize.
    """

    def __init__(
        self,
        schema: Schema,
        spec: SortSpec,
        config: SortConfig | None = None,
        spill_directory: str | None = None,
        merge_block_rows: int = 4096,
    ) -> None:
        if merge_block_rows <= 0:
            raise SortError("merge_block_rows must be positive")
        self.schema = schema
        self.spec = spec
        self.config = config or SortConfig()
        self._own_dir = spill_directory is None
        self._dir = spill_directory or tempfile.mkdtemp(prefix="repro-spill-")
        self.merge_block_rows = merge_block_rows
        self._buffer: list[DataChunk] = []
        self._buffered_rows = 0
        self._runs: list[SpilledRun] = []
        self._finalized = False
        self._has_string_key = any(
            schema.column(name).dtype.type_id is TypeId.VARCHAR
            for name in spec.column_names
        )
        self._next_row_id = 0

    @property
    def spilled_runs(self) -> int:
        return len(self._runs)

    @property
    def spilled_bytes(self) -> int:
        return sum(
            os.path.getsize(run.path)
            for run in self._runs
            if os.path.exists(run.path)
        )

    def sink(self, chunk: DataChunk) -> None:
        if self._finalized:
            raise SortError("cannot sink into a finalized sort")
        if len(chunk) == 0:
            return
        self._buffer.append(chunk)
        self._buffered_rows += len(chunk)
        if self._buffered_rows >= self.config.run_threshold:
            self._spill_run()

    def _spill_run(self) -> None:
        if not self._buffer:
            return
        table = self._buffer[0].to_table()
        for chunk in self._buffer[1:]:
            table = table.concat(chunk.to_table())
        self._buffer.clear()
        self._buffered_rows = 0

        # Lock VARCHAR prefixes to the cap so every spilled run shares one
        # key layout -- the streamed merge compares keys across runs.
        string_prefix = self.config.string_prefix
        if string_prefix is None and self._has_string_key:
            string_prefix = MAX_STRING_PREFIX
        keys = normalize_keys(
            table,
            self.spec,
            string_prefix=string_prefix,
            include_row_id=True,
            row_id_base=self._next_row_id,
            row_id_width=8,
        )
        self._next_row_id += len(table)
        if not keys.prefix_exact:
            raise SortError(
                "external sort requires exact key prefixes; raise "
                "SortConfig.string_prefix or shorten the strings"
            )
        if self._has_string_key and self.config.force_algorithm != "radix":
            if self.config.use_vector_kernels:
                # Stable argsort of the key bytes; the ascending row-id
                # suffix makes this identical to full-row memcmp order.
                order = argsort_rows(keys.matrix[:, : keys.layout.key_width])
            else:
                raw = [keys.matrix[i].tobytes() for i in range(len(table))]
                order_list = list(range(len(table)))
                pdqsort(order_list, lambda i, j: raw[i] < raw[j])
                order = np.asarray(order_list, dtype=np.int64)
        else:
            # Stable radix over the key bytes only (see SortOperator).
            order = radix_argsort(
                keys.matrix[:, : keys.layout.key_width],
                vector_threshold=(
                    VECTOR_FINISH_THRESHOLD
                    if self.config.use_vector_kernels
                    else None
                ),
            )

        block = RowBlock.from_table(table).take(order)
        path = os.path.join(self._dir, f"run-{len(self._runs):05d}.npz")
        np.savez(
            path,
            keys=keys.matrix[order],
            rows=block.rows,
            heap=np.frombuffer(block.heap, dtype=np.uint8),
        )
        self._runs.append(SpilledRun(path, len(table)))

    def finalize(self) -> Table:
        """Stream-merge the spilled runs into the sorted output table."""
        if self._finalized:
            raise SortError("sort already finalized")
        self._finalized = True
        if self._buffer:
            self._spill_run()
        try:
            if not self._runs:
                return Table.empty(self.schema)
            return self._merge_streams()
        finally:
            self._cleanup()

    def _merge_streams(self) -> Table:
        """K-way merge of spilled runs, reading block_rows rows at a time.

        With vector kernels on, the merge order of all runs is computed in
        one vectorized cascade (:func:`repro.sort.kway.cascade_merge_indices`)
        instead of a per-row tournament heap; string-free payloads are then
        gathered block-wise with zero Python per-row work.
        """
        layout = RowLayout.for_schema(self.schema)
        # Load heaps fully (strings must stay addressable); keys/rows stream.
        loaded = [run.load() for run in self._runs]
        heaps = [heap for _, _, heap in loaded]
        keys_list = [keys for keys, _, _ in loaded]
        rows_list = [rows for _, rows, _ in loaded]
        has_strings = any(slot.is_string for slot in layout.slots)

        if self.config.use_vector_kernels:
            # Merge on the key bytes only: every spilled run carries an
            # 8-byte row-id suffix that ascends with run order, so the
            # cascade's stable earlier-run-first tie handling reproduces
            # full-key memcmp order without comparing the suffix.
            run_ids, row_ids = cascade_merge_indices(
                [keys[:, : keys.shape[1] - 8] for keys in keys_list]
            )
            if not has_strings:
                return self._gather_blocks(layout, rows_list, run_ids, row_ids)
            order = zip(run_ids.tolist(), row_ids.tolist())
        else:
            order = self._heap_order(keys_list)

        out_blocks: list[RowBlock] = []
        pending_rows: list[np.ndarray] = []
        pending_heap_parts: list[bytes] = []
        pending_heap_bytes = 0

        def flush_pending() -> None:
            nonlocal pending_heap_bytes
            if not pending_rows:
                return
            rows = np.stack(pending_rows)
            block = RowBlock(layout, rows, b"".join(pending_heap_parts))
            out_blocks.append(block)
            pending_rows.clear()
            pending_heap_parts.clear()
            pending_heap_bytes = 0

        result: Table | None = None
        for run_index, position in order:
            if has_strings:
                row = rows_list[run_index][position].copy()
                row, heap_part = _rebase_strings(
                    layout, row, heaps[run_index], pending_heap_bytes
                )
                pending_heap_parts.append(heap_part)
                pending_heap_bytes += len(heap_part)
            else:
                row = rows_list[run_index][position]
            pending_rows.append(row)
            if len(pending_rows) >= self.merge_block_rows:
                flush_pending()
        flush_pending()
        for block in out_blocks:
            table = block.to_table()
            result = table if result is None else result.concat(table)
        return result if result is not None else Table.empty(self.schema)

    @staticmethod
    def _heap_order(keys_list: list[np.ndarray]) -> Iterator[tuple[int, int]]:
        """Scalar merge order: a tournament heap over per-row key bytes."""
        heap: list[tuple[bytes, int, int]] = []
        for run_index, keys in enumerate(keys_list):
            if len(keys):
                heap.append((keys[0].tobytes(), run_index, 0))
        heapq.heapify(heap)
        while heap:
            _, run_index, position = heapq.heappop(heap)
            yield run_index, position
            next_position = position + 1
            if next_position < len(keys_list[run_index]):
                heapq.heappush(
                    heap,
                    (
                        keys_list[run_index][next_position].tobytes(),
                        run_index,
                        next_position,
                    ),
                )

    def _gather_blocks(
        self,
        layout: RowLayout,
        rows_list: list[np.ndarray],
        run_ids: np.ndarray,
        row_ids: np.ndarray,
    ) -> Table:
        """Emit the merged output by block-wise vectorized gather (no strings)."""
        if not len(run_ids):
            return Table.empty(self.schema)
        counts = np.array([len(rows) for rows in rows_list], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        gather = offsets[run_ids] + row_ids
        stacked = np.concatenate(rows_list)
        result: Table | None = None
        for start in range(0, len(gather), self.merge_block_rows):
            stop = min(start + self.merge_block_rows, len(gather))
            block = RowBlock(layout, stacked[gather[start:stop]], b"")
            table = block.to_table()
            result = table if result is None else result.concat(table)
        return result if result is not None else Table.empty(self.schema)

    def _cleanup(self) -> None:
        for run in self._runs:
            try:
                os.remove(run.path)
            except OSError:
                pass
        if self._own_dir:
            try:
                os.rmdir(self._dir)
            except OSError:
                pass


def external_sort_table(
    table: Table,
    spec: SortSpec | str,
    config: SortConfig | None = None,
    spill_directory: str | None = None,
) -> Table:
    """One-shot external sort of a table (spills runs to disk)."""
    if isinstance(spec, str):
        spec = SortSpec.of(*[part.strip() for part in spec.split(",")])
    config = config or SortConfig()
    operator = ExternalSortOperator(
        table.schema, spec, config, spill_directory
    )
    for chunk in chunk_table(table, config.vector_size):
        operator.sink(chunk)
    return operator.finalize()


def _rebase_strings(
    layout: RowLayout, row: np.ndarray, source_heap: bytes, heap_base: int
) -> tuple[np.ndarray, bytes]:
    """Copy a row's strings out of its run heap into the output heap.

    Returns the adjusted row and the bytes to append to the output heap.
    """
    parts: list[bytes] = []
    cursor = heap_base
    for col_index, slot in enumerate(layout.slots):
        if not slot.is_string:
            continue
        byte_off, bit = layout.validity_position(col_index)
        if not (int(row[byte_off]) >> bit) & 1:
            continue
        view = row[slot.offset : slot.offset + 8]
        offset = int(np.ascontiguousarray(view[:4]).view(np.uint32)[0])
        length = int(np.ascontiguousarray(view[4:]).view(np.uint32)[0])
        parts.append(source_heap[offset : offset + length])
        new_offset = np.array([cursor], dtype=np.uint32)
        row[slot.offset : slot.offset + 4] = new_offset.view(np.uint8)
        cursor += length
    return row, b"".join(parts)
