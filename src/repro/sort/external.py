"""External (out-of-core) sorting: graceful degradation beyond memory.

The paper's future-work section calls for blocking operators whose
"performance gracefully degrades as the data size exceeds the memory
limit", using the unified row format "to offload the data to secondary
storage".  This module implements that design for the sort operator:

* runs are generated exactly as in :mod:`repro.sort.operator` (normalized
  keys + row-format payload), but once sorted each run is **spilled** to a
  temporary file instead of held in memory;
* finalization streams the spilled runs back block-by-block through the
  block-streaming k-way merge kernel
  (:func:`repro.sort.kernels.kway_merge_blocks`), so the merge working set
  is O(num_runs * block_rows) key rows instead of O(n), with zero per-row
  Python between frontier refills.

Runs are encoded under the runtime key-compression layer
(:mod:`repro.keys.compression`) unless ``SortConfig.compress_keys`` is
off: each run's layout comes from one monotone statistics accumulator,
so layouts only ever widen run-to-run and the merge rebases earlier
(narrower) runs onto the final layout block-by-block as it streams them
-- spilled key bytes shrink without a re-spill pass.  Each spill header
carries its run's serialized layout in the header ``extra`` blob.
When the key segments alone can reconstruct every column exactly
(``key_carried_eligible``: all columns are fixed-width non-float sort
keys), runs are spilled **key-carried**: the payload row matrix and heap
sections are empty and the output table is decoded straight from the
merged key rows, cutting spill volume by the full payload width.

Truncated VARCHAR prefixes no longer raise at spill time: run
generation repairs each run's prefix order to exact string order with
the adaptive re-encode loop
(:func:`repro.sort.stringsort.refine_key_order`), and the streamed
merge applies the same repair to every emitted batch -- rows tied on
the bytes up to the first truncated segment are held in a carry buffer
across round boundaries, refined against the full strings decoded from
the spilled payload, then emitted.  Each run's header also stores its
offset-value codes (Do & Graefe, arXiv 2209.08420) as a format-v3
tagged frame; the merge kernel combines them with a per-round
first/last-word scan to drop the key words all frontier rows share, so
duplicate-heavy merges compare only the distinguishing suffix.

The spill format per run is one file of three contiguous data sections --
the sorted key matrix, the payload row matrix, and the string heap --
preceded by a versioned, checksummed header (:mod:`repro.sort.spillfile`).
Sections are written with whole-buffer ``tobytes()`` calls and indexed by
offset arithmetic, so any row range reads back with a single seek; every
block read verifies the CRC32 pages it touches, so a truncated or
bit-flipped file raises :class:`repro.errors.SpillCorruptionError` naming
the run instead of an opaque numpy error mid-merge.

A production sorter is judged by how it fails, so spill I/O is fault
tolerant end to end (all of it routed through a swappable
:class:`repro.sort.faults.SpillIO`, which is also the fault-injection
point for the tests).  The degradation ladder on write failure:

1. **retry** -- transient errors are retried with bounded exponential
   backoff (``SortConfig.spill_retries`` / ``spill_retry_backoff_s``);
2. **failover** -- on persistent failure (e.g. ``ENOSPC``) the run is
   redirected to the next directory in ``SortConfig.spill_directories``;
3. **memory fallback** -- when no spill target is writable the run is
   kept resident (:class:`InMemoryRun`, same streaming interface) and the
   run threshold halves, degrading to a reduced-memory in-process merge
   rather than failing the query (raise instead with
   ``SortConfig.allow_memory_fallback=False``).

The operator is a context manager; ``close()`` (idempotent, also run by
``finalize`` and ``cancel``) always removes the temp files, recording any
removal failure in ``SortStats.cleanup_errors`` instead of swallowing it.

With ``SortConfig.use_vector_kernels`` off (or for cross-checking), the
scalar fallback merges through the classic per-row tournament heap over
the same streamed blocks.
"""

from __future__ import annotations

import heapq
import os
import secrets
import tempfile
import time
import warnings
import zlib
from typing import Iterator, Sequence

import numpy as np

from repro.errors import (
    SortCancelledError,
    SortError,
    SpillCapacityError,
    SpillCorruptionError,
    SpillIOError,
)
from repro.keys.compression import (
    KeyStatsAccumulator,
    decode_key_table,
    deserialize_layout,
    key_carried_eligible,
    plain_key_width,
    rebase_matrix,
    serialize_layout,
)
from repro.keys.normalizer import (
    MAX_STRING_PREFIX,
    KeyLayout,
    normalize_keys,
)
from repro.rows.block import RowBlock, gather_slices
from repro.rows.layout import RowLayout
from repro.sort.faults import SpillIO
from repro.sort.heuristic import vector_sort_rows
from repro.sort.kernels import KWayBlockStats, ovc_codes
from repro.sort.kway import kway_merge_stream
from repro.sort.operator import (
    SortConfig,
    SortStats,
    _segmented_argsort,
    effective_run_threshold,
)
from repro.sort.parallel_exec import ParallelSortExecutor
from repro.sort.pdqsort import pdqsort
from repro.sort.prefetch import BlockPrefetcher, prefetch_budget_blocks
from repro.sort.radix import radix_argsort
from repro.sort.rungen import (
    PROBE_THRESHOLD,
    RUN_CAP_FACTOR,
    ReplacementSelection,
    SelectionRun,
    presortedness,
)
from repro.sort.spillfile import (
    EXTRA_TAG_LAYOUT,
    EXTRA_TAG_OVC,
    SECTION_NAMES,
    SpillHeader,
    VerifiedTailCache,
    build_header,
    pack_extra,
    read_header,
    unpack_extra,
)
from repro.sort.stringsort import (
    inexact_prefix_end,
    refine_key_order,
    refinement_must_defer,
)
from repro.table.chunk import DataChunk, chunk_table
from repro.table.table import Table
from repro.types.datatypes import TypeId
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec

__all__ = [
    "SpilledRun",
    "InMemoryRun",
    "ExternalSortOperator",
    "external_sort_table",
]

ROW_ID_WIDTH = 8
"""Bytes of the row-id suffix every spilled run appends to its keys."""

_BACKOFF_CAP_S = 1.0
"""Upper bound of one exponential-backoff sleep between write retries."""

_KEYS, _ROWS, _HEAP = range(3)


class SpilledRun:
    """A sorted run on disk: path, validated header, and block readers.

    The file layout is :mod:`repro.sort.spillfile`: a checksummed header
    followed by three contiguous sections (sorted key matrix, payload
    row matrix, string heap), each written with one ``tobytes()`` buffer
    -- no per-row serialization -- so any row range reads back as a
    single ``seek`` + ``read``.  With ``verify`` on (the default), every
    read checks the CRC32 pages it covers and raises
    :class:`SpillCorruptionError` on mismatch or truncation;
    OS-level read failures surface as :class:`SpillIOError`.  Both carry
    the offending ``path``.
    """

    on_disk = True

    def __init__(
        self,
        path: str,
        header: SpillHeader,
        io: SpillIO | None = None,
        verify: bool = True,
        layout: KeyLayout | None = None,
        ovc: np.ndarray | None = None,
    ) -> None:
        self.path = path
        self.header = header
        self.io = io or SpillIO()
        self.verify = verify
        # One verified page of bytes per section: consecutive block reads
        # whose boundary straddles a CRC page share it from memory
        # instead of re-reading and re-verifying it (thread-safe; see
        # :class:`repro.sort.spillfile.VerifiedTailCache`).
        self._tail_cache = VerifiedTailCache()
        #: the run's compressed key layout (``None`` for uncompressed
        #: runs); also serialized in ``header.extra`` for re-attachment.
        self.layout = layout
        #: the run's offset-value codes (one u16 per key row, see
        #: :func:`repro.sort.kernels.ovc_codes`), or ``None``; also
        #: stored as a tagged frame in ``header.extra``.
        self.ovc = ovc

    @classmethod
    def open(
        cls,
        path: str,
        io: SpillIO | None = None,
        verify: bool = True,
        schema: Schema | None = None,
        spec: SortSpec | None = None,
    ) -> "SpilledRun":
        """Attach to an existing spill file, validating its header.

        Metadata frames in the header's extra blob are re-attached:
        the offset-value codes always, the key layout when ``schema``
        and ``spec`` are given (deserializing a layout needs both).
        """
        io = io or SpillIO()
        try:
            header = read_header(io, path)
        except OSError as error:
            raise SpillIOError(
                f"spill header read failed: {error}", path
            ) from error
        frames = unpack_extra(header.extra, header.version, path)
        layout = None
        blob = frames.get(EXTRA_TAG_LAYOUT)
        if blob and schema is not None and spec is not None:
            layout = deserialize_layout(blob, schema, spec)
        ovc = None
        blob = frames.get(EXTRA_TAG_OVC)
        if blob is not None:
            ovc = np.frombuffer(blob, dtype="<u2")
            if len(ovc) != header.num_rows:
                raise SpillCorruptionError(
                    f"offset-value code frame holds {len(ovc)} codes "
                    f"for {header.num_rows} rows",
                    path,
                )
        return cls(path, header, io, verify, layout=layout, ovc=ovc)

    @property
    def num_rows(self) -> int:
        return self.header.num_rows

    @property
    def key_width(self) -> int:
        return self.header.key_width

    @property
    def row_width(self) -> int:
        return self.header.row_width

    @property
    def heap_bytes(self) -> int:
        return self.header.heap_bytes

    def verify_header(self, stats: SortStats | None = None) -> None:
        """Re-read the on-disk header and check it matches this run's.

        Catches a replaced, truncated, or header-corrupted file before
        any geometry derived from the in-memory header is trusted.
        """
        try:
            on_disk = read_header(self.io, self.path)
        except OSError as error:
            raise SpillIOError(
                f"spill header read failed: {error}", self.path
            ) from error
        if stats is not None:
            stats.checksum_verifications += 1
        if on_disk != self.header:
            if stats is not None:
                stats.checksum_failures += 1
            raise SpillCorruptionError(
                "on-disk spill header does not match the run that was "
                "written",
                self.path,
            )

    def _raw_read(
        self, offset: int, nbytes: int, stats: SortStats | None
    ) -> bytes:
        start = time.perf_counter()
        try:
            return self.io.read(self.path, offset, nbytes)
        except OSError as error:
            raise SpillIOError(
                f"spill read failed: {error}", self.path
            ) from error
        finally:
            if stats is not None:
                stats.add_phase_seconds(
                    "spill_io", time.perf_counter() - start
                )

    def _read_section(
        self,
        section: int,
        start: int,
        nbytes: int,
        stats: SortStats | None,
    ) -> bytes:
        """Bytes ``[start, start+nbytes)`` of a section, CRC-verified.

        Verification is page-granular: the read is widened to the CRC
        pages it touches, each covered page is checked against the
        header's table, and the requested slice is returned -- so
        integrity never requires reading more than one page beyond the
        block on either side.
        """
        header = self.header
        length = header.section_length(section)
        name = SECTION_NAMES[section]
        if start < 0 or nbytes < 0 or start + nbytes > length:
            raise SpillCorruptionError(
                f"read of [{start}, {start + nbytes}) outside the "
                f"{name} section (length {length})",
                self.path,
            )
        if nbytes == 0:
            return b""
        base = header.section_offset(section)
        if not self.verify:
            raw = self._raw_read(base + start, nbytes, stats)
            if len(raw) != nbytes:
                raise SpillCorruptionError(
                    f"truncated {name} section "
                    f"(got {len(raw)} of {nbytes} bytes)",
                    self.path,
                )
            return raw
        page = header.page_size
        first = start // page
        last = -(-(start + nbytes) // page)
        aligned_start = first * page
        aligned_stop = min(last * page, length)
        # Serve the head page from the tail cache when the previous read
        # already verified it; a request entirely inside the cached page
        # needs no I/O (and no re-verification) at all.
        head = b""
        cached = self._tail_cache.get(section, first)
        if cached is not None:
            if last == first + 1:
                offset = start - aligned_start
                return cached[offset : offset + nbytes]
            head = cached
            first += 1
            aligned_start = first * page
        raw = self._raw_read(
            base + aligned_start, aligned_stop - aligned_start, stats
        )
        if len(raw) != aligned_stop - aligned_start:
            raise SpillCorruptionError(
                f"truncated {name} section (got {len(raw)} of "
                f"{aligned_stop - aligned_start} bytes at offset "
                f"{aligned_start})",
                self.path,
            )
        crcs = header.page_crcs[section]
        view = memoryview(raw)
        for index in range(first, last):
            lo = index * page - aligned_start
            hi = min((index + 1) * page, length) - aligned_start
            if stats is not None:
                stats.checksum_verifications += 1
            if zlib.crc32(view[lo:hi]) != crcs[index]:
                if stats is not None:
                    stats.checksum_failures += 1
                raise SpillCorruptionError(
                    f"CRC32 mismatch in {name} section page {index}",
                    self.path,
                )
        self._tail_cache.put(
            section, last - 1, raw[(last - 1) * page - aligned_start :]
        )
        full = head + raw if head else raw
        offset = start - (aligned_start - len(head))
        return full[offset : offset + nbytes]

    def read_key_block(
        self, start: int, stop: int, stats: SortStats | None = None
    ) -> np.ndarray:
        """Key rows ``[start, stop)`` as an ``(m, key_width)`` matrix."""
        raw = self._read_section(
            _KEYS,
            start * self.key_width,
            (stop - start) * self.key_width,
            stats,
        )
        return np.frombuffer(raw, dtype=np.uint8).reshape(
            stop - start, self.key_width
        )

    def read_row_block(
        self, start: int, stop: int, stats: SortStats | None = None
    ) -> np.ndarray:
        """Payload rows ``[start, stop)`` as an ``(m, row_width)`` matrix."""
        raw = self._read_section(
            _ROWS,
            start * self.row_width,
            (stop - start) * self.row_width,
            stats,
        )
        return np.frombuffer(raw, dtype=np.uint8).reshape(
            stop - start, self.row_width
        )

    def read_heap(self, stats: SortStats | None = None) -> bytes:
        """The whole string heap (offsets in rows are run-relative)."""
        return self._read_section(_HEAP, 0, self.heap_bytes, stats)

    def iter_key_blocks(
        self,
        block_rows: int,
        key_bytes: int | None = None,
        stats: SortStats | None = None,
    ) -> Iterator[np.ndarray]:
        """Yield (m, width) key blocks of at most ``block_rows`` rows.

        ``key_bytes`` truncates each row to its leading bytes (the merge
        drops the row-id suffix).  One seek+read per block.
        """
        for start in range(0, self.num_rows, block_rows):
            stop = min(start + block_rows, self.num_rows)
            block = self.read_key_block(start, stop, stats)
            if key_bytes is not None and key_bytes != self.key_width:
                block = block[:, :key_bytes]
            yield block


class InMemoryRun:
    """A sorted run kept resident: the no-spill-target degradation rung.

    Implements the same streaming read interface as :class:`SpilledRun`
    (``read_key_block`` / ``read_row_block`` / ``read_heap`` /
    ``iter_key_blocks``), so the k-way merge works unchanged over a mix
    of spilled and in-memory runs when some spills failed over to memory.
    """

    on_disk = False
    path = "<memory>"

    def __init__(
        self,
        keys: np.ndarray,
        rows: np.ndarray,
        heap: bytes,
        layout: KeyLayout | None = None,
        ovc: np.ndarray | None = None,
    ) -> None:
        self._keys = np.ascontiguousarray(keys)
        self._rows = np.ascontiguousarray(rows)
        self._heap = heap
        self.layout = layout
        self.ovc = ovc

    @property
    def num_rows(self) -> int:
        return len(self._keys)

    @property
    def key_width(self) -> int:
        return self._keys.shape[1]

    @property
    def row_width(self) -> int:
        return self._rows.shape[1]

    @property
    def heap_bytes(self) -> int:
        return len(self._heap)

    def read_key_block(
        self, start: int, stop: int, stats: SortStats | None = None
    ) -> np.ndarray:
        return self._keys[start:stop]

    def read_row_block(
        self, start: int, stop: int, stats: SortStats | None = None
    ) -> np.ndarray:
        return self._rows[start:stop]

    def read_heap(self, stats: SortStats | None = None) -> bytes:
        return self._heap

    def iter_key_blocks(
        self,
        block_rows: int,
        key_bytes: int | None = None,
        stats: SortStats | None = None,
    ) -> Iterator[np.ndarray]:
        for start in range(0, self.num_rows, block_rows):
            block = self._keys[start : min(start + block_rows, self.num_rows)]
            if key_bytes is not None and key_bytes != self.key_width:
                block = block[:, :key_bytes]
            yield block


class ExternalSortOperator:
    """Sort that spills sorted runs to disk and streams the merge.

    The public protocol matches :class:`~repro.sort.operator.SortOperator`
    -- ``sink`` chunks, then ``finalize`` -- plus a fault-tolerant
    lifecycle: the operator is a context manager, ``close()`` always
    removes its temp files (recording failures in
    ``SortStats.cleanup_errors``), and ``cancel()`` aborts the sort at
    the next merge checkpoint with guaranteed cleanup.
    ``spill_directory`` defaults to a fresh temporary directory;
    ``SortConfig.spill_directories`` names failover targets tried in
    order when writes to the primary keep failing, after which runs fall
    back to memory.  ``stats`` records run counts, kernel-vs-scalar
    k-way merges, the merge's peak frontier size, per-phase
    (encode / run_gen / merge / spill_io) wall-clock, and the fault
    counters (retries, failovers, memory fallbacks, checksum
    verifications/failures, cleanup errors).
    """

    def __init__(
        self,
        schema: Schema,
        spec: SortSpec,
        config: SortConfig | None = None,
        spill_directory: str | None = None,
        merge_block_rows: int = 4096,
        io: SpillIO | None = None,
    ) -> None:
        if merge_block_rows <= 0:
            raise SortError("merge_block_rows must be positive")
        self.schema = schema
        self.spec = spec
        self.config = config or SortConfig()
        self._io = io or SpillIO()
        self._own_dir = spill_directory is None
        self._dir = spill_directory or tempfile.mkdtemp(prefix="repro-spill-")
        self.merge_block_rows = merge_block_rows
        self._buffer: list[DataChunk] = []
        self._buffered_rows = 0
        self._runs: list[SpilledRun | InMemoryRun] = []
        self._finalized = False
        self._closed = False
        self._cancelled = False
        self._merging = False
        self._spilling = False
        self._degraded = False
        self._has_string_key = any(
            schema.column(name).dtype.type_id is TypeId.VARCHAR
            for name in spec.column_names
        )
        self._next_row_id = 0
        self._parallel: ParallelSortExecutor | None = None
        # Replacement selection: decided once, on the first spill, by the
        # presortedness probe (or forced by config); the selection object
        # holds the working set of sorted segments between spills.
        self._rs_active: bool | None = None
        self._selection: ReplacementSelection | None = None
        self._run_seq = 0  # spill filename counter (never reused)
        # Collision-proof spill names: concurrent sorts sharing a spill
        # directory (a service pool, user-provided failover targets)
        # must never write the same filename, so every operator salts
        # its run files with a per-instance random token.
        self._spill_token = secrets.token_hex(4)
        # Key compression: per-run layouts come from one monotone stats
        # accumulator, so layouts only widen run-to-run and every earlier
        # run rebases losslessly onto the final (widest) layout during the
        # merge.  A user-forced string_prefix pins the layout, so it
        # disables compression (same rule as SortOperator).
        self._compress = (
            self.config.compress_keys and self.config.string_prefix is None
        )
        self._key_acc = (
            KeyStatsAccumulator(schema, spec) if self._compress else None
        )
        # Key-carried runs: when the key segments alone can reconstruct
        # every column exactly, spill the sorted keys and nothing else.
        self._key_carried = (
            self._compress
            and self.config.use_vector_kernels
            and key_carried_eligible(schema, spec)
        )
        self._final_layout: KeyLayout | None = None
        # Uncompressed runs all share one locked layout (the VARCHAR
        # prefix is pinned before the first spill); the merge needs it to
        # locate truncated segments for exact-string refinement.
        self._plain_layout: KeyLayout | None = None
        self.stats = SortStats()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def __enter__(self) -> "ExternalSortOperator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Release all resources: buffered chunks, spill files, temp dir.

        Idempotent; also invoked by ``finalize`` (success or failure),
        ``cancel``, and context-manager exit.  Removal failures are
        recorded in ``SortStats.cleanup_errors`` and warned about --
        never silently swallowed.
        """
        if self._closed:
            return
        self._closed = True
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None
        self._selection = None
        self._buffer.clear()
        self._buffered_rows = 0
        for run in self._runs:
            if run.on_disk:
                self._remove_file(run.path)
        if self._own_dir:
            try:
                os.rmdir(self._dir)
            except FileNotFoundError:
                pass
            except OSError as error:
                self._record_cleanup_error(self._dir, error)

    def cancel(self) -> None:
        """Abort the sort; temp files are removed, results are refused.

        Safe to call from any point, including a merge-progress hook or
        a fault-injection hook firing mid-spill: while a merge or a
        spill write is in flight only the cancelled flag is set, and the
        operator raises :class:`SortCancelledError` at its next
        checkpoint (cleanup then runs in the in-flight operation's
        ``finally``); otherwise cleanup happens immediately.
        """
        self._cancelled = True
        if not self._merging and not self._spilling:
            self.close()

    def _check_cancelled(self) -> None:
        event = self.config.cancel_event
        if event is not None and event.is_set():
            self._cancelled = True
        if self._cancelled:
            raise SortCancelledError("external sort was cancelled")

    def _record_cleanup_error(self, target: str, error: OSError) -> None:
        message = f"{target}: {error}"
        self.stats.cleanup_errors.append(message)
        warnings.warn(
            f"external sort failed to clean up {message}",
            RuntimeWarning,
            stacklevel=3,
        )

    def _remove_file(self, path: str) -> None:
        """Best-effort removal; failures are recorded, not raised."""
        try:
            self._io.remove(path)
        except FileNotFoundError:
            pass
        except OSError as error:
            self._record_cleanup_error(path, error)

    # ------------------------------------------------------------------ #
    # Parallel run generation
    # ------------------------------------------------------------------ #

    def _parallel_argsort(self, keys) -> np.ndarray | None:
        """Morsel-parallel sort of one run's keys; ``None`` falls back.

        Parallel run generation feeds the unchanged (serial, streaming)
        k-way spill merge: each spilled run is byte-identical to its
        serial counterpart because stable sorts of the same key bytes
        produce the same permutation.
        """
        if self.config.num_workers <= 1 or not self.config.use_vector_kernels:
            return None
        if self._parallel is None:
            self._parallel = ParallelSortExecutor(
                self.config.num_workers,
                self.config.parallel_morsel_rows,
                cancel_check=self._check_cancelled,
            )
        return self._parallel.argsort(
            keys.matrix, keys.layout.key_width, self.stats
        )

    # ------------------------------------------------------------------ #
    # Sink + spill
    # ------------------------------------------------------------------ #

    @property
    def spilled_runs(self) -> int:
        return len(self._runs)

    @property
    def spilled_bytes(self) -> int:
        total = 0
        for run in self._runs:
            if not run.on_disk:
                continue
            try:
                total += self._io.file_size(run.path)
            except OSError:
                pass
        return total

    @property
    def _run_threshold(self) -> int:
        # Reduced-memory degradation: once runs stay resident, cut them
        # at half the configured threshold to curb buffer growth.  The
        # base threshold is the grant-shrunk live value
        # (:func:`effective_run_threshold`), re-read per sink so a
        # governor revoking bytes mid-query forces earlier spills.
        threshold = effective_run_threshold(self.config)
        return max(1, threshold // 2) if self._degraded else threshold

    def sink(self, chunk: DataChunk) -> None:
        self._check_cancelled()
        if self._finalized:
            raise SortError("cannot sink into a finalized sort")
        if self._closed:
            raise SortError("cannot sink into a closed sort")
        if len(chunk) == 0:
            return
        self._buffer.append(chunk)
        self._buffered_rows += len(chunk)
        if self._buffered_rows >= self._run_threshold:
            if effective_run_threshold(self.config) < self.config.run_threshold:
                self.stats.governor_forced_spills += 1
            self._spill_run()

    def _spill_targets(self) -> Iterator[str]:
        """Candidate directories for the next run file, in failover order."""
        yield self._dir
        for directory in self.config.spill_directories:
            try:
                os.makedirs(directory, exist_ok=True)
            except OSError:
                continue  # an uncreatable failover target is skipped
            yield directory

    def _write_run_file(
        self, filename: str, sections: Sequence[bytes]
    ) -> str | None:
        """Write one run file through the retry -> failover ladder.

        Per candidate directory, transient ``OSError`` failures are
        retried ``SortConfig.spill_retries`` times with bounded
        exponential backoff; a directory that keeps failing is failed
        over.  Returns the written path, or ``None`` when every target
        was exhausted (the caller degrades to an in-memory run).
        Partial files from failed attempts are removed best-effort.
        """
        config = self.config
        for position, directory in enumerate(self._spill_targets()):
            if position > 0:
                self.stats.spill_failovers += 1
            path = os.path.join(directory, filename)
            for attempt in range(config.spill_retries + 1):
                try:
                    with self.stats.time_phase("spill_io"):
                        self._io.write_file(path, sections)
                    return path
                except OSError:
                    self._remove_file(path)
                    if attempt < config.spill_retries:
                        self.stats.spill_retries += 1
                        delay = config.spill_retry_backoff_s * (2**attempt)
                        if delay:
                            time.sleep(min(delay, _BACKOFF_CAP_S))
        return None

    def _spill_run(self) -> None:
        if not self._buffer:
            return
        self._check_cancelled()
        table = self._buffer[0].to_table()
        for chunk in self._buffer[1:]:
            table = table.concat(chunk.to_table())
        self._buffer.clear()
        self._buffered_rows = 0
        keys = self._encode_run(table)
        if self._rs_active is None:
            self._rs_active = self._choose_rungen(keys)
        if self._rs_active:
            self._rs_feed(table, keys)
            return
        exact_strings = not keys.prefix_exact and self.config.exact_varchar
        with self.stats.time_phase("run_gen"):
            order = self._parallel_argsort(keys)
            if order is not None:
                pass
            elif self.config.use_vector_kernels:
                # Stable vectorized sort of the key bytes (MSD radix or
                # argsort/lexsort per the width/skew heuristic); the
                # ascending row-id suffix makes any stable kernel's
                # permutation identical to full-row memcmp order.
                order = vector_sort_rows(
                    keys.matrix[:, : keys.layout.key_width],
                    keys.layout.key_width,
                    self.stats,
                    self.stats.radix,
                )
            elif exact_strings:
                # Scalar reference: prefix bytes alone are not the order,
                # so compare per segment, consulting the full strings.
                order = _segmented_argsort(table, keys, self.spec)
            elif self._has_string_key and self.config.force_algorithm != "radix":
                raw = [
                    keys.matrix[i].tobytes() for i in range(len(table))
                ]
                order_list = list(range(len(table)))
                pdqsort(order_list, lambda i, j: raw[i] < raw[j])
                order = np.asarray(order_list, dtype=np.int64)
            else:
                # Stable radix over the key bytes only (see SortOperator).
                order = radix_argsort(
                    keys.matrix[:, : keys.layout.key_width],
                    vector_threshold=None,
                )
            if (
                exact_strings
                and self.config.use_vector_kernels
                and not refinement_must_defer(keys.layout)
            ):
                # With later key bytes after the truncated VARCHAR
                # segment, refining here would spill runs the k-way
                # kernel cannot merge (no longer byte-sorted); such
                # sorts spill raw and the merge's settled-batch
                # refinement produces the exact order instead.
                order = self._refine_run_order(table, keys, order)
            sorted_keys = np.ascontiguousarray(keys.matrix[order])
            ovc = (
                ovc_codes(sorted_keys[:, : keys.layout.key_width])
                if self.config.use_vector_kernels
                else None
            )
            if self._key_carried:
                # The keys alone reconstruct every column: spill nothing
                # else.  Payload rows and heap shrink to zero bytes.
                sorted_rows = np.empty((len(table), 0), dtype=np.uint8)
                heap = b""
                self.stats.key_carried_runs += 1
            else:
                block = RowBlock.from_table(table).take(np.asarray(order))
                sorted_rows = np.ascontiguousarray(block.rows)
                heap = block.heap

        self._store_run(sorted_keys, sorted_rows, heap, keys.layout, ovc)
        self.stats.runs_generated += 1
        self.stats.run_lengths.append(len(table))
        self.stats.rows_sorted += len(table)

    def _encode_run(self, table: Table):
        """Normalize one buffered batch's keys (shared by both rungens)."""
        with self.stats.time_phase("encode"):
            if self._compress:
                # The accumulator has seen every row so far, so this run's
                # layout is at least as wide as every earlier run's; the
                # merge rebases narrower runs onto the final layout.
                self._key_acc.update(table)
                layout = self._key_acc.build_layout(
                    include_row_id=True, row_id_width=ROW_ID_WIDTH
                )
                keys = normalize_keys(
                    table,
                    self.spec,
                    include_row_id=True,
                    row_id_base=self._next_row_id,
                    row_id_width=ROW_ID_WIDTH,
                    layout=layout,
                )
            else:
                # Lock VARCHAR prefixes to the cap so every spilled run
                # shares one key layout -- the streamed merge compares
                # keys across runs.
                string_prefix = self.config.string_prefix
                if string_prefix is None and self._has_string_key:
                    string_prefix = MAX_STRING_PREFIX
                keys = normalize_keys(
                    table,
                    self.spec,
                    string_prefix=string_prefix,
                    include_row_id=True,
                    row_id_base=self._next_row_id,
                    row_id_width=ROW_ID_WIDTH,
                )
        self._next_row_id += len(table)
        if not self._compress and self._plain_layout is None:
            self._plain_layout = keys.layout
        self.stats.key_width_used = keys.layout.key_width
        self.stats.key_width_full = plain_key_width(keys.layout)
        self.stats.prefix_exact = (
            self.stats.prefix_exact and keys.prefix_exact
        )
        return keys

    # ------------------------------------------------------------------ #
    # Replacement-selection run generation
    # ------------------------------------------------------------------ #

    def _choose_rungen(self, keys) -> bool:
        """Pick the run generator for this sort, once, on the first spill.

        Replacement selection needs the vectorized kernels (each fed
        batch is argsorted) and keys whose byte order *is* the sort
        order -- a truncated VARCHAR prefix would require exact-string
        refinement across segment boundaries, so sorts that might
        need it (string keys under ``exact_varchar``) stay on the
        argsort path.  Within those gates: ``config.replacement_selection``
        forces the choice, and ``None`` probes the first buffered
        batch's presortedness (:func:`repro.sort.rungen.presortedness`)
        -- replacement selection only pays off when ascending stretches
        let runs grow past the threshold.
        """
        config = self.config
        eligible = config.use_vector_kernels and not (
            self._has_string_key and config.exact_varchar
        )
        probe = -1.0
        if not eligible or config.replacement_selection is False:
            choice = False
        elif config.replacement_selection:
            choice = True
        else:
            probe = presortedness(
                keys.matrix[:, : keys.layout.key_width]
            )
            choice = probe >= PROBE_THRESHOLD
        self.stats.rungen_probe = probe
        self.stats.rungen_path = (
            "replacement_selection" if choice else "argsort"
        )
        return choice

    def _rs_feed(self, table: Table, keys) -> None:
        """Sort one batch into the selection working set, then drain."""
        if self._selection is None:
            self._selection = ReplacementSelection(rebase=rebase_matrix)
        with self.stats.time_phase("run_gen"):
            order = self._parallel_argsort(keys)
            if order is None:
                order = vector_sort_rows(
                    keys.matrix[:, : keys.layout.key_width],
                    keys.layout.key_width,
                    self.stats,
                    self.stats.radix,
                )
            order = np.asarray(order, dtype=np.int64)
            self._selection.feed(
                np.ascontiguousarray(keys.matrix[order]),
                order,
                table,
                keys.layout if self._compress else None,
            )
        self.stats.rows_sorted += len(table)
        self._rs_drain(final=False)

    def _rs_drain(self, final: bool) -> None:
        """Emit selection batches until occupancy returns to the budget.

        Between spills the working set is drained back to one run
        threshold of rows (classic replacement selection holds exactly
        one memory's worth); at finalize it drains to empty.  A run
        closes when nothing left is >= the fence, or at the
        :data:`~repro.sort.rungen.RUN_CAP_FACTOR` safety cap -- without
        the cap a fully sorted stream would accumulate one unbounded
        in-memory run and defeat the point of spilling.
        """
        selection = self._selection
        cap = RUN_CAP_FACTOR * self._run_threshold
        target = 0 if final else self._run_threshold
        while selection.pending_rows > target:
            self._check_cancelled()
            with self.stats.time_phase("run_gen"):
                selection.step()
            if selection.run_rows and (
                selection.run_rows >= cap or selection.exhausted
            ):
                self._rs_store(selection.close_run())
        if final and selection.run_rows:
            self._rs_store(selection.close_run())

    def _rs_store(self, run: SelectionRun) -> None:
        """Spill one closed selection run (keys ready, payload gathered)."""
        keys = np.ascontiguousarray(run.keys)
        if run.layout is not None:
            key_width = run.layout.key_width
        else:
            key_width = keys.shape[1] - ROW_ID_WIDTH
        ovc = ovc_codes(keys[:, :key_width])
        if self._key_carried:
            rows = np.empty((len(keys), 0), dtype=np.uint8)
            heap = b""
            self.stats.key_carried_runs += 1
        else:
            with self.stats.time_phase("run_gen"):
                block = RowBlock.from_table(self._rs_gather_payload(run))
                rows = np.ascontiguousarray(block.rows)
                heap = block.heap
        self._store_run(keys, rows, heap, run.layout, ovc)
        self.stats.runs_generated += 1
        self.stats.run_lengths.append(len(keys))

    def _rs_gather_payload(self, run: SelectionRun) -> Table:
        """The run's payload rows in emission order, one gather per table.

        Within each source table the emitted positions ascend (a sorted
        segment is consumed front to back), so one ``take`` per table
        plus one interleaving gather reconstructs emission order.
        """
        unique = np.unique(run.table_ids)
        if len(unique) == 1:
            return run.tables[int(unique[0])].take(run.positions)
        parts: list[Table] = []
        gather = np.empty(len(run.table_ids), dtype=np.int64)
        base = 0
        for table_id in unique:
            selected = np.flatnonzero(run.table_ids == table_id)
            parts.append(
                run.tables[int(table_id)].take(run.positions[selected])
            )
            gather[selected] = base + np.arange(
                len(selected), dtype=np.int64
            )
            base += len(selected)
        return _concat_tables(parts).take(gather)

    def _refine_run_order(self, table, keys, order) -> np.ndarray:
        """Exact-string repair of one run's prefix-sorted permutation.

        Same contract as ``SortOperator._refine_run_order``: rows tied on
        the truncated VARCHAR prefixes are re-encoded against the full
        strings (:func:`repro.sort.stringsort.refine_key_order`), so the
        spilled run is in exact string order before its bytes hit disk.
        """
        order = np.asarray(order, dtype=np.int64)
        width = keys.layout.key_width
        matrix = np.ascontiguousarray(keys.matrix[order][:, :width])

        def fetch_tied(tied):
            source = order[tied]

            def get(name):
                column = table.column(name)
                return column.data[source], column.validity[source]

            return get

        perm = refine_key_order(matrix, keys.layout, fetch_tied, self.stats)
        return order if perm is None else order[perm]

    def _store_run(
        self,
        sorted_keys: np.ndarray,
        sorted_rows: np.ndarray,
        heap: bytes,
        layout: KeyLayout | None = None,
        ovc: np.ndarray | None = None,
    ) -> "SpilledRun | InMemoryRun":
        """Spill one sorted run, degrading to memory when disk is gone.

        The run is appended to ``self._runs`` (so cleanup always sees
        it) and returned -- the fan-in-limited merge stores intermediate
        runs through the same ladder.  Filenames come from a
        never-reused sequence counter, not the live run count, because
        multi-pass merging shrinks the list while old files still exist;
        the per-operator random token keeps names collision-proof across
        concurrent sorts sharing a spill directory.

        A ``cancel()``/``close()`` that raced the write (e.g. a fault
        hook firing mid-spill) is honored *after* the write: the fresh
        file -- which ``close()`` could not have seen -- is removed here
        and the sort raises :class:`SortCancelledError` instead of
        tracking a run past its own cleanup.
        """
        filename = f"run-{self._spill_token}-{self._run_seq:05d}.bin"
        self._run_seq += 1
        path = None
        self._spilling = True
        try:
            if not self._degraded:
                keys_bytes = sorted_keys.tobytes()
                rows_bytes = sorted_rows.tobytes()
                frames: dict[int, bytes] = {}
                if self._compress and layout is not None:
                    frames[EXTRA_TAG_LAYOUT] = serialize_layout(layout)
                if ovc is not None:
                    frames[EXTRA_TAG_OVC] = ovc.astype("<u2").tobytes()
                header = build_header(
                    len(sorted_keys),
                    sorted_keys.shape[1],
                    sorted_rows.shape[1],
                    (keys_bytes, rows_bytes, heap),
                    extra=pack_extra(frames),
                )
                path = self._write_run_file(
                    filename, [header.pack(), keys_bytes, rows_bytes, heap]
                )
        finally:
            self._spilling = False
        if self._cancelled or self._closed:
            if path is not None:
                self._remove_file(path)
            self.close()
            raise SortCancelledError("external sort was cancelled")
        if path is not None:
            grant = self.config.memory_grant
            if grant is not None:
                try:
                    nbytes = self._io.file_size(path)
                except OSError:
                    nbytes = 0
                grant.record_spill(nbytes)
            run = SpilledRun(
                path,
                header,
                self._io,
                verify=self.config.verify_spill_checksums,
                layout=layout if self._compress else None,
                ovc=ovc,
            )
            self._runs.append(run)
            return run
        if not self.config.allow_memory_fallback:
            raise SpillCapacityError(
                "no spill target could absorb the run "
                f"(primary {self._dir!r}, "
                f"{len(self.config.spill_directories)} failover "
                "directories); memory fallback is disabled",
                os.path.join(self._dir, filename),
            )
        if not self._degraded:
            self._degraded = True
            warnings.warn(
                "external sort: no spill target is writable; degrading "
                "to in-memory runs at half the run threshold",
                RuntimeWarning,
                stacklevel=3,
            )
        self.stats.memory_run_fallbacks += 1
        run = InMemoryRun(
            sorted_keys,
            sorted_rows,
            heap,
            layout=layout if self._compress else None,
            ovc=ovc,
        )
        self._runs.append(run)
        return run

    # ------------------------------------------------------------------ #
    # Finalize
    # ------------------------------------------------------------------ #

    def finalize(self) -> Table:
        """Stream-merge the spilled runs into the sorted output table.

        Cleanup is guaranteed: whether the merge succeeds, raises, or is
        cancelled, ``close()`` runs and removes every temp file.
        """
        if self._finalized:
            raise SortError("sort already finalized")
        self._check_cancelled()
        if self._closed:
            raise SortError("cannot finalize a closed sort")
        self._finalized = True
        self._merging = True
        try:
            if self._buffer:
                self._spill_run()
            if self._selection is not None:
                # Replacement selection: the working set still holds up
                # to a threshold of rows; drain it into final run(s).
                self._rs_drain(final=True)
                self._selection = None
            if not self._runs:
                return Table.empty(self.schema)
            if self._compress:
                # The widest (= final) layout; earlier, narrower runs are
                # rebased onto it block-by-block as the merge streams them.
                self._final_layout = self._key_acc.build_layout(
                    include_row_id=True, row_id_width=ROW_ID_WIDTH
                )
                self.stats.key_width_used = self._final_layout.key_width
                self.stats.key_width_full = plain_key_width(
                    self._final_layout
                )
                for run in self._runs:
                    if run.layout != self._final_layout:
                        self.stats.key_layout_rebases += 1
            if self.config.verify_spill_checksums:
                self._verify_run_headers()
            # Time the merge phase net of the spill I/O on its critical
            # path: synchronous reads/writes ("spill_io") plus stalls
            # waiting on an unfinished prefetch ("io_wait").  Overlapped
            # background reads ("spill_io_overlap") deliberately do NOT
            # subtract -- they happened concurrently with merge compute.
            def critical_io() -> float:
                return self.stats.phase_seconds.get(
                    "spill_io", 0.0
                ) + self.stats.phase_seconds.get("io_wait", 0.0)

            io_before = critical_io()
            start = time.perf_counter()
            result = self._merge_streams()
            elapsed = time.perf_counter() - start
            self.stats.add_phase_seconds(
                "merge", elapsed - (critical_io() - io_before)
            )
            return result
        finally:
            self._merging = False
            self.close()

    def _verify_run_headers(self) -> None:
        """Re-validate every on-disk run header before trusting it."""
        for run in self._runs:
            if run.on_disk:
                run.verify_header(self.stats)

    def _merge_streams(self) -> Table:
        """K-way merge of spilled runs, ``merge_block_rows`` rows at a time.

        With vector kernels on, the merge runs through the block-streaming
        frontier kernel (:func:`repro.sort.kernels.kway_merge_blocks`):
        each round refills at most one key block per run, finds the global
        cutoff from the frontier tails, and emits everything below it with
        one lexsort pass -- never holding more than ``k * merge_block_rows``
        key rows.  Payload rows are gathered per emitted round with one
        contiguous read per contributing run.  The scalar path keeps the
        per-row tournament heap over the same streamed blocks.  Both paths
        poll the cancellation flag at block/round granularity.
        """
        layout = RowLayout.for_schema(self.schema)
        has_strings = any(slot.is_string for slot in layout.slots)
        if self.config.use_vector_kernels:
            self._collapse_runs(layout, has_strings)
            self.stats.merge_passes += 1
            return self._merge_streams_kernel(layout, has_strings)
        self.stats.merge_passes += 1
        return self._merge_streams_scalar(layout, has_strings)

    def _refine_end(self) -> int | None:
        """First inexact key byte, or ``None`` when byte order is exact."""
        key_layout = self._final_layout or self._plain_layout
        if key_layout is None or not self.config.exact_varchar:
            return None
        return inexact_prefix_end(key_layout)

    def _collapse_runs(self, layout: RowLayout, has_strings: bool) -> None:
        """Fan-in-limited pre-passes: merge run groups until k <= fan-in.

        With ``SortConfig.merge_fan_in`` unset the single-pass kernel
        merges any k directly and this is a no-op.  A bounded fan-in
        models a real memory budget (k frontier blocks must fit): each
        pass merges groups of ``fan_in`` runs into new spilled runs --
        re-reading and re-writing their bytes -- which is exactly the
        extra I/O that fewer, longer replacement-selection runs avoid.
        Intermediate runs keep full-width keys (row-id suffix included,
        rebased onto the final layout), so later passes treat them like
        any other run.  Exact-string refinement permutes rows *within*
        prefix-tied groups, which would break the intermediate runs'
        key-byte sortedness, so such sorts stay single-pass.
        """
        fan_in = self.config.merge_fan_in
        if fan_in < 2 or len(self._runs) <= fan_in:
            return
        if self._refine_end() is not None:
            return
        while len(self._runs) > fan_in:
            self._check_cancelled()
            # Snapshot: _store_run appends each merged run to self._runs
            # (for cleanup visibility), and iterating the live list would
            # let a group slice swallow a run created earlier this pass.
            current = list(self._runs)
            survivors: list[SpilledRun | InMemoryRun] = []
            for start in range(0, len(current), fan_in):
                group = current[start : start + fan_in]
                if len(group) == 1:
                    survivors.append(group[0])
                    continue
                # _merge_group stores through _store_run, which appends
                # to self._runs -- so a failure mid-pass still leaves
                # every live file visible to close()'s cleanup.
                survivors.append(self._merge_group(group, layout, has_strings))
                for run in group:
                    if run.on_disk:
                        self._remove_file(run.path)
            self._runs = survivors
            self.stats.merge_passes += 1

    def _merge_group(
        self,
        group: "list[SpilledRun | InMemoryRun]",
        layout: RowLayout,
        has_strings: bool,
    ) -> "SpilledRun | InMemoryRun":
        """Merge one group of runs into a single new (spilled) run.

        The same frontier kernel and gather helpers as the final merge,
        but the output goes back through ``_store_run`` instead of into
        the result table: full-width keys gathered per round (so the new
        run is self-contained), payload rows gathered and their string
        slots rebased onto a fresh per-run heap, offset-value codes
        recomputed for the merged order.
        """
        stats = self.stats
        if self._final_layout is not None:
            merge_width = self._final_layout.key_width
        else:
            merge_width = group[0].key_width - ROW_ID_WIDTH
        # Heap reads precede prefetcher creation so a read error cannot
        # leak the pool (the try/finally only guards the merge loop).
        raw_heaps = (
            [run.read_heap(stats) for run in group] if has_strings else None
        )
        heaps = (
            [np.frombuffer(heap, dtype=np.uint8) for heap in raw_heaps]
            if has_strings
            else None
        )
        prefetcher = self._make_prefetcher(group, merge_width)
        if prefetcher is not None:
            sources = [prefetcher.key_source(i) for i in range(len(group))]
        else:
            sources = [
                self._key_block_source(run, merge_width) for run in group
            ]
        kernel_stats = KWayBlockStats()
        key_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        heap_parts: list[bytes] = []
        heap_cursor = 0
        try:
            for run_ids, row_ids in kway_merge_stream(
                sources,
                kernel_stats,
                on_round=self._check_cancelled,
                use_ovc=self.config.use_ovc,
                prefetcher=prefetcher,
            ):
                key_parts.append(
                    self._gather_key_blocks(
                        group,
                        run_ids,
                        row_ids,
                        prefetch=prefetcher if self._key_carried else None,
                    )
                )
                if self._key_carried:
                    continue
                out_rows = self._gather_blocks(
                    group, run_ids, row_ids, prefetch=prefetcher
                )
                if has_strings:
                    heap_cursor = self._rebase_string_block(
                        layout,
                        out_rows,
                        run_ids,
                        heaps,
                        heap_parts,
                        heap_cursor,
                    )
                row_parts.append(out_rows)
        finally:
            if prefetcher is not None:
                prefetcher.close()
        stats.kernel_kway_merges += 1
        stats.kway_rounds += kernel_stats.rounds
        stats.ovc_compares += kernel_stats.ovc_compares
        stats.ovc_ties += kernel_stats.ovc_ties
        stats.kway_peak_frontier_rows = max(
            stats.kway_peak_frontier_rows, kernel_stats.peak_frontier_rows
        )
        keys = (
            key_parts[0]
            if len(key_parts) == 1
            else np.concatenate(key_parts)
        )
        keys = np.ascontiguousarray(keys)
        if self._key_carried or not row_parts:
            rows = np.empty((len(keys), 0), dtype=np.uint8)
        else:
            rows = np.ascontiguousarray(np.concatenate(row_parts))
        ovc = ovc_codes(keys[:, :merge_width])
        return self._store_run(
            keys, rows, b"".join(heap_parts), self._final_layout, ovc
        )

    # ------------------------------------------------------------------ #
    # Kernel (block-streaming) merge path
    # ------------------------------------------------------------------ #

    def _merge_streams_kernel(
        self, layout: RowLayout, has_strings: bool
    ) -> Table:
        stats = self.stats
        # Merge on the key bytes only: every spilled run carries an
        # 8-byte row-id suffix that ascends with run order, so the
        # kernel's stable earlier-run-first tie handling reproduces
        # full-key memcmp order without comparing the suffix.  Under key
        # compression the merge width is the final layout's; narrower
        # runs rebase per block inside the source iterators.
        if self._final_layout is not None:
            merge_width = self._final_layout.key_width
        else:
            merge_width = self._runs[0].key_width - ROW_ID_WIDTH
        key_layout = self._final_layout or self._plain_layout
        refine_end = self._refine_end()
        runs = self._runs
        # Heaps stay resident while rows stream: string offsets are
        # run-relative, so the bytes must remain addressable until the
        # row that references them is emitted.  Read them before the
        # prefetcher exists: a read error here must not leak its pool
        # (the try/finally below only guards the merge itself).
        raw_heaps = (
            [run.read_heap(stats) for run in self._runs]
            if has_strings
            else None
        )
        heaps = (
            [np.frombuffer(heap, dtype=np.uint8) for heap in raw_heaps]
            if has_strings
            else None
        )
        prefetcher = self._make_prefetcher(runs, merge_width)
        if prefetcher is not None:
            sources = [prefetcher.key_source(i) for i in range(len(runs))]
        else:
            sources = [
                self._key_block_source(run, merge_width) for run in runs
            ]

        kernel_stats = KWayBlockStats()
        row_parts: list[np.ndarray] = []
        key_parts: list[np.ndarray] = []
        heap_parts: list[bytes] = []
        heap_cursor = 0

        def emit(run_ids: np.ndarray, row_ids: np.ndarray) -> None:
            nonlocal heap_cursor
            if self._key_carried:
                # No payload was spilled; re-read the emitted key rows
                # (rebased onto the final layout) and decode them back
                # into columns after the merge.
                key_parts.append(
                    self._gather_key_blocks(
                        runs,
                        run_ids,
                        row_ids,
                        prefetch=prefetcher,
                    )
                )
                return
            out_rows = self._gather_blocks(
                runs, run_ids, row_ids, prefetch=prefetcher
            )
            if has_strings:
                heap_cursor = self._rebase_string_block(
                    layout, out_rows, run_ids, heaps, heap_parts, heap_cursor
                )
            row_parts.append(out_rows)

        rounds = kway_merge_stream(
            sources,
            kernel_stats,
            on_round=self._check_cancelled,
            use_ovc=self.config.use_ovc,
            emit_keys=refine_end is not None,
            prefetcher=prefetcher,
        )
        try:
            if refine_end is None:
                for run_ids, row_ids in rounds:
                    emit(run_ids, row_ids)
            else:
                # Exact strings: rows tied on the key bytes up to the
                # first truncated VARCHAR segment may still reorder once
                # the full strings are consulted, and such a tie group
                # can straddle a round boundary.  Hold back each round's
                # trailing tie group (the carry), refine every settled
                # batch with the same re-encode loop run generation
                # used, then emit it.
                carry: tuple[np.ndarray, np.ndarray, np.ndarray] | None = (
                    None
                )
                for run_ids, row_ids, words in rounds:
                    key_bytes = _words_to_bytes(words, merge_width)
                    if carry is not None:
                        run_ids = np.concatenate([carry[0], run_ids])
                        row_ids = np.concatenate([carry[1], row_ids])
                        key_bytes = np.concatenate([carry[2], key_bytes])
                    tail = _trailing_tie_start(key_bytes[:, :refine_end])
                    carry = (
                        run_ids[tail:],
                        row_ids[tail:],
                        key_bytes[tail:],
                    )
                    if tail:
                        emit(
                            *self._refine_settled(
                                run_ids[:tail],
                                row_ids[:tail],
                                key_bytes[:tail],
                                key_layout,
                                layout,
                                raw_heaps,
                            )
                        )
                if carry is not None and len(carry[0]):
                    emit(
                        *self._refine_settled(
                            carry[0],
                            carry[1],
                            carry[2],
                            key_layout,
                            layout,
                            raw_heaps,
                        )
                    )
        finally:
            # kway_merge_stream also closes the prefetcher when the
            # stream ends; this covers errors raised from emit/gather
            # before the stream is exhausted.  close() is idempotent.
            if prefetcher is not None:
                prefetcher.close()

        stats.kernel_kway_merges += 1
        stats.kway_rounds += kernel_stats.rounds
        stats.ovc_compares += kernel_stats.ovc_compares
        stats.ovc_ties += kernel_stats.ovc_ties
        stats.kway_peak_frontier_rows = max(
            stats.kway_peak_frontier_rows, kernel_stats.peak_frontier_rows
        )
        if self._key_carried:
            if not key_parts:
                return Table.empty(self.schema)
            matrix = (
                key_parts[0]
                if len(key_parts) == 1
                else np.concatenate(key_parts)
            )
            return decode_key_table(matrix, self._final_layout, self.schema)
        if not row_parts:
            return Table.empty(self.schema)
        merged = RowBlock(
            layout, np.concatenate(row_parts), b"".join(heap_parts)
        )
        return merged.to_table()

    def _refine_settled(
        self,
        run_ids: np.ndarray,
        row_ids: np.ndarray,
        key_bytes: np.ndarray,
        key_layout: KeyLayout,
        row_layout: RowLayout,
        raw_heaps: list[bytes] | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact-string repair of one settled merge batch.

        ``key_bytes`` are the batch's merged key rows (word-padded);
        tied rows' full strings are decoded on demand from the spilled
        payload -- one contiguous row read per contributing run, reused
        across the batch's key columns.
        """
        tables: dict[int, tuple[int, Table]] = {}

        def fetch_tied(tied):
            tied_runs = run_ids[tied]
            tied_rows = row_ids[tied]
            cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

            def get(name):
                if name in cache:
                    return cache[name]
                values = np.empty(len(tied), dtype=object)
                valid = np.zeros(len(tied), dtype=bool)
                for index in np.unique(tied_runs):
                    selected = np.flatnonzero(tied_runs == index)
                    positions = tied_rows[selected]
                    cached = tables.get(index)
                    lo = int(positions.min())
                    hi = int(positions.max()) + 1
                    if cached is None or not (
                        cached[0] <= lo and hi <= cached[0] + len(cached[1])
                    ):
                        rows = np.ascontiguousarray(
                            self._runs[index].read_row_block(
                                lo, hi, self.stats
                            )
                        )
                        heap = raw_heaps[index] if raw_heaps else b""
                        cached = (
                            lo,
                            RowBlock(row_layout, rows, heap).to_table(),
                        )
                        tables[index] = cached
                    base, decoded = cached
                    column = decoded.column(name)
                    local = positions - base
                    values[selected] = column.data[local]
                    valid[selected] = column.validity[local]
                cache[name] = (values, valid)
                return cache[name]

            return get

        perm = refine_key_order(
            key_bytes[:, : key_layout.key_width],
            key_layout,
            fetch_tied,
            self.stats,
        )
        if perm is None:
            return run_ids, row_ids
        return run_ids[perm], row_ids[perm]

    def _make_prefetcher(
        self,
        runs: "list[SpilledRun | InMemoryRun]",
        merge_width: int,
    ) -> BlockPrefetcher | None:
        """Build the read-ahead layer for one merge over ``runs``.

        ``None`` (prefetching disabled, no on-disk runs) keeps the merge
        on the synchronous source iterators.  The row stream carries the
        dominant per-round I/O: the payload rows, or -- for key-carried
        runs, which spill no payload -- the full-width key rows the
        emit path re-reads for decoding.
        """
        depth = self.config.prefetch_blocks
        if depth <= 0:
            return None
        active = [run.on_disk for run in runs]
        if not any(active):
            return None
        # The budget derives from the *live* (grant-shrunk) threshold,
        # so a governor revoking memory also shrinks the read-ahead
        # window the moment the next merge starts.
        budget = prefetch_budget_blocks(
            depth,
            sum(active),
            self.merge_block_rows,
            effective_run_threshold(self.config),
        )

        def key_fetch(index, start, stop, stats):
            return self._fetch_key_block(
                runs[index], start, stop, merge_width, stats
            )

        if self._key_carried:
            def row_fetch(index, start, stop, stats):
                return self._fetch_full_keys(runs[index], start, stop, stats)
        else:
            def row_fetch(index, start, stop, stats):
                return runs[index].read_row_block(start, stop, stats)

        return BlockPrefetcher(
            [run.num_rows for run in runs],
            active,
            self.merge_block_rows,
            key_fetch,
            row_fetch,
            depth,
            budget,
            self.stats,
            cancel_event=self.config.cancel_event,
        )

    def _fetch_key_block(
        self,
        run: "SpilledRun | InMemoryRun",
        start: int,
        stop: int,
        merge_width: int,
        stats: SortStats,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One merge-ready key block: read, rebase, truncate, slice codes.

        The body of :meth:`_key_block_source` for one explicit range;
        the prefetch layer calls it from worker threads (``stats`` is
        then a thread-private accumulator, merged at delivery).
        """
        final = self._final_layout
        block = run.read_key_block(start, stop, stats)
        if final is not None and run.layout is not None:
            block = rebase_matrix(block, run.layout, final)
        if block.shape[1] != merge_width:
            block = block[:, :merge_width]
        codes = run.ovc
        if codes is not None and final is not None and run.layout != final:
            codes = None
        return block, (None if codes is None else codes[start:stop])

    def _fetch_full_keys(
        self,
        run: "SpilledRun | InMemoryRun",
        start: int,
        stop: int,
        stats: SortStats,
    ) -> np.ndarray:
        """Full-width key rows rebased onto the final layout."""
        final = self._final_layout
        block = run.read_key_block(start, stop, stats)
        if final is not None and run.layout is not None:
            block = rebase_matrix(block, run.layout, final)
        return block

    def _gather_blocks(
        self,
        runs: "list[SpilledRun | InMemoryRun]",
        run_ids: np.ndarray,
        row_ids: np.ndarray,
        prefetch: BlockPrefetcher | None = None,
    ) -> np.ndarray:
        """Materialize one emitted round's payload rows in merge order.

        Each contributing run's rows form one contiguous range (a prefix
        of its frontier -- exact-string refinement may permute rows
        within the range but never leaves it), so the round needs
        exactly one contiguous spill read per run -- served from the
        read-ahead window when a prefetcher is active; interleaving back
        into merge order is a single vectorized gather.
        """
        parts: list[np.ndarray] = []
        bases = np.zeros(len(runs), dtype=np.int64)
        cursor = 0
        for index in np.unique(run_ids):
            positions = row_ids[run_ids == index]
            lo, hi = int(positions.min()), int(positions.max()) + 1
            if prefetch is not None:
                parts.append(prefetch.read_rows(int(index), lo, hi))
            else:
                parts.append(runs[index].read_row_block(lo, hi, self.stats))
            bases[index] = cursor - lo
            cursor += hi - lo
        stacked = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return np.ascontiguousarray(stacked[bases[run_ids] + row_ids])

    def _key_block_source(
        self, run: "SpilledRun | InMemoryRun", merge_width: int
    ) -> Iterator[tuple[np.ndarray, np.ndarray | None]]:
        """Stream a run's ``(key block, offset-value codes)`` pairs.

        Each block is read with one seek, rebased onto the final key
        layout when the run was written under a narrower one, and
        truncated to ``merge_width`` (the merge drops the row-id suffix).
        Stored codes ride along only when the run's layout already is the
        merge layout -- rebasing moves word boundaries, which would make
        them stale.
        """
        final = self._final_layout
        codes = run.ovc
        if codes is not None and final is not None and run.layout != final:
            codes = None
        for start in range(0, run.num_rows, self.merge_block_rows):
            stop = min(start + self.merge_block_rows, run.num_rows)
            block = run.read_key_block(start, stop, self.stats)
            if final is not None and run.layout is not None:
                block = rebase_matrix(block, run.layout, final)
            if block.shape[1] != merge_width:
                block = block[:, :merge_width]
            yield block, (None if codes is None else codes[start:stop])

    def _gather_key_blocks(
        self,
        runs: "list[SpilledRun | InMemoryRun]",
        run_ids: np.ndarray,
        row_ids: np.ndarray,
        prefetch: BlockPrefetcher | None = None,
    ) -> np.ndarray:
        """One emitted round's full key rows in merge order.

        Mirror of :meth:`_gather_blocks` over the keys section: one
        contiguous read per contributing run, rebased onto the final
        layout (the prefetcher's row stream delivers blocks already
        rebased), then a single vectorized gather back into merge order.
        Used by the key-carried emit path and by the fan-in merge's
        intermediate runs.
        """
        parts: list[np.ndarray] = []
        bases = np.zeros(len(runs), dtype=np.int64)
        cursor = 0
        for index in np.unique(run_ids):
            positions = row_ids[run_ids == index]
            lo, hi = int(positions.min()), int(positions.max()) + 1
            if prefetch is not None:
                parts.append(prefetch.read_rows(int(index), lo, hi))
            else:
                parts.append(
                    self._fetch_full_keys(runs[index], lo, hi, self.stats)
                )
            bases[index] = cursor - lo
            cursor += hi - lo
        stacked = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return np.ascontiguousarray(stacked[bases[run_ids] + row_ids])

    def _rebase_string_block(
        self,
        layout: RowLayout,
        out_rows: np.ndarray,
        run_ids: np.ndarray,
        heaps: list[np.ndarray],
        heap_parts: list[bytes],
        heap_cursor: int,
    ) -> int:
        """Rewrite one output block's string slots onto the merged heap.

        Vectorized per (string slot, source run): the referenced bytes are
        gathered out of the run heap with one fancy-indexing pass
        (:func:`repro.rows.block.gather_slices`) and the slot offsets are
        rewritten to the merged heap's running cursor.  Returns the new
        cursor.
        """
        for col_index, slot in enumerate(layout.slots):
            if not slot.is_string:
                continue
            byte_off, bit = layout.validity_position(col_index)
            valid = ((out_rows[:, byte_off] >> np.uint8(bit)) & 1).astype(
                bool
            )
            view = out_rows[:, slot.offset : slot.offset + 8]
            offsets = np.ascontiguousarray(view[:, :4]).view(np.uint32)
            offsets = offsets.reshape(-1).copy()
            lengths = (
                np.ascontiguousarray(view[:, 4:]).view(np.uint32).reshape(-1)
            )
            for index in np.unique(run_ids):
                selected = np.flatnonzero(valid & (run_ids == index))
                if not len(selected):
                    continue
                sel_lengths = lengths[selected].astype(np.int64)
                gathered = gather_slices(
                    heaps[index],
                    offsets[selected].astype(np.int64),
                    sel_lengths,
                )
                ends = np.cumsum(sel_lengths)
                offsets[selected] = (
                    heap_cursor + ends - sel_lengths
                ).astype(np.uint32)
                heap_parts.append(gathered.tobytes())
                heap_cursor += int(ends[-1]) if len(ends) else 0
            out_rows[:, slot.offset : slot.offset + 4] = offsets.view(
                np.uint8
            ).reshape(-1, 4)
        return heap_cursor

    # ------------------------------------------------------------------ #
    # Scalar (tournament heap) merge path
    # ------------------------------------------------------------------ #

    def _merge_streams_scalar(
        self, layout: RowLayout, has_strings: bool
    ) -> Table:
        self.stats.scalar_kway_merges += 1
        heaps = (
            [run.read_heap(self.stats) for run in self._runs]
            if has_strings
            else [b""] * len(self._runs)
        )

        out_blocks: list[RowBlock] = []
        pending_rows: list[np.ndarray] = []
        pending_heap_parts: list[bytes] = []
        pending_heap_bytes = 0
        row_cache: dict[int, tuple[int, np.ndarray]] = {}

        def fetch_row(run_index: int, position: int) -> np.ndarray:
            """Payload row by position, reading block-sized slices."""
            cached = row_cache.get(run_index)
            if cached is None or not (
                cached[0] <= position < cached[0] + len(cached[1])
            ):
                start = (
                    position // self.merge_block_rows
                ) * self.merge_block_rows
                stop = min(
                    start + self.merge_block_rows,
                    self._runs[run_index].num_rows,
                )
                cached = (
                    start,
                    self._runs[run_index].read_row_block(
                        start, stop, self.stats
                    ),
                )
                row_cache[run_index] = cached
            return cached[1][position - cached[0]]

        def flush_pending() -> None:
            nonlocal pending_heap_bytes
            if not pending_rows:
                return
            rows = np.stack(pending_rows)
            block = RowBlock(layout, rows, b"".join(pending_heap_parts))
            out_blocks.append(block)
            pending_rows.clear()
            pending_heap_parts.clear()
            pending_heap_bytes = 0

        result: Table | None = None
        for run_index, position in self._heap_order():
            self._check_cancelled()
            if has_strings:
                row = fetch_row(run_index, position).copy()
                row, heap_part = _rebase_strings(
                    layout, row, heaps[run_index], pending_heap_bytes
                )
                pending_heap_parts.append(heap_part)
                pending_heap_bytes += len(heap_part)
            else:
                row = fetch_row(run_index, position)
            pending_rows.append(row)
            if len(pending_rows) >= self.merge_block_rows:
                flush_pending()
        flush_pending()
        for block in out_blocks:
            table = block.to_table()
            result = table if result is None else result.concat(table)
        return result if result is not None else Table.empty(self.schema)

    def _heap_order(self) -> Iterator[tuple[int, int]]:
        """Scalar merge order: a tournament heap over per-row key bytes.

        Keys stream block-by-block from the spill files (same bounded
        reads as the kernel path); each popped row costs one Python heap
        operation and one ``tobytes`` -- the per-tuple overhead the kernel
        path eliminates.  When the key layout truncates a VARCHAR
        prefix (and ``SortConfig.exact_varchar`` holds), the heap keys
        are augmented per row: each truncated segment's bytes are
        replaced by the full terminated string encoding
        (:func:`_augmented_key`), so the scalar merge is exact too.
        """
        final = self._final_layout
        key_layout = final or self._plain_layout
        augment = (
            key_layout is not None
            and self.config.exact_varchar
            and inexact_prefix_end(key_layout) is not None
        )
        row_layout = RowLayout.for_schema(self.schema) if augment else None

        def raw_rows(run: SpilledRun | InMemoryRun) -> Iterator[bytes]:
            # Full-width rows (row-id suffix included, globally ascending)
            # so heap ties never happen; compressed runs rebase onto the
            # final layout first so bytes compare across runs.
            heap = run.read_heap(self.stats) if augment else b""
            for start in range(0, run.num_rows, self.merge_block_rows):
                stop = min(start + self.merge_block_rows, run.num_rows)
                block = run.read_key_block(start, stop, self.stats)
                if final is not None and run.layout is not None:
                    block = rebase_matrix(block, run.layout, final)
                if not augment:
                    for i in range(len(block)):
                        yield block[i].tobytes()
                    continue
                rows = np.ascontiguousarray(
                    run.read_row_block(start, stop, self.stats)
                )
                decoded = RowBlock(row_layout, rows, heap).to_table()
                for i in range(len(block)):
                    yield _augmented_key(block[i], key_layout, decoded, i)

        streams = [raw_rows(run) for run in self._runs]
        heap: list[tuple[bytes, int, int]] = []
        for run_index, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heap.append((first, run_index, 0))
        heapq.heapify(heap)
        while heap:
            _, run_index, position = heapq.heappop(heap)
            yield run_index, position
            following = next(streams[run_index], None)
            if following is not None:
                heapq.heappush(
                    heap, (following, run_index, position + 1)
                )


def external_sort_table(
    table: Table,
    spec: SortSpec | str,
    config: SortConfig | None = None,
    spill_directory: str | None = None,
) -> Table:
    """One-shot external sort of a table (spills runs to disk)."""
    if isinstance(spec, str):
        spec = SortSpec.of(*[part.strip() for part in spec.split(",")])
    config = config or SortConfig()
    with ExternalSortOperator(
        table.schema, spec, config, spill_directory
    ) as operator:
        for chunk in chunk_table(table, config.vector_size):
            operator.sink(chunk)
        return operator.finalize()


def _concat_tables(parts: "list[Table]") -> Table:
    """Pairwise tree concatenation: O(n log k) rows copied, not O(n k)."""
    while len(parts) > 1:
        merged = [
            parts[i].concat(parts[i + 1])
            if i + 1 < len(parts)
            else parts[i]
            for i in range(0, len(parts), 2)
        ]
        parts = merged
    return parts[0]


def _words_to_bytes(words: np.ndarray, width: int) -> np.ndarray:
    """Merged uint64 key words back to their big-endian key byte rows."""
    count, word_count = words.shape
    return (
        words.astype(">u8")
        .view(np.uint8)
        .reshape(count, word_count * 8)[:, :width]
    )


def _trailing_tie_start(prefix: np.ndarray) -> int:
    """First row of the trailing maximal group of equal prefix rows.

    Returns 0 when every row of ``prefix`` belongs to one tied group
    (the whole batch must be carried into the next merge round).
    """
    if len(prefix) < 2:
        return 0
    distinct = np.flatnonzero(np.any(prefix[1:] != prefix[:-1], axis=1))
    return int(distinct[-1]) + 1 if len(distinct) else 0


def _augmented_key(
    key_row: np.ndarray, key_layout: KeyLayout, decoded: Table, i: int
) -> bytes:
    """Variable-length comparable key bytes with full strings inlined.

    Byte-wise identical semantics to the normalized key, except every
    truncated VARCHAR segment's value bytes are replaced by the full
    UTF-8 encoding plus a terminator: ``0x00`` ascending, ``0xFF`` after
    byte-wise inversion descending.  Neither terminator can occur inside
    the encoded value (UTF-8 of NUL-free text has no zero byte; inverted
    bytes are at most 0xFE), so a comparison either decides inside the
    string region or falls through to the next segment with alignment
    intact.  NULL rows keep only the segment's null-marker byte, which
    already separates them from every valid row.
    """
    parts: list[bytes] = []
    cursor = 0
    for segment in key_layout.segments:
        if segment.prefix_exact:
            continue
        start = segment.offset + segment.total_width - segment.value_width
        parts.append(key_row[cursor:start].tobytes())
        cursor = segment.offset + segment.total_width
        column = decoded.column(segment.key.column)
        if column.validity[i]:
            encoded = str(column.data[i]).encode("utf-8")
            if segment.key.descending:
                parts.append(bytes(255 - b for b in encoded) + b"\xff")
            else:
                parts.append(encoded + b"\x00")
    parts.append(key_row[cursor:].tobytes())
    return b"".join(parts)


def _rebase_strings(
    layout: RowLayout, row: np.ndarray, source_heap: bytes, heap_base: int
) -> tuple[np.ndarray, bytes]:
    """Copy a row's strings out of its run heap into the output heap.

    Scalar-path helper; returns the adjusted row and the bytes to append
    to the output heap.
    """
    parts: list[bytes] = []
    cursor = heap_base
    for col_index, slot in enumerate(layout.slots):
        if not slot.is_string:
            continue
        byte_off, bit = layout.validity_position(col_index)
        if not (int(row[byte_off]) >> bit) & 1:
            continue
        view = row[slot.offset : slot.offset + 8]
        offset = int(np.ascontiguousarray(view[:4]).view(np.uint32)[0])
        length = int(np.ascontiguousarray(view[4:]).view(np.uint32)[0])
        parts.append(source_heap[offset : offset + length])
        new_offset = np.array([cursor], dtype=np.uint32)
        row[slot.offset : slot.offset + 4] = new_offset.view(np.uint8)
        cursor += length
    return row, b"".join(parts)
