"""Introsort: the ``std::sort`` analogue used by the micro-benchmarks.

The paper deliberately benchmarks layouts and comparators against
``std::sort`` -- an introspective sort (Musser 1997): median-of-3 quicksort
that switches to heapsort past a 2*log2(n) depth limit and finishes small
partitions with insertion sort.  This port keeps that structure so the
production face and the instrumented simulator face run the same algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, MutableSequence

__all__ = ["INSERTION_THRESHOLD", "IntroStats", "introsort", "intro_argsort"]

INSERTION_THRESHOLD = 16
"""libstdc++'s cutoff below which partitions are insertion sorted."""

Less = Callable[[Any, Any], bool]


class IntroStats:
    """Counters describing one introsort run."""

    __slots__ = ("comparisons", "swaps", "heapsort_fallbacks")

    def __init__(self) -> None:
        self.comparisons = 0
        self.swaps = 0
        self.heapsort_fallbacks = 0


def _default_less(a: Any, b: Any) -> bool:
    return a < b


def introsort(
    items: MutableSequence[Any],
    less: Less | None = None,
    stats: IntroStats | None = None,
) -> None:
    """Sort ``items`` in place with introspective sort."""
    n = len(items)
    if n < 2:
        return
    worker = _Intro(items, less or _default_less, stats)
    worker.sort(0, n, 2 * _log2(n))
    worker.insertion_sort(0, n)


def intro_argsort(keys: list[Any], less: Less | None = None) -> list[int]:
    """Indices that would sort ``keys`` (unstable, like std::sort)."""
    base_less = less or _default_less
    order = list(range(len(keys)))
    introsort(order, lambda i, j: base_less(keys[i], keys[j]))
    return order


def _log2(n: int) -> int:
    return max(1, n.bit_length() - 1)


class _Intro:
    __slots__ = ("a", "less", "stats")

    def __init__(self, a: MutableSequence[Any], less: Less, stats) -> None:
        self.a = a
        self.less = less
        self.stats = stats

    def _lt(self, x: Any, y: Any) -> bool:
        if self.stats is not None:
            self.stats.comparisons += 1
        return self.less(x, y)

    def _swap(self, i: int, j: int) -> None:
        if self.stats is not None:
            self.stats.swaps += 1
        a = self.a
        a[i], a[j] = a[j], a[i]

    def _median_to_first(self, first: int, i: int, j: int, k: int) -> None:
        """Place the median of a[i], a[j], a[k] at a[first]."""
        a = self.a
        if self._lt(a[i], a[j]):
            if self._lt(a[j], a[k]):
                self._swap(first, j)
            elif self._lt(a[i], a[k]):
                self._swap(first, k)
            else:
                self._swap(first, i)
        elif self._lt(a[i], a[k]):
            self._swap(first, i)
        elif self._lt(a[j], a[k]):
            self._swap(first, k)
        else:
            self._swap(first, j)

    def _partition(self, begin: int, end: int) -> int:
        """Hoare partition on the median-of-3 pivot placed at a[begin]."""
        a = self.a
        mid = begin + (end - begin) // 2
        self._median_to_first(begin, begin + 1, mid, end - 1)
        pivot = a[begin]
        first, last = begin + 1, end
        while True:
            while self._lt(a[first], pivot):
                first += 1
            last -= 1
            while self._lt(pivot, a[last]):
                last -= 1
            if first >= last:
                return first
            self._swap(first, last)
            first += 1

    def _heapsort(self, begin: int, end: int) -> None:
        if self.stats is not None:
            self.stats.heapsort_fallbacks += 1
        n = end - begin

        def sift_down(root: int, stop: int) -> None:
            a = self.a
            while True:
                child = 2 * (root - begin) + 1 + begin
                if child >= stop:
                    return
                if child + 1 < stop and self._lt(a[child], a[child + 1]):
                    child += 1
                if self._lt(a[root], a[child]):
                    self._swap(root, child)
                    root = child
                else:
                    return

        for start in range(begin + n // 2 - 1, begin - 1, -1):
            sift_down(start, end)
        for stop in range(end - 1, begin, -1):
            self._swap(begin, stop)
            sift_down(begin, stop)

    def sort(self, begin: int, end: int, depth_limit: int) -> None:
        """The introsort loop: quicksort until small or too deep.

        Like libstdc++, partitions below INSERTION_THRESHOLD are left
        unsorted here and finished by one final insertion-sort sweep.
        """
        while end - begin > INSERTION_THRESHOLD:
            if depth_limit == 0:
                self._heapsort(begin, end)
                return
            depth_limit -= 1
            cut = self._partition(begin, end)
            self.sort(cut, end, depth_limit)
            end = cut

    def insertion_sort(self, begin: int, end: int) -> None:
        a = self.a
        for i in range(begin + 1, end):
            value = a[i]
            j = i - 1
            while j >= begin and self._lt(value, a[j]):
                a[j + 1] = a[j]
                j -= 1
            a[j + 1] = value
