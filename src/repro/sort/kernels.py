"""Vectorized kernels over normalized-key byte matrices.

The whole point of normalized keys (paper, Section V) is that one memcmp
decides a comparison.  These kernels push that one step further: an entire
``(n, width)`` uint8 key matrix is reinterpreted so that **numpy scalar
order is memcmp order**, and then merging and sorting become single numpy
calls with zero Python-level per-row work.

The reinterpretation (:func:`void_view`) views each key row as one
structured (void) scalar whose fields are big-endian unsigned integers
covering the row -- field-by-field comparison of big-endian words is
exactly byte-wise memcmp.  On top of it:

* :func:`argsort_rows` -- stable whole-matrix argsort (one ``np.argsort``),
* :func:`merge_indices` -- merge two sorted matrices via two
  ``np.searchsorted`` calls (O(n log m) comparisons, all in C), returning
  the gather permutation over the concatenated inputs.

Correctness requires that memcmp order over the key bytes is the intended
order, i.e. the keys' ``prefix_exact`` flag holds; callers with truncated
VARCHAR prefixes run these kernels on the prefix bytes and then repair the
byte-equal tie groups with :mod:`repro.sort.stringsort`.

The merge kernels additionally understand **offset-value coding** (Do &
Graefe, arXiv 2209.08420), adapted to whole-block operation: instead of a
per-row (offset, value) pair driving a tournament tree, each merge round
derives the number of leading uint64 words shared by *every* frontier row
(:func:`ovc_codes` / the first-vs-last induction in the merge paths) and
skips those words entirely, so duplicate-heavy keys cost one word compare --
or none at all, when the round's keys are all equal -- instead of a full
memcmp each.
"""

from __future__ import annotations

import functools
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import SortError

__all__ = [
    "void_view",
    "argsort_rows",
    "radix_argsort_rows",
    "RADIX_FINISH_ROWS",
    "merge_indices",
    "merge_matrices",
    "ovc_codes",
    "KWayBlockStats",
    "kway_merge_blocks",
]


@functools.lru_cache(maxsize=None)
def _row_dtype(width: int) -> np.dtype:
    """Structured dtype of ``width`` bytes whose order is memcmp order.

    The row is covered greedily with big-endian unsigned fields (8, 4, 2,
    then 1 bytes wide); lexicographic comparison of big-endian words equals
    byte-wise comparison, and numpy compares structured scalars field by
    field in declaration order.
    """
    fields = []
    remaining = width
    while remaining:
        for chunk in (8, 4, 2, 1):
            if chunk <= remaining:
                fields.append((f"b{len(fields)}", f">u{chunk}"))
                remaining -= chunk
                break
    return np.dtype(fields)


def _check_matrix(matrix: np.ndarray) -> None:
    if not isinstance(matrix, np.ndarray) or matrix.dtype != np.uint8:
        raise SortError("kernels expect an (n, width) uint8 key matrix")
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise SortError(
            f"kernels expect an (n, width) uint8 key matrix with width >= 1, "
            f"got shape {matrix.shape}"
        )


def void_view(matrix: np.ndarray) -> np.ndarray:
    """View an ``(n, width)`` uint8 matrix as ``n`` whole-row scalars.

    The returned 1-D array holds one structured (void) scalar per key row;
    numpy ``np.argsort`` and ``np.searchsorted`` over it follow memcmp
    order of the rows.  No data is copied unless the matrix is not
    C-contiguous.

    This is the semantic core of the kernel layer.  The sorting kernels
    below use the equivalent :func:`_chunk_columns` representation
    (native-endian uint64 words) instead, because numpy compares
    structured scalars through a generic field-walking routine while
    plain uint64 columns hit the type-specialized (vectorized) sort and
    search loops.
    """
    _check_matrix(matrix)
    contiguous = np.ascontiguousarray(matrix)
    return contiguous.view(_row_dtype(matrix.shape[1])).reshape(len(matrix))


def _chunk_columns(matrix: np.ndarray) -> list[np.ndarray]:
    """Decompose key rows into native uint64 words preserving memcmp order.

    Each 8-byte slice of the row (the last one zero-padded) is read as a
    big-endian word and converted to native endianness: comparing the word
    list lexicographically equals comparing the rows with memcmp, and each
    word column sorts/searches at full native-integer speed.

    The whole matrix is processed with three whole-matrix operations at
    most -- one zero-pad (only when the width is not a multiple of 8), one
    byte-swapping cast, one transpose copy -- instead of a pad + cast per
    word.  The returned word columns are contiguous views sharing a single
    backing buffer (callers and tests rely on this: re-chunking a block
    never allocates per-word temporaries).
    """
    _check_matrix(matrix)
    n, width = matrix.shape
    words = (width + 7) // 8
    if width % 8:
        padded = np.zeros((n, words * 8), dtype=np.uint8)
        padded[:, :width] = matrix
    else:
        padded = np.ascontiguousarray(matrix)
    swapped = padded.view(">u8").astype(np.uint64, copy=False)
    stacked = np.ascontiguousarray(swapped.T)
    return [stacked[word] for word in range(words)]


def argsort_rows(matrix: np.ndarray) -> np.ndarray:
    """Stable argsort of whole key rows (memcmp order), fully vectorized.

    One ``np.argsort`` for keys of at most 8 bytes, ``np.lexsort`` over
    the uint64 word columns otherwise -- both stable, both running
    type-specialized native sorts.
    """
    columns = _chunk_columns(matrix)
    if len(columns) == 1:
        order = np.argsort(columns[0], kind="stable")
    else:
        order = np.lexsort(tuple(reversed(columns)))
    return order.astype(np.int64, copy=False)


RADIX_FINISH_ROWS = 1 << 10
"""Spans at or below this row count are finished with :func:`argsort_rows`
over the remaining key bytes instead of further MSD partitioning."""


def radix_argsort_rows(matrix: np.ndarray, stats=None) -> np.ndarray:
    """Stable MSD radix argsort of whole key rows, fully vectorized.

    The paper's Section VI-B radix sort, with every per-row step a numpy
    primitive: the histogram of the active byte is one ``np.bincount``, and
    the stable counting-sort scatter is numpy's stable ``np.argsort`` of
    the uint8 column (which *is* a counting sort internally).  Recursion is
    an explicit stack of ``(start, stop, byte)`` spans; per span:

    * single occupied bucket -> skip-copy (no data movement), descend to
      the next byte;
    * otherwise scatter once, then split into bucket spans from the
      histogram's cumulative sum.  Adjacent small buckets are coalesced
      into one span so the finisher below amortizes across them.

    Spans of at most :data:`RADIX_FINISH_ROWS` rows (and spans at the last
    byte) are finished with :func:`argsort_rows` over the *remaining* bytes
    -- starting at the span's current byte, because a coalesced span still
    mixes leading-byte values.

    ``stats``, if given, must expose the
    :class:`repro.sort.radix.RadixStats` interface (duck-typed; this module
    cannot import :mod:`repro.sort.radix`, which imports it).  The result
    is byte-for-byte the permutation :func:`argsort_rows` returns -- both
    are stable sorts of the same rows.
    """
    _check_matrix(matrix)
    n, width = matrix.shape
    order = np.arange(n, dtype=np.int64)
    if n <= 1:
        return order
    contiguous = np.ascontiguousarray(matrix)
    stack: list[tuple[int, int, int]] = [(0, n, 0)]
    while stack:
        start, stop, byte = stack.pop()
        count = stop - start
        if count <= 1:
            continue
        if count <= RADIX_FINISH_ROWS or byte >= width - 1:
            span = order[start:stop]
            suffix = contiguous[span, byte:]
            order[start:stop] = span[argsort_rows(suffix)]
            if stats is not None:
                stats.vector_finished_buckets += 1
                stats.rows_moved += count
            continue
        column = contiguous[order[start:stop], byte]
        histogram = np.bincount(column, minlength=256)
        occupied = np.flatnonzero(histogram)
        if len(occupied) == 1:
            # Skip-copy: one bucket holds every row, no movement needed.
            if stats is not None:
                stats.record_pass(0, skipped=True)
            stack.append((start, stop, byte + 1))
            continue
        scatter = np.argsort(column, kind="stable")
        order[start:stop] = order[start:stop][scatter]
        if stats is not None:
            stats.record_pass(count, skipped=False)
        # Bucket spans from the histogram prefix sums.  Occupied buckets
        # are adjacent in the scattered order, so small neighbours can be
        # coalesced into one span for the argsort finisher.
        ends = np.cumsum(histogram)
        acc_start = acc_end = -1
        for bucket in occupied:
            bucket_end = start + int(ends[bucket])
            bucket_start = bucket_end - int(histogram[bucket])
            size = bucket_end - bucket_start
            if size > RADIX_FINISH_ROWS:
                if acc_start >= 0:
                    stack.append((acc_start, acc_end, byte))
                    acc_start = -1
                stack.append((bucket_start, bucket_end, byte + 1))
            elif acc_start < 0:
                acc_start, acc_end = bucket_start, bucket_end
            elif bucket_end - acc_start <= RADIX_FINISH_ROWS:
                acc_end = bucket_end
            else:
                stack.append((acc_start, acc_end, byte))
                acc_start, acc_end = bucket_start, bucket_end
        if acc_start >= 0:
            stack.append((acc_start, acc_end, byte))
    return order


def ovc_codes(matrix: np.ndarray) -> np.ndarray:
    """Offset-value codes of a sorted key matrix, vectorized.

    ``codes[i]`` is the index of the first uint64 word where row ``i``
    differs from row ``i - 1`` (``codes[0]`` is 0); a code equal to the
    word count marks the row as a full duplicate of its predecessor.  The
    array is the block-friendly form of Do & Graefe's per-row offset-value
    code: within a sorted run the offset alone identifies how much prefix a
    successor shares, which is what the merge paths need to skip
    already-decided words.  Computed with one adjacent-row comparison per
    word column -- no per-row Python.
    """
    _check_matrix(matrix)
    n = len(matrix)
    codes = np.zeros(n, dtype=np.uint16)
    if n < 2:
        return codes
    columns = _chunk_columns(matrix)
    words = len(columns)
    diffs = np.stack([col[1:] != col[:-1] for col in columns], axis=1)
    any_diff = diffs.any(axis=1)
    first = np.where(any_diff, np.argmax(diffs, axis=1), words)
    codes[1:] = first.astype(np.uint16)
    return codes


def _common_prefix_words(column_lists: Sequence[Sequence[np.ndarray]]) -> int:
    """Number of leading uint64 words shared by every row of every block.

    Each entry of ``column_lists`` is the word-column decomposition of one
    *sorted* block.  Word ``j`` of a sorted block is constant iff its first
    and last entries are equal, provided all words before ``j`` are
    constant -- which this loop establishes inductively -- so the check is
    O(words * k) with no row scans.  Empty blocks impose no constraint.
    """
    words = min(len(columns) for columns in column_lists)
    skip = 0
    while skip < words:
        value = None
        for columns in column_lists:
            column = columns[skip]
            if not len(column):
                continue
            if column[0] != column[-1]:
                return skip
            if value is None:
                value = column[0]
            elif column[0] != value:
                return skip
        skip += 1
    return skip


def merge_indices(
    a: np.ndarray,
    b: np.ndarray,
    stats=None,
    use_ovc: bool = True,
) -> np.ndarray:
    """Gather permutation merging two sorted key matrices.

    ``a`` and ``b`` must be row-sorted matrices of equal width.  Returns an
    int64 permutation ``perm`` of ``len(a) + len(b)`` such that
    ``np.concatenate([a, b])[perm]`` is the sorted merge.  Ties take rows
    of ``a`` first, so the merge is stable when ``a`` is the earlier run.

    With ``use_ovc`` (the default) the offset-value-coding prefix skip
    runs first: uint64 words constant and equal across both inputs
    (established by the first-vs-last induction of
    :func:`_common_prefix_words`) are excluded from the comparison, and
    when *every* word is shared -- duplicate-heavy keys -- the merge
    degenerates to ``np.arange``, no comparisons at all.  ``stats``, if
    given, must expose ``ovc_compares`` / ``ovc_ties`` counters
    (:class:`KWayBlockStats` or ``SortStats``): rows ordered through word
    comparisons count as compares, rows settled with all words equal as
    ties.

    Keys that (after the skip) span at most 8 bytes merge with two
    ``np.searchsorted`` binary searches (O(n log m) native word
    comparisons); wider keys merge with a stable ``np.lexsort`` over the
    uint64 word columns of the concatenation.  Either way the Python-level
    cost is O(1) regardless of the row count.
    """
    if a.shape[1] != b.shape[1]:
        raise SortError(
            f"cannot merge key matrices of widths {a.shape[1]} and "
            f"{b.shape[1]}"
        )
    cols_a = _chunk_columns(a)
    cols_b = _chunk_columns(b)
    n, m = len(a), len(b)
    if use_ovc and n and m:
        skip = _common_prefix_words([cols_a, cols_b])
        if skip == len(cols_a):
            # Every key in both inputs is one value: concatenation in run
            # order already is the stable merge.
            if stats is not None:
                stats.ovc_ties += n + m
            return np.arange(n + m, dtype=np.int64)
        if skip:
            cols_a = cols_a[skip:]
            cols_b = cols_b[skip:]
        if stats is not None:
            stats.ovc_compares += n + m
    if len(cols_a) == 1:
        va, vb = cols_a[0], cols_b[0]
        # Output slot of a[i]: i rows of a precede it, plus every b row
        # strictly smaller ('left' => equal b rows land after a rows).
        out_a = np.arange(n, dtype=np.int64) + np.searchsorted(
            vb, va, side="left"
        )
        # Output slot of b[j]: j rows of b precede it, plus every a row
        # smaller or equal ('right' => equal a rows land before b rows).
        out_b = np.arange(m, dtype=np.int64) + np.searchsorted(
            va, vb, side="right"
        )
        perm = np.empty(n + m, dtype=np.int64)
        perm[out_a] = np.arange(n, dtype=np.int64)
        perm[out_b] = np.arange(n, n + m, dtype=np.int64)
        return perm
    combined = tuple(
        np.concatenate([col_a, col_b])
        for col_a, col_b in zip(reversed(cols_a), reversed(cols_b))
    )
    # lexsort is stable and both halves are sorted, so this IS the merge,
    # with a's rows winning ties.
    return np.lexsort(combined).astype(np.int64, copy=False)


def merge_matrices(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted key matrices; returns ``(merged, perm)``.

    Convenience wrapper over :func:`merge_indices` that also gathers the
    merged key matrix.
    """
    perm = merge_indices(a, b)
    return np.concatenate([a, b])[perm], perm


# ---------------------------------------------------------------------- #
# Block-streaming k-way merge
# ---------------------------------------------------------------------- #


class KWayBlockStats:
    """Counters describing one block-streaming k-way merge.

    ``peak_frontier_rows`` is the maximum number of key rows buffered
    across all run frontiers at any point -- the merge's working set, which
    stays bounded by ``k * block_rows`` no matter how large the runs are.

    ``ovc_compares`` counts rows ordered through uint64 word comparisons
    after the offset-value prefix skip; ``ovc_ties`` counts rows settled
    without any comparison -- rounds whose keys were all equal, plus rows
    whose stored offset-value code marks them as duplicates of their run
    predecessor.
    """

    __slots__ = (
        "rounds",
        "rows_emitted",
        "refills",
        "peak_frontier_rows",
        "ovc_compares",
        "ovc_ties",
    )

    def __init__(self) -> None:
        self.rounds = 0
        self.rows_emitted = 0
        self.refills = 0
        self.peak_frontier_rows = 0
        self.ovc_compares = 0
        self.ovc_ties = 0


def _count_below(
    columns: Sequence[np.ndarray], cutoff: tuple[int, ...]
) -> tuple[int, int]:
    """``(lt, le)`` counts of sorted frontier rows vs. a cutoff key.

    Progressive binary search: after narrowing on word ``j``, positions
    ``[0, lo)`` are strictly below the cutoff and ``[lo, hi)`` tie it on
    every word so far, so the final ``lo`` counts rows < cutoff and the
    final ``hi`` rows <= cutoff.  Costs O(words * log n) -- no per-row
    work.
    """
    lo, hi = 0, len(columns[0])
    for column, word in zip(columns, cutoff):
        segment = column[lo:hi]
        # np.uint64, not Python int: mixing int with a uint64 array
        # promotes to float64, which rounds words above 2**53.
        value = np.uint64(word)
        left = lo + int(np.searchsorted(segment, value, side="left"))
        right = lo + int(np.searchsorted(segment, value, side="right"))
        lo, hi = left, right
        if lo == hi:
            break
    return lo, hi


def kway_merge_blocks(
    sources: Sequence[Iterable],
    stats: KWayBlockStats | None = None,
    *,
    use_ovc: bool = True,
    emit_keys: bool = False,
) -> Iterator[tuple]:
    """Streaming k-way merge of sorted runs, one bounded block at a time.

    ``sources`` holds one iterable per run, each yielding successive
    ``(m, width)`` uint8 key-matrix blocks of that run in sorted order (all
    runs share one width) -- or ``(block, codes)`` pairs where ``codes`` is
    the block's slice of the run's :func:`ovc_codes` array (or ``None``).
    Yields ``(run_ids, row_ids)`` int64 arrays: each round's
    globally-sorted slice of the merge, where ``row_ids`` are absolute row
    positions within their run.  With ``emit_keys`` each item gains a third
    element, the round's merged key rows as an ``(m, words)`` uint64 word
    matrix (callers doing exact-string tie repair need the merged keys to
    find cross-run tie groups without re-reading the runs).

    With ``use_ovc`` (the default) each round applies the offset-value
    prefix skip before its lexsort: words constant and equal across every
    emitted prefix (first-vs-last induction, :func:`_common_prefix_words`)
    are dropped from the sort keys, and a round whose keys are all equal
    orders by run id alone -- ``np.arange``, zero comparisons.  Stored
    codes additionally feed ``stats.ovc_ties`` with the rows they prove to
    be duplicates of their run predecessor.

    Instead of a per-row tournament, every round works on the buffered
    *frontier* of each run:

    1. refill any drained frontier with its run's next block;
    2. the global **cutoff** is the smallest frontier-tail key over runs
       that still have unread blocks -- every unread row of any run is >=
       its own frontier tail >= the cutoff, so a buffered row < cutoff is
       always safe to emit, and a row == cutoff is safe in runs at or
       before the cutoff's owner (later runs must wait for the owner's
       unread equal keys, or stability would break);
    3. the counts of emittable rows per frontier are found by binary
       search (:func:`_count_below`) and the selected prefixes of all
       frontiers are ordered with one stable ``np.lexsort`` over the
       uint64 word columns (ties resolve to the earlier run, matching the
       scalar heap).

    Progress is guaranteed: the run holding the cutoff drains its whole
    frontier each round.  At most one block per run is buffered, so the
    working set never exceeds ``k * block_rows`` key rows (reported via
    ``stats.peak_frontier_rows``); per-round Python cost is O(k), with no
    per-row interpretation between refills.
    """
    iterators = [iter(source) for source in sources]
    k = len(iterators)
    # Each frontier is (word columns, ovc codes or None).
    frontiers: list[tuple[tuple[np.ndarray, ...], np.ndarray | None] | None]
    frontiers = [None] * k
    starts = [0] * k  # absolute row index of each frontier's first row
    exhausted = [False] * k

    while True:
        for index in range(k):
            if frontiers[index] is not None or exhausted[index]:
                continue
            while True:  # skip empty blocks a source may yield
                try:
                    item = next(iterators[index])
                except StopIteration:
                    exhausted[index] = True
                    break
                if isinstance(item, tuple):
                    block, codes = item
                else:
                    block, codes = item, None
                if len(block):
                    frontiers[index] = (tuple(_chunk_columns(block)), codes)
                    if stats is not None:
                        stats.refills += 1
                    break
        live = [index for index in range(k) if frontiers[index] is not None]
        if not live:
            return
        if stats is not None:
            stats.rounds += 1
            buffered = sum(len(frontiers[i][0][0]) for i in live)
            if buffered > stats.peak_frontier_rows:
                stats.peak_frontier_rows = buffered

        # Cutoff: min frontier-tail key over runs with unread blocks.
        # Fully-buffered runs impose no bound (nothing unseen remains).
        # The cutoff *owner* is the smallest such run index: its unread
        # blocks may still hold keys equal to the cutoff, so for
        # stability only runs at or before it may emit rows == cutoff;
        # later runs emit strictly-below rows this round.
        cutoff: tuple[int, ...] | None = None
        cutoff_run = -1
        for index in live:
            if exhausted[index]:
                continue
            tail = tuple(int(column[-1]) for column in frontiers[index][0])
            if cutoff is None or tail < cutoff:
                cutoff = tail
                cutoff_run = index

        emit_columns: list[tuple[np.ndarray, ...]] = []
        emit_runs: list[np.ndarray] = []
        emit_rows: list[np.ndarray] = []
        dup_rows = 0  # rows stored codes prove equal to their predecessor
        for index in live:
            columns, codes = frontiers[index]
            length = len(columns[0])
            if cutoff is None:
                take = length
            else:
                below, at_or_below = _count_below(columns, cutoff)
                take = at_or_below if index <= cutoff_run else below
            if take == 0:
                continue
            emit_columns.append(tuple(column[:take] for column in columns))
            if codes is not None:
                dup_rows += int(np.count_nonzero(codes[:take] >= len(columns)))
            emit_runs.append(np.full(take, index, dtype=np.int64))
            emit_rows.append(
                np.arange(starts[index], starts[index] + take, dtype=np.int64)
            )
            starts[index] += take
            frontiers[index] = (
                None
                if take == length
                else (
                    tuple(column[take:] for column in columns),
                    None if codes is None else codes[take:],
                )
            )

        if not emit_runs:
            # The run holding the cutoff always emits at least its tail
            # row, so an empty round means a source yielded unsorted data.
            raise SortError("k-way merge made no progress; runs not sorted?")
        words = len(emit_columns[0])
        if len(emit_runs) == 1:
            run_ids, row_ids = emit_runs[0], emit_rows[0]
            order = None
        else:
            skip = (
                _common_prefix_words(emit_columns)
                if use_ovc
                else 0
            )
            total = sum(len(rows) for rows in emit_rows)
            if skip == words:
                # Every emitted key is the same value: concatenation in
                # run order already is the stable merge.
                order = np.arange(total, dtype=np.int64)
                if stats is not None:
                    stats.ovc_ties += total
            else:
                # One stable lexsort over the selected prefixes IS the
                # k-way merge: each prefix is sorted, and concatenation in
                # run order makes ties resolve to the earlier run.  Words
                # the OVC skip decided are left out of the sort keys.
                merged = tuple(
                    np.concatenate([columns[word] for columns in emit_columns])
                    for word in reversed(range(skip, words))
                )
                order = np.lexsort(merged)
                if stats is not None:
                    stats.ovc_compares += total
            run_ids = np.concatenate(emit_runs)[order]
            row_ids = np.concatenate(emit_rows)[order]
        if stats is not None:
            stats.rows_emitted += len(run_ids)
            stats.ovc_ties += dup_rows
        if emit_keys:
            merged_words = np.stack(
                [
                    np.concatenate([columns[word] for columns in emit_columns])
                    for word in range(words)
                ],
                axis=1,
            )
            if order is not None:
                merged_words = merged_words[order]
            yield run_ids, row_ids, merged_words
        else:
            yield run_ids, row_ids
