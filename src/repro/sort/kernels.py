"""Vectorized kernels over normalized-key byte matrices.

The whole point of normalized keys (paper, Section V) is that one memcmp
decides a comparison.  These kernels push that one step further: an entire
``(n, width)`` uint8 key matrix is reinterpreted so that **numpy scalar
order is memcmp order**, and then merging and sorting become single numpy
calls with zero Python-level per-row work.

The reinterpretation (:func:`void_view`) views each key row as one
structured (void) scalar whose fields are big-endian unsigned integers
covering the row -- field-by-field comparison of big-endian words is
exactly byte-wise memcmp.  On top of it:

* :func:`argsort_rows` -- stable whole-matrix argsort (one ``np.argsort``),
* :func:`merge_indices` -- merge two sorted matrices via two
  ``np.searchsorted`` calls (O(n log m) comparisons, all in C), returning
  the gather permutation over the concatenated inputs.

Correctness requires that memcmp order over the key bytes is the intended
order, i.e. the keys' ``prefix_exact`` flag holds; callers keep the scalar
segment-wise comparator for truncated VARCHAR prefixes.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import SortError

__all__ = ["void_view", "argsort_rows", "merge_indices", "merge_matrices"]


@functools.lru_cache(maxsize=None)
def _row_dtype(width: int) -> np.dtype:
    """Structured dtype of ``width`` bytes whose order is memcmp order.

    The row is covered greedily with big-endian unsigned fields (8, 4, 2,
    then 1 bytes wide); lexicographic comparison of big-endian words equals
    byte-wise comparison, and numpy compares structured scalars field by
    field in declaration order.
    """
    fields = []
    remaining = width
    while remaining:
        for chunk in (8, 4, 2, 1):
            if chunk <= remaining:
                fields.append((f"b{len(fields)}", f">u{chunk}"))
                remaining -= chunk
                break
    return np.dtype(fields)


def _check_matrix(matrix: np.ndarray) -> None:
    if not isinstance(matrix, np.ndarray) or matrix.dtype != np.uint8:
        raise SortError("kernels expect an (n, width) uint8 key matrix")
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise SortError(
            f"kernels expect an (n, width) uint8 key matrix with width >= 1, "
            f"got shape {matrix.shape}"
        )


def void_view(matrix: np.ndarray) -> np.ndarray:
    """View an ``(n, width)`` uint8 matrix as ``n`` whole-row scalars.

    The returned 1-D array holds one structured (void) scalar per key row;
    numpy ``np.argsort`` and ``np.searchsorted`` over it follow memcmp
    order of the rows.  No data is copied unless the matrix is not
    C-contiguous.

    This is the semantic core of the kernel layer.  The sorting kernels
    below use the equivalent :func:`_chunk_columns` representation
    (native-endian uint64 words) instead, because numpy compares
    structured scalars through a generic field-walking routine while
    plain uint64 columns hit the type-specialized (vectorized) sort and
    search loops.
    """
    _check_matrix(matrix)
    contiguous = np.ascontiguousarray(matrix)
    return contiguous.view(_row_dtype(matrix.shape[1])).reshape(len(matrix))


def _chunk_columns(matrix: np.ndarray) -> list[np.ndarray]:
    """Decompose key rows into native uint64 words preserving memcmp order.

    Each 8-byte slice of the row (the last one zero-padded) is read as a
    big-endian word and converted to native endianness: comparing the word
    list lexicographically equals comparing the rows with memcmp, and each
    word column sorts/searches at full native-integer speed.
    """
    _check_matrix(matrix)
    n, width = matrix.shape
    contiguous = np.ascontiguousarray(matrix)
    columns = []
    for start in range(0, width, 8):
        stop = min(start + 8, width)
        if stop - start == 8:
            chunk = contiguous[:, start:stop]
        else:
            chunk = np.zeros((n, 8), dtype=np.uint8)
            chunk[:, : stop - start] = contiguous[:, start:stop]
        big_endian = np.ascontiguousarray(chunk).view(">u8").reshape(n)
        columns.append(big_endian.astype(np.uint64, copy=False))
    return columns


def argsort_rows(matrix: np.ndarray) -> np.ndarray:
    """Stable argsort of whole key rows (memcmp order), fully vectorized.

    One ``np.argsort`` for keys of at most 8 bytes, ``np.lexsort`` over
    the uint64 word columns otherwise -- both stable, both running
    type-specialized native sorts.
    """
    columns = _chunk_columns(matrix)
    if len(columns) == 1:
        order = np.argsort(columns[0], kind="stable")
    else:
        order = np.lexsort(tuple(reversed(columns)))
    return order.astype(np.int64, copy=False)


def merge_indices(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gather permutation merging two sorted key matrices.

    ``a`` and ``b`` must be row-sorted matrices of equal width.  Returns an
    int64 permutation ``perm`` of ``len(a) + len(b)`` such that
    ``np.concatenate([a, b])[perm]`` is the sorted merge.  Ties take rows
    of ``a`` first, so the merge is stable when ``a`` is the earlier run.

    Keys of at most 8 bytes merge with two ``np.searchsorted`` binary
    searches (O(n log m) native word comparisons); wider keys merge with a
    stable ``np.lexsort`` over the uint64 word columns of the
    concatenation.  Either way the Python-level cost is O(1) regardless of
    the row count.
    """
    if a.shape[1] != b.shape[1]:
        raise SortError(
            f"cannot merge key matrices of widths {a.shape[1]} and "
            f"{b.shape[1]}"
        )
    cols_a = _chunk_columns(a)
    cols_b = _chunk_columns(b)
    n, m = len(a), len(b)
    if len(cols_a) == 1:
        va, vb = cols_a[0], cols_b[0]
        # Output slot of a[i]: i rows of a precede it, plus every b row
        # strictly smaller ('left' => equal b rows land after a rows).
        out_a = np.arange(n, dtype=np.int64) + np.searchsorted(
            vb, va, side="left"
        )
        # Output slot of b[j]: j rows of b precede it, plus every a row
        # smaller or equal ('right' => equal a rows land before b rows).
        out_b = np.arange(m, dtype=np.int64) + np.searchsorted(
            va, vb, side="right"
        )
        perm = np.empty(n + m, dtype=np.int64)
        perm[out_a] = np.arange(n, dtype=np.int64)
        perm[out_b] = np.arange(n, n + m, dtype=np.int64)
        return perm
    combined = tuple(
        np.concatenate([col_a, col_b])
        for col_a, col_b in zip(reversed(cols_a), reversed(cols_b))
    )
    # lexsort is stable and both halves are sorted, so this IS the merge,
    # with a's rows winning ties.
    return np.lexsort(combined).astype(np.int64, copy=False)


def merge_matrices(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge two sorted key matrices; returns ``(merged, perm)``.

    Convenience wrapper over :func:`merge_indices` that also gathers the
    merged key matrix.
    """
    perm = merge_indices(a, b)
    return np.concatenate([a, b])[perm], perm
