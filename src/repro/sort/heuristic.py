"""Cost-based sorting-algorithm choice: the paper's first future-work item.

Section IX: "DuckDB uses pdqsort in its thread-local sorts when strings
are present; otherwise, it uses radix sort.  Variables other than the data
type affect the efficiency of these algorithms, for example, key size,
number of tuples, the estimated number of unique values, and other
statistics.  A heuristic that takes these variables into account could
improve the algorithm choice."

This module implements that heuristic.  It estimates, from cheap key
statistics, the work each algorithm would do:

* **radix**: the dominant cost is one counting pass per *effective* key
  byte (a byte column that is constant is skipped by the skip-copy
  optimization; low-entropy leading bytes of MSD recursion descend almost
  free).  Cost ~ n * effective_bytes.
* **pdqsort + memcmp**: ~1.1 n log2(n) comparisons, each reading about
  ``decided_words`` 8-byte words, discounted when duplicate keys let
  pdqsort's partition_left finish equal runs early.

``choose_algorithm`` returns the cheaper one; ``KeyStatistics.measure``
computes the inputs from a (sampled) normalized-key matrix in vectorized
numpy.  The ablation benchmark ``bench_ablation_heuristic`` compares the
heuristic against both fixed choices on workloads where they disagree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SortError
from repro.sort import kernels

__all__ = [
    "KeyStatistics",
    "CostEstimate",
    "choose_algorithm",
    "choose_vector_path",
    "vector_sort_rows",
    "RADIX_MIN_ROWS",
    "RADIX_SKEW_LIMIT",
]

SAMPLE_LIMIT = 1 << 14
"""Statistics are measured on at most this many evenly spaced rows."""

RADIX_MIN_ROWS = 1 << 12
"""Below this row count the MSD bookkeeping cannot beat one lexsort."""

RADIX_SKEW_LIMIT = 0.95
"""If one leading-byte bucket holds at least this fraction of sampled rows,
the first radix pass moves nearly everything for nearly no partitioning --
prefer the comparison sort."""


@dataclass(frozen=True)
class KeyStatistics:
    """Cheap statistics of a normalized-key matrix.

    Attributes:
        num_rows: rows in the (full) input.
        key_bytes: width of the key prefix in bytes (row id excluded).
        effective_bytes: byte positions that actually vary (non-constant
            columns of the matrix) -- the passes radix cannot skip.
        duplicate_fraction: fraction of sampled rows whose whole key is a
            duplicate of another sampled row.
        distinct_ratio: distinct sampled keys / sampled rows.
    """

    num_rows: int
    key_bytes: int
    effective_bytes: int
    duplicate_fraction: float
    distinct_ratio: float

    @classmethod
    def measure(cls, matrix: np.ndarray, key_bytes: int | None = None) -> "KeyStatistics":
        """Measure statistics from an (n, w) uint8 key matrix.

        ``key_bytes`` restricts the analysis to the leading key prefix
        (pass ``layout.key_width`` to exclude a row-id suffix).
        """
        if matrix.dtype != np.uint8 or matrix.ndim != 2:
            raise SortError("expected an (n, width) uint8 key matrix")
        n, width = matrix.shape
        if key_bytes is None:
            key_bytes = width
        if not 0 < key_bytes <= width:
            raise SortError(f"key_bytes {key_bytes} out of range 1..{width}")
        prefix = matrix[:, :key_bytes]
        if n == 0:
            return cls(0, key_bytes, 0, 0.0, 1.0)
        if n > SAMPLE_LIMIT:
            step = n // SAMPLE_LIMIT
            prefix = prefix[::step][:SAMPLE_LIMIT]
        sampled = len(prefix)
        varying = int(
            np.count_nonzero(np.any(prefix != prefix[0], axis=0))
        )
        # Distinct sampled keys via a lexicographic sort of packed rows.
        padded_width = (key_bytes + 7) // 8 * 8
        padded = np.zeros((sampled, padded_width), dtype=np.uint8)
        padded[:, :key_bytes] = prefix
        packed = padded.view(">u8")
        order = np.lexsort(
            tuple(packed[:, c] for c in range(packed.shape[1] - 1, -1, -1))
        )
        rows = packed[order]
        if sampled > 1:
            changed = np.any(rows[1:] != rows[:-1], axis=1)
            distinct = int(changed.sum()) + 1
        else:
            distinct = sampled
        duplicate_fraction = 1.0 - distinct / sampled if sampled else 0.0
        return cls(
            num_rows=n,
            key_bytes=key_bytes,
            effective_bytes=varying,
            duplicate_fraction=duplicate_fraction,
            distinct_ratio=distinct / sampled if sampled else 1.0,
        )


@dataclass(frozen=True)
class CostEstimate:
    """Modelled per-algorithm work and the resulting decision."""

    radix_cost: float
    pdqsort_cost: float

    @property
    def choice(self) -> str:
        return "radix" if self.radix_cost <= self.pdqsort_cost else "pdqsort"


# Calibrated per-unit weights (simulated-cycle scale; ratios matter).
_RADIX_PASS_COST = 14.0  # byte read + count update + row move per pass
_PDQ_COMPARE_BASE = 12.0  # memcmp word(s) + branch per comparison
_PDQ_WORD_COST = 2.0  # extra cost per additional 8-byte word examined


def estimate_costs(stats: KeyStatistics) -> CostEstimate:
    """Model the run-sort cost of both algorithms from key statistics."""
    n = max(stats.num_rows, 1)
    # Radix: one histogram+scatter pass per varying byte (skip-copy makes
    # constant bytes free); duplicates shorten MSD recursion, modelled as
    # a discount proportional to the duplicate mass.
    passes = max(1, stats.effective_bytes)
    radix = n * passes * _RADIX_PASS_COST * (1.0 - 0.3 * stats.duplicate_fraction)
    # pdqsort: ~1.1 n log2 n comparisons; partition_left removes most of
    # the work for duplicate-heavy inputs (sorting d distinct values costs
    # about n log2(d)).
    distinct = max(2.0, stats.distinct_ratio * n)
    comparisons = 1.1 * n * math.log2(min(n, distinct) + 1)
    words = max(1.0, stats.key_bytes / 8.0)
    pdq = comparisons * (_PDQ_COMPARE_BASE + (words - 1.0) * _PDQ_WORD_COST)
    return CostEstimate(radix_cost=radix, pdqsort_cost=pdq)


def choose_algorithm(
    matrix: np.ndarray, key_bytes: int | None = None
) -> str:
    """Pick ``"radix"`` or ``"pdqsort"`` for a normalized-key matrix."""
    stats = KeyStatistics.measure(matrix, key_bytes)
    return estimate_costs(stats).choice


# ---------------------------------------------------------------------- #
# Vectorized in-kernel dispatch: MSD radix vs. argsort/lexsort
# ---------------------------------------------------------------------- #


def choose_vector_path(matrix: np.ndarray, key_bytes: int) -> tuple[str, str]:
    """Pick the vectorized whole-row sort kernel for a key matrix.

    Returns ``(path, reason)`` with ``path`` one of ``"argsort-1word"``,
    ``"lexsort"`` or ``"radix"``.  The decision table (kept in sync with
    ``docs/sort-pipeline.md``):

    * key prefix fits one 8-byte word -> a single stable ``np.argsort``
      beats everything (``"single-word"``) -- this is what key compression
      usually buys;
    * fewer than :data:`RADIX_MIN_ROWS` rows -> MSD bookkeeping cannot
      amortize, use lexsort (``"few-rows"``);
    * the sampled leading-byte histogram puts >= :data:`RADIX_SKEW_LIMIT`
      of rows in one bucket -> the first radix pass degenerates, use
      lexsort (``"skewed-leading-byte"``);
    * otherwise MSD radix over the key bytes (``"wide-keys"``).

    ``matrix`` may include a row-id suffix; only ``key_bytes`` leading
    bytes (plus the suffix, sorted identically by every path since all are
    stable over whole rows) drive the decision.
    """
    n = len(matrix)
    if key_bytes <= 8:
        return "argsort-1word", "single-word"
    if n < RADIX_MIN_ROWS:
        return "lexsort", "few-rows"
    sample = matrix[:: max(1, n // SAMPLE_LIMIT), 0][:SAMPLE_LIMIT]
    histogram = np.bincount(sample, minlength=256)
    if int(histogram.max()) >= RADIX_SKEW_LIMIT * len(sample):
        return "lexsort", "skewed-leading-byte"
    return "radix", "wide-keys"


def vector_sort_rows(
    matrix: np.ndarray,
    key_bytes: int,
    sort_stats=None,
    radix_stats=None,
) -> np.ndarray:
    """Stable argsort of whole key rows via the cheapest vector kernel.

    Dispatches per :func:`choose_vector_path`; every path is a stable sort
    over the full rows (key prefix + any row-id suffix), so the returned
    permutation is byte-identical regardless of which kernel ran.
    ``sort_stats``, if given, must expose
    ``record_vector_sort(path, reason)``
    (:class:`repro.sort.operator.SortStats` does); ``radix_stats`` feeds
    the MSD kernel's counters.
    """
    path, reason = choose_vector_path(matrix, key_bytes)
    if sort_stats is not None:
        sort_stats.record_vector_sort(path, reason)
    if path == "radix":
        return kernels.radix_argsort_rows(matrix, radix_stats)
    return kernels.argsort_rows(matrix)
