"""The relational sort operator: DuckDB's pipeline from Figure 11.

The operator is a pipeline breaker: it sinks all input as vector chunks,
then produces the fully sorted table.  The stages mirror the paper:

1. **Materialize** -- incoming vectors are buffered; when a buffer reaches
   the run threshold it is converted to row formats: the ORDER BY columns
   become *normalized keys* (one order-preserving byte string per row, with
   a row-id suffix), all output columns become fixed-width NSM *payload
   rows* with a string heap.
2. **Run generation** -- the normalized keys of each buffer are sorted with
   radix sort, or pdqsort with memcmp if the keys contain strings (DuckDB's
   rule); the payload is immediately reordered, yielding fully sorted runs.
3. **Merge** -- sorted runs are merged with a cascaded 2-way merge comparing
   whole keys with memcmp (full strings break prefix ties), until one run
   remains.
4. **Output** -- the final row block is converted back to vectors/columns.

``sort_table`` wraps the operator for one-shot use.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import SortCancelledError, SortError
from repro.keys.compression import (
    KeyStatsAccumulator,
    plain_key_width,
    rebase_matrix,
)
from repro.keys.normalizer import MAX_STRING_PREFIX, NormalizedKeys, normalize_keys
from repro.rows.block import RowBlock
from repro.sort.heuristic import vector_sort_rows
from repro.sort.kernels import merge_indices
from repro.sort.stringsort import refine_key_order, refinement_must_defer
from repro.sort.parallel_exec import (
    DEFAULT_MORSEL_ROWS as DEFAULT_PARALLEL_MORSEL_ROWS,
    ParallelSortExecutor,
)
from repro.sort.pdqsort import pdqsort
from repro.sort.radix import (
    LSD_WIDTH_THRESHOLD,
    RadixStats,
    radix_argsort,
)
from repro.table.chunk import VECTOR_SIZE, DataChunk, chunk_table
from repro.table.table import Table
from repro.types.datatypes import TypeId
from repro.types.schema import Schema
from repro.types.sortspec import SortSpec, compare_values

__all__ = [
    "SortConfig",
    "SortStats",
    "SortedRun",
    "SortOperator",
    "sort_table",
    "effective_run_threshold",
    "raise_if_cancelled",
]


def raise_if_cancelled(config: "SortConfig") -> None:
    """Raise :class:`SortCancelledError` when the config's event is set.

    The shared cooperative-cancellation checkpoint: every sort consumer
    (in-memory operator, external operator, Top-N, prefetch scheduler,
    parallel dispatch) calls this at its natural yield points.
    """
    event = config.cancel_event
    if event is not None and event.is_set():
        raise SortCancelledError("sort was cancelled")


def effective_run_threshold(config: "SortConfig") -> int:
    """The live run threshold: the configured one, shrunk by the grant.

    Re-evaluated at every sink so a governor revoking grant bytes
    mid-query takes effect at the next checkpoint -- the run is cut
    (and spilled, on the external path) earlier than the static
    configuration would have.
    """
    threshold = config.run_threshold
    grant = config.memory_grant
    if grant is not None:
        threshold = max(
            1, min(threshold, int(grant.effective_run_threshold(threshold)))
        )
    return threshold


def _segmented_compare(raw_a, raw_b, layout, spec, fetch_a, fetch_b) -> int:
    """Three-way compare of two normalized keys, segment by segment.

    Fixed-width segments are decided by their bytes.  A VARCHAR segment
    whose (possibly truncated) prefix bytes tie falls back to comparing
    the full string values -- fetched lazily via ``fetch_a``/``fetch_b``
    (called with the key-column ordinal) -- before any later key column is
    consulted.  This is the order DuckDB's "compare the rest of the string
    only if the prefixes are equal" implies.
    """
    for col, segment in enumerate(layout.segments):
        start = segment.offset
        stop = start + segment.total_width
        seg_a = raw_a[start:stop]
        seg_b = raw_b[start:stop]
        if seg_a != seg_b:
            return -1 if seg_a < seg_b else 1
        if segment.dtype.type_id is TypeId.VARCHAR:
            cmp = compare_values(fetch_a(col), fetch_b(col), segment.key)
            if cmp != 0:
                return cmp
    return 0


def _segmented_argsort(table: Table, keys, spec: SortSpec) -> np.ndarray:
    """Scalar pdqsort with segment-wise full-string tie-breaks.

    The per-row comparator path for inexact string prefixes.  Production
    sorts use the vectorized prefix sort plus
    :func:`repro.sort.stringsort.refine_key_order` instead; this remains
    as the ``use_vector_kernels=False`` reference oracle (shared by the
    in-memory and external operators).
    """
    from repro.sort.pdqsort import pdqsort as _pdqsort

    n = len(keys)
    matrix = keys.matrix
    raw = [matrix[i].tobytes() for i in range(n)]
    key_table = table.select(spec.column_names)
    layout = keys.layout

    def less(i: int, j: int) -> bool:
        cmp = _segmented_compare(
            raw[i],
            raw[j],
            layout,
            spec,
            lambda col: key_table.column_at(col).value(i),
            lambda col: key_table.column_at(col).value(j),
        )
        if cmp != 0:
            return cmp < 0
        return raw[i][layout.key_width:] < raw[j][layout.key_width:]

    order = list(range(n))
    _pdqsort(order, less)
    return np.asarray(order, dtype=np.int64)


DEFAULT_RUN_THRESHOLD = 1 << 17
"""Rows buffered per thread before a sorted run is generated."""


@dataclass(frozen=True)
class SortConfig:
    """Tuning knobs of the sort operator.

    Attributes:
        run_threshold: rows accumulated before a sorted run is cut.
        string_prefix: forced VARCHAR prefix length in normalized keys
            (default: chosen from the data, capped at 12 like DuckDB).
        lsd_threshold: key byte width at or below which LSD radix is used.
        force_algorithm: override DuckDB's algorithm choice; one of None
            (DuckDB's rule: pdqsort iff strings present), "radix",
            "pdqsort", or "heuristic" (the cost-based chooser of
            :mod:`repro.sort.heuristic`, the paper's future-work item).
        vector_size: chunk granularity used by :func:`sort_table`.
        use_vector_kernels: use the numpy kernels of
            :mod:`repro.sort.kernels` (whole-row argsort, searchsorted
            merge, vectorized radix bucket finishing) wherever memcmp
            order is exact; off forces the scalar row-at-a-time paths.
        external: make the engine's ORDER BY run through the
            spilling :class:`repro.sort.external.ExternalSortOperator`
            instead of the in-memory operator.
        spill_directories: ordered failover targets for spill files.
            The external sort writes each run to its primary directory
            first; on persistent write failure (e.g. ``ENOSPC``) it
            fails over to these, in order, before degrading to an
            in-memory run.
        spill_retries: transient-failure write retries per directory
            (bounded exponential backoff between attempts).
        spill_retry_backoff_s: initial backoff; doubles per retry,
            capped at 1 second.  Zero disables sleeping (tests).
        verify_spill_checksums: verify the per-page CRC32 checksums of
            every spill block read (and each run's header at merge
            start).  On by default; off trades integrity for a little
            read throughput.
        allow_memory_fallback: when no spill target is writable, keep
            runs in memory (reduced-memory degradation) instead of
            raising :class:`repro.errors.SpillCapacityError`.
        num_workers: worker processes for the multi-core parallel path
            (:mod:`repro.sort.parallel_exec`): morsel-driven run
            generation plus Merge-Path-partitioned merges over shared
            memory.  ``1`` (the default) keeps everything serial; any
            value is byte-identical to the serial kernels, and the
            parallel path silently falls back to serial when vector
            kernels are off or the platform lacks ``fork``/POSIX shared
            memory.  Truncated string prefixes run in parallel: the
            workers sort key bytes and the parent repairs prefix ties
            afterwards (:mod:`repro.sort.stringsort`), same as serial.
        parallel_morsel_rows: rows per run-generation morsel of the
            parallel path.
        compress_keys: shrink normalized keys from runtime statistics
            (paper, Section V): each fixed-width key column is biased to
            unsigned and stored at the minimal byte width its observed
            min/max needs, with the NULL indicator byte folded into the
            value when a spare code point exists
            (:mod:`repro.keys.compression`).  Off preserves the
            full-width layout bit-for-bit.  Ignored (treated as off) when
            ``string_prefix`` forces a fixed VARCHAR prefix, since the
            compressed layout chooses prefixes from the data.
        exact_varchar: repair truncated VARCHAR prefixes on the vector
            path (:mod:`repro.sort.stringsort`): byte-equal tie groups are
            re-encoded at progressively wider string offsets until the
            order is exact, in run generation and after every merge.  On
            by default -- string sorts are exact without the per-row
            scalar comparator.  Turning it off is the documented escape
            hatch for approximate prefix-only ordering and *requires* a
            forced ``string_prefix`` (so the truncation is an explicit
            choice, never an accident).
        use_ovc: apply offset-value coding in the merge kernels
            (:func:`repro.sort.kernels.merge_indices` /
            ``kway_merge_blocks``): uint64 words shared by every frontier
            row are skipped, so duplicate-heavy keys cost one word compare
            or none.  Off forces full-width comparisons (benchmark /
            equivalence-test knob; results are identical either way).
        prefetch_blocks: read-ahead depth, in blocks per run per section,
            of the external merge's prefetch layer
            (:mod:`repro.sort.prefetch`).  A small thread pool fetches and
            CRC-verifies each run's *next* key block (and the payload rows
            backing the frontier) while the merge kernel consumes the
            current one; file reads and ``zlib.crc32`` release the GIL, so
            the overlap is real in pure Python.  The total buffered
            read-ahead is additionally capped at ``run_threshold`` rows,
            so prefetch memory is charged against the same budget that
            sizes runs.  ``0`` disables prefetching (every spill read is
            synchronous on the merge's critical path).
        replacement_selection: run-generation policy of the external
            sort.  ``None`` (default) probes the presortedness of the
            buffered input (sampled first-key-word diffs,
            :func:`repro.sort.rungen.presortedness`) and switches to
            replacement selection when the input arrives near-sorted --
            runs then grow past ``run_threshold`` (up to
            :data:`repro.sort.rungen.RUN_CAP_FACTOR` times it), so fewer
            runs reach the merge.  ``True`` forces replacement selection,
            ``False`` always cuts runs at the threshold (the argsort
            path).  Output is byte-identical either way.
        cancel_event: cooperative cancellation flag (any object with an
            ``is_set()`` method, typically a ``threading.Event``).  Both
            sort operators poll it at their checkpoints -- sink, run
            generation, every merge round, the external k-way merge's
            round hook, prefetch scheduling, and parallel phase
            dispatch -- and raise
            :class:`repro.errors.SortCancelledError` when it is set, so
            a query service can abort a sort from another thread
            without reaching into operator internals.  Cleanup follows
            the operator's normal failure paths (temp files removed,
            prefetch pools joined, shared memory released).
        memory_grant: per-operator memory grant from a global governor
            (any object with ``effective_run_threshold(base_rows)`` and
            ``record_spill(nbytes)``, see
            :class:`repro.service.governor.MemoryGrant`).  The operator
            treats ``min(run_threshold, grant.effective_run_threshold(
            run_threshold))`` as its live run threshold, re-read at
            every sink -- so a governor shrinking the grant under
            memory pressure forces runs (and the prefetch budget
            derived from the threshold) to shrink mid-query, spilling
            earlier via the existing degradation ladder.
            ``SortStats.governor_forced_spills`` counts runs cut below
            the configured threshold because of the grant.
        merge_fan_in: maximum runs merged per k-way pass of the external
            sort.  ``0`` (default) merges all runs in one pass.  With a
            limit, excess runs are first combined in intermediate passes
            that re-spill merged runs -- each pass re-reads and re-writes
            its input, which is exactly the I/O replacement selection's
            longer runs avoid (``SortStats.merge_passes`` records the
            pass count).  Ignored on the scalar path and when truncated
            VARCHAR prefixes require exact-string refinement (those
            merges stay single-pass).
    """

    run_threshold: int = DEFAULT_RUN_THRESHOLD
    string_prefix: int | None = None
    lsd_threshold: int = LSD_WIDTH_THRESHOLD
    force_algorithm: str | None = None
    vector_size: int = VECTOR_SIZE
    use_vector_kernels: bool = True
    external: bool = False
    spill_directories: tuple[str, ...] = ()
    spill_retries: int = 2
    spill_retry_backoff_s: float = 0.01
    verify_spill_checksums: bool = True
    allow_memory_fallback: bool = True
    num_workers: int = 1
    parallel_morsel_rows: int = DEFAULT_PARALLEL_MORSEL_ROWS
    compress_keys: bool = True
    exact_varchar: bool = True
    use_ovc: bool = True
    prefetch_blocks: int = 1
    replacement_selection: bool | None = None
    merge_fan_in: int = 0
    cancel_event: object | None = field(default=None, compare=False)
    memory_grant: object | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.run_threshold <= 0:
            raise SortError("run_threshold must be positive")
        if not self.exact_varchar and self.string_prefix is None:
            raise SortError(
                "exact_varchar=False sorts by prefix bytes only; force a "
                "string_prefix to make the truncation explicit"
            )
        if self.num_workers < 1:
            raise SortError("num_workers must be at least 1")
        if self.parallel_morsel_rows < 1:
            raise SortError("parallel_morsel_rows must be at least 1")
        if self.force_algorithm not in (None, "radix", "pdqsort", "heuristic"):
            raise SortError(
                f"force_algorithm must be None, 'radix', 'pdqsort' or "
                f"'heuristic', got {self.force_algorithm!r}"
            )
        if self.spill_retries < 0:
            raise SortError("spill_retries must be non-negative")
        if self.prefetch_blocks < 0:
            raise SortError("prefetch_blocks must be non-negative")
        if self.merge_fan_in < 0 or self.merge_fan_in == 1:
            raise SortError("merge_fan_in must be 0 (unlimited) or >= 2")
        if self.spill_retry_backoff_s < 0:
            raise SortError("spill_retry_backoff_s must be non-negative")
        if not isinstance(self.spill_directories, tuple):
            object.__setattr__(
                self, "spill_directories", tuple(self.spill_directories)
            )


@dataclass
class SortStats:
    """What the operator did: run counts, algorithm, merge work.

    ``kernel_kway_merges`` / ``scalar_kway_merges`` count external k-way
    merge phases by path (block-streaming kernel vs. per-row tournament
    heap); ``kway_rounds`` and ``kway_peak_frontier_rows`` describe the
    kernel's frontier loop.  ``phase_seconds`` accumulates wall-clock per
    pipeline phase: ``encode`` (key normalization), ``run_gen`` (sorting
    runs), ``merge`` (merging runs, I/O excluded), and ``spill_io``
    (reading/writing spill files).

    The fault counters describe the external sort's degradation ladder:
    ``spill_retries`` (write attempts retried after a transient error),
    ``spill_failovers`` (runs redirected to a secondary spill
    directory), ``memory_run_fallbacks`` (runs kept in memory because no
    spill target was writable), ``checksum_verifications`` /
    ``checksum_failures`` (CRC32 pages checked on spill reads), and
    ``cleanup_errors`` (temp files/directories that could not be
    removed -- recorded, warned about, never silently swallowed).

    The parallel counters describe the multi-core executor
    (:mod:`repro.sort.parallel_exec`) when ``SortConfig.num_workers > 1``
    actually ran work: ``parallel_workers`` (pool size),
    ``parallel_task_rows`` / ``parallel_task_seconds`` (per parallel
    phase, the rows and wall-clock of every dispatched task in
    submission order), ``parallel_worker_seconds`` (busy time per pool
    worker slot), and ``parallel_makespan_s`` (parent-observed
    wall-clock of all parallel phases) -- the measured schedule that
    :class:`repro.engine.parallel.PhaseModel` predictions are checked
    against.

    The key-compression counters: ``key_width_used`` / ``key_width_full``
    are the final layout's key bytes per row with and without compression
    (row-id suffix excluded); ``key_layout_rebases`` counts runs whose
    keys were re-encoded because later data widened the layout;
    ``key_carried_runs`` counts external runs spilled as keys only (the
    payload reconstructed from the keys at merge time).
    ``vector_sort_paths`` / ``vector_sort_reasons`` record which
    vectorized sort kernel ran per run and why
    (:func:`repro.sort.heuristic.vector_sort_rows`).

    The exact-string counters: ``ovc_compares`` / ``ovc_ties`` are rows
    the merge kernels ordered through post-skip word comparisons vs. rows
    settled with all key words equal (offset-value coding);
    ``full_key_compares`` counts rows whose full string values were
    consulted to break byte-equal prefix ties; ``reencode_rounds`` /
    ``reencoded_rows`` count the adaptive tie-break re-encoding's chunk
    rounds and the row-chunks they touched
    (:mod:`repro.sort.stringsort`).

    The prefetch counters describe the external merge's read-ahead layer
    (:mod:`repro.sort.prefetch`): ``prefetch_hits`` (blocks already
    buffered when the merge asked for them) vs ``prefetch_misses``
    (blocks the merge had to wait for, or fetch synchronously), with the
    consumer-side wait recorded under ``phase_seconds["io_wait"]`` and
    the background threads' read+verify time under
    ``phase_seconds["spill_io_overlap"]`` (overlapped, so it does not
    extend the critical path the way ``spill_io`` does);
    ``prefetch_peak_blocks`` is the most read-ahead blocks buffered at
    once (the budget observably holding).

    The run-generation shape: ``run_lengths`` holds the row count of
    every external run in generation order (the run-length histogram --
    replacement selection shows up as runs longer than the threshold);
    ``rungen_path`` names the dispatched generator (``"argsort"`` or
    ``"replacement_selection"``) and ``rungen_probe`` the measured
    presortedness in [0, 1] (-1 before any probe ran).
    ``merge_passes`` counts k-way merge passes over the data
    (1 unless ``SortConfig.merge_fan_in`` forces intermediate passes).
    ``governor_forced_spills`` counts runs cut below the configured
    ``run_threshold`` because a shrinking memory grant
    (``SortConfig.memory_grant``) lowered the live threshold -- the
    governor forcing an early spill.

    The order-propagation counters describe planner-level sortedness
    reuse (:mod:`repro.engine.plan`): ``sorts_elided`` counts sorts
    skipped entirely because the input's provided ordering already
    satisfied the spec, ``sorts_subsumed`` sorts satisfied by a strictly
    longer provided ordering (``ORDER BY a, b`` over input sorted
    ``a, b, c``), ``sorts_refined`` sorts downgraded to the tie-group
    refinement pass (:func:`repro.sort.refine.refine_sorted`) because a
    proper prefix of the spec was provided, and ``refine_fallbacks``
    refine attempts that fell back to a full sort (truncated-VARCHAR
    suffixes where :func:`repro.sort.stringsort.refinement_must_defer`
    says byte order is inexact, or a scalar-only config).
    """

    rows_sorted: int = 0
    runs_generated: int = 0
    algorithm: str = ""
    merge_rounds: int = 0
    merge_comparisons: int = 0
    kernel_merges: int = 0
    scalar_merges: int = 0
    kernel_kway_merges: int = 0
    scalar_kway_merges: int = 0
    kway_rounds: int = 0
    kway_peak_frontier_rows: int = 0
    prefix_exact: bool = True
    spill_retries: int = 0
    spill_failovers: int = 0
    memory_run_fallbacks: int = 0
    checksum_verifications: int = 0
    checksum_failures: int = 0
    cleanup_errors: list[str] = field(default_factory=list)
    radix: RadixStats = field(default_factory=RadixStats)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    parallel_workers: int = 0
    parallel_task_rows: dict[str, list[int]] = field(default_factory=dict)
    parallel_task_seconds: dict[str, list[float]] = field(
        default_factory=dict
    )
    parallel_worker_seconds: dict[int, float] = field(default_factory=dict)
    parallel_makespan_s: float = 0.0
    key_width_used: int = 0
    key_width_full: int = 0
    key_layout_rebases: int = 0
    key_carried_runs: int = 0
    vector_sort_paths: dict[str, int] = field(default_factory=dict)
    vector_sort_reasons: dict[str, int] = field(default_factory=dict)
    ovc_compares: int = 0
    ovc_ties: int = 0
    full_key_compares: int = 0
    reencode_rounds: int = 0
    reencoded_rows: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_peak_blocks: int = 0
    run_lengths: list[int] = field(default_factory=list)
    rungen_path: str = ""
    rungen_probe: float = -1.0
    merge_passes: int = 0
    governor_forced_spills: int = 0
    sorts_elided: int = 0
    sorts_subsumed: int = 0
    sorts_refined: int = 0
    refine_fallbacks: int = 0

    def record_vector_sort(self, path: str, reason: str) -> None:
        self.vector_sort_paths[path] = self.vector_sort_paths.get(path, 0) + 1
        self.vector_sort_reasons[reason] = (
            self.vector_sort_reasons.get(reason, 0) + 1
        )

    def add_phase_seconds(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = (
            self.phase_seconds.get(phase, 0.0) + seconds
        )

    @contextmanager
    def time_phase(self, phase: str):
        """Accumulate the wall-clock of a ``with`` block into a phase."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase_seconds(phase, time.perf_counter() - start)


@dataclass
class SortedRun:
    """One fully sorted run: sorted keys plus the payload in key order.

    ``raw`` optionally caches the key rows as Python ``bytes`` for the
    scalar merge fallback; carrying it across cascade rounds avoids
    re-materializing both runs on every round.
    """

    keys: np.ndarray  # (n, width) uint8, sorted
    payload: RowBlock  # rows already in key order
    key_width: int  # bytes of key before the row-id suffix
    raw: list[bytes] | None = None  # per-row key bytes (scalar merge cache)
    layout: object | None = None  # KeyLayout the keys were encoded under

    def __len__(self) -> int:
        return len(self.keys)

    def raw_keys(self) -> list[bytes]:
        """The key rows as ``bytes``, materializing and caching on demand."""
        if self.raw is None:
            self.raw = [self.keys[i].tobytes() for i in range(len(self.keys))]
        return self.raw


class SortOperator:
    """Materializing ORDER BY operator (paper Figure 11).

    Use as::

        op = SortOperator(schema, SortSpec.of("a DESC", "b"))
        for chunk in chunks:
            op.sink(chunk)
        result = op.finalize()
    """

    def __init__(
        self,
        schema: Schema,
        spec: SortSpec,
        config: SortConfig | None = None,
    ) -> None:
        self.schema = schema
        self.spec = spec
        self.config = config or SortConfig()
        for name in spec.column_names:
            schema.column(name)  # raises SchemaError on unknown columns
        self._buffer: list[DataChunk] = []
        self._buffered_rows = 0
        self._runs: list[SortedRun] = []
        self._next_row_id = 0
        self._finalized = False
        self._key_layout = None
        self._parallel: ParallelSortExecutor | None = None
        self.stats = SortStats()
        self._has_string_key = any(
            schema.column(name).dtype.type_id is TypeId.VARCHAR
            for name in spec.column_names
        )
        # A forced string prefix pins the layout, which the statistics
        # pass would override -- compression defers to it.
        self._compress = (
            self.config.compress_keys and self.config.string_prefix is None
        )
        self._key_acc: KeyStatsAccumulator | None = None

    # ------------------------------------------------------------------ #
    # Parallel execution
    # ------------------------------------------------------------------ #

    def _parallel_executor(self) -> ParallelSortExecutor | None:
        """The lazily-created multi-core executor, or ``None`` if serial.

        The parallel path requires the vector kernels (the executor runs
        them in its workers).  It sorts and merges key *bytes*; truncated
        string prefixes are handled by running the same post-pass tie
        repair (:mod:`repro.sort.stringsort`) on its output that the
        serial vector path uses, so inexact prefixes no longer force
        serial execution.
        """
        if self.config.num_workers <= 1 or not self.config.use_vector_kernels:
            return None
        if self._parallel is None:
            self._parallel = ParallelSortExecutor(
                self.config.num_workers,
                self.config.parallel_morsel_rows,
                cancel_check=lambda: raise_if_cancelled(self.config),
            )
        return self._parallel

    def _close_parallel(self) -> None:
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    # ------------------------------------------------------------------ #
    # Sink
    # ------------------------------------------------------------------ #

    def sink(self, chunk: DataChunk) -> None:
        """Accept one vector batch of input."""
        if self._finalized:
            raise SortError("cannot sink into a finalized sort")
        if chunk.schema.names != self.schema.names:
            raise SortError(
                f"chunk schema {chunk.schema.names} does not match "
                f"operator schema {self.schema.names}"
            )
        raise_if_cancelled(self.config)
        if len(chunk) == 0:
            return
        self._buffer.append(chunk)
        self._buffered_rows += len(chunk)
        threshold = effective_run_threshold(self.config)
        if self._buffered_rows >= threshold:
            if threshold < self.config.run_threshold:
                self.stats.governor_forced_spills += 1
            self._generate_run()

    # ------------------------------------------------------------------ #
    # Run generation
    # ------------------------------------------------------------------ #

    def _choose_algorithm(self, keys: NormalizedKeys) -> str:
        forced = self.config.force_algorithm
        if forced == "heuristic":
            from repro.sort.heuristic import choose_algorithm

            if not keys.prefix_exact and not self._vector_exact_strings():
                # Without the vectorized tie repair, truncated string
                # prefixes need per-row tie-breaking comparisons, which
                # radix cannot perform.
                return "pdqsort"
            return choose_algorithm(keys.matrix, keys.layout.key_width)
        if forced is not None:
            return forced
        # DuckDB's rule: pdqsort when strings are present, radix otherwise.
        return "pdqsort" if self._has_string_key else "radix"

    def _vector_exact_strings(self) -> bool:
        """True when inexact prefixes are repaired on the vector path.

        The vectorized prefix sort stays usable for truncated VARCHAR
        prefixes because :func:`repro.sort.stringsort.refine_key_order`
        re-sorts the byte-equal tie groups on the full strings afterwards;
        with ``exact_varchar`` off the prefix order *is* the requested
        order, so the vector path needs no repair either way.
        """
        return self.config.use_vector_kernels and self.config.exact_varchar

    def _generate_run(self) -> None:
        if not self._buffer:
            return
        raise_if_cancelled(self.config)
        table = self._buffer[0].to_table()
        for chunk in self._buffer[1:]:
            table = table.concat(chunk.to_table())
        self._buffer.clear()
        self._buffered_rows = 0

        # All runs must share one key layout so the merge can memcmp
        # across them; with VARCHAR keys and no explicit prefix we lock
        # the prefix to DuckDB's 12-byte cap rather than letting each
        # run pick its own width from its data.
        string_prefix = self.config.string_prefix
        if string_prefix is None and self._has_string_key:
            string_prefix = MAX_STRING_PREFIX
        with self.stats.time_phase("encode"):
            layout = None
            if self._compress:
                # Stats-driven key compression: the accumulator is
                # monotone, so this run's layout covers all earlier runs'
                # data too -- earlier runs are re-based at finalize if
                # this layout is wider than theirs.
                if self._key_acc is None:
                    self._key_acc = KeyStatsAccumulator(self.schema, self.spec)
                self._key_acc.update(table)
                layout = self._key_acc.build_layout(
                    include_row_id=True, row_id_width=8
                )
            keys = normalize_keys(
                table,
                self.spec,
                string_prefix=string_prefix,
                include_row_id=True,
                row_id_base=self._next_row_id,
                row_id_width=8,
                layout=layout,
            )
        self._key_layout = keys.layout
        self.stats.key_width_used = keys.layout.key_width
        self.stats.key_width_full = plain_key_width(keys.layout)
        self._next_row_id += len(table)
        self.stats.prefix_exact = self.stats.prefix_exact and keys.prefix_exact

        algorithm = self._choose_algorithm(keys)
        if (
            algorithm == "radix"
            and not keys.prefix_exact
            and not self._vector_exact_strings()
        ):
            # Radix cannot tie-break truncated string prefixes, and
            # without the vector-path tie repair the only exact option is
            # pdqsort with full-string comparisons.
            algorithm = "pdqsort"
        self.stats.algorithm = algorithm
        with self.stats.time_phase("run_gen"):
            order = None
            # With exact prefixes the key bytes decide everything; with
            # inexact prefixes the vector path sorts the prefix bytes and
            # repairs the byte-equal tie groups afterwards, so the
            # parallel executor and radix requalify for string keys.
            vector_ok = keys.prefix_exact or self._vector_exact_strings()
            executor = self._parallel_executor()
            if executor is not None and vector_ok:
                # Morsel-driven parallel run generation: stable sorts of
                # the same key bytes, so the permutation -- and the run --
                # is byte-identical to whichever serial algorithm was
                # chosen (both radix and the kernel argsort are stable).
                order = executor.argsort(
                    keys.matrix, keys.layout.key_width, self.stats
                )
                if order is not None:
                    self.stats.algorithm = "parallel-morsel"
            if order is not None:
                pass
            elif algorithm == "radix":
                # Radix sort is stable, so only the key bytes need sorting
                # -- the row-id suffix exists for merge-time tie breaks,
                # and spending passes on its (unique) bytes would be
                # wasted work.
                if self.config.use_vector_kernels:
                    # Width/row-count/skew heuristic picks the vectorized
                    # MSD radix kernel or the argsort/lexsort kernel;
                    # both stable, so the run is byte-identical either way.
                    order = vector_sort_rows(
                        keys.matrix[:, : keys.layout.key_width],
                        keys.layout.key_width,
                        self.stats,
                        self.stats.radix,
                    )
                else:
                    order = radix_argsort(
                        keys.matrix[:, : keys.layout.key_width],
                        self.stats.radix,
                        self.config.lsd_threshold,
                        vector_threshold=None,
                    )
            else:
                order = self._pdq_argsort(table, keys)

            if (
                not keys.prefix_exact
                and self._vector_exact_strings()
                and not refinement_must_defer(keys.layout)
            ):
                # Adaptive tie-break re-encoding: only byte-equal groups
                # of the prefix order are re-sorted on their full strings,
                # so the run is exact without a per-row comparator.  With
                # later key bytes after the truncated segment the repair
                # would break the run's memcmp sortedness, so it is
                # deferred to the final merged result (finalize).
                order = self._refine_run_order(table, keys, order)
            sorted_keys = keys.matrix[order]
            payload = RowBlock.from_table(table).take(np.asarray(order))
        self._runs.append(
            SortedRun(
                sorted_keys, payload, keys.layout.key_width, layout=keys.layout
            )
        )
        self.stats.runs_generated += 1
        self.stats.rows_sorted += len(table)

    def _pdq_argsort(self, table: Table, keys: NormalizedKeys) -> np.ndarray:
        """pdqsort on memcmp of key bytes, with full-string tie-breaks.

        When every string fit its prefix the key bytes (which end in the
        unique row id) order rows exactly.  On the vector path, inexact
        prefixes are sorted by their bytes here and the byte-equal tie
        groups repaired afterwards by :meth:`_refine_run_order`.  Only the
        ``use_vector_kernels=False`` oracle walks the key *segments*
        per row: a VARCHAR segment whose truncated prefixes tie is
        resolved on the full strings before any later key column is
        consulted -- DuckDB's "compare the rest of the string only if the
        prefixes are equal".
        """
        n = len(keys)
        matrix = keys.matrix
        if self.config.use_vector_kernels:
            # Vectorized stable sort of the key bytes (heuristic
            # radix/lexsort dispatch).  The row-id suffix ascends with
            # row index, so a stable sort without it is byte-identical
            # to memcmp over the full row.
            return vector_sort_rows(
                matrix[:, : keys.layout.key_width],
                keys.layout.key_width,
                self.stats,
                self.stats.radix,
            )
        if keys.prefix_exact or not self.config.exact_varchar:
            raw = [matrix[i].tobytes() for i in range(n)]
            order = list(range(n))
            pdqsort(order, lambda i, j: raw[i] < raw[j])
            return np.asarray(order, dtype=np.int64)
        return _segmented_argsort(table, keys, self.spec)

    def _refine_run_order(
        self, table: Table, keys: NormalizedKeys, order
    ) -> np.ndarray:
        """Repair a prefix-only permutation to exact full-string order."""
        order = np.asarray(order, dtype=np.int64)
        matrix = keys.matrix[order][:, : keys.layout.key_width]

        def fetch_tied(tied: np.ndarray):
            source = order[tied]

            def get(name: str):
                column = table.column(name)
                return column.data[source], column.validity[source]

            return get

        perm = refine_key_order(matrix, keys.layout, fetch_tied, self.stats)
        if perm is None:
            return order
        return order[perm]

    # ------------------------------------------------------------------ #
    # Merge
    # ------------------------------------------------------------------ #

    def _merge_two(self, left: SortedRun, right: SortedRun) -> SortedRun:
        """Cascaded-merge step: physically merge two sorted runs.

        Keys are compared with memcmp over the full key row.  Row ids are
        globally unique and assigned in arrival order, so the suffix makes
        the merge stable.  On the vector path the merge is one vectorized
        searchsorted/lexsort kernel; truncated string prefixes are
        repaired afterwards by re-sorting the byte-equal tie groups on the
        full strings.  Only the scalar oracle re-resolves segment ties per
        row with values fetched from the payload.
        """
        key_width = left.key_width
        exact = self.stats.prefix_exact or not self.config.exact_varchar
        if self.config.use_vector_kernels:
            return self._merge_two_kernel(left, right)
        self.stats.scalar_merges += 1
        a = left.raw_keys()
        b = right.raw_keys()
        key_names = self.spec.column_names

        def b_before_a(i: int, j: int) -> bool:
            if exact:
                return b[j] < a[i]
            cmp = _segmented_compare(
                b[j],
                a[i],
                self._key_layout,
                self.spec,
                lambda col: right.payload.value(j, key_names[col]),
                lambda col: left.payload.value(i, key_names[col]),
            )
            if cmp != 0:
                return cmp < 0
            return b[j][key_width:] < a[i][key_width:]

        n, m = len(a), len(b)
        take_from_left = np.empty(n + m, dtype=bool)
        source_index = np.empty(n + m, dtype=np.int64)
        merged_raw: list[bytes] = [b""] * (n + m)
        i = j = 0
        comparisons = 0
        for k in range(n + m):
            if i < n and (j >= m or not b_before_a(i, j)):
                if j < m:
                    comparisons += 1
                take_from_left[k] = True
                source_index[k] = i
                merged_raw[k] = a[i]
                i += 1
            else:
                if i < n:
                    comparisons += 1
                take_from_left[k] = False
                source_index[k] = j
                merged_raw[k] = b[j]
                j += 1
        self.stats.merge_comparisons += comparisons

        merged_keys = np.empty(
            (n + m, left.keys.shape[1]), dtype=np.uint8
        )
        merged_keys[take_from_left] = left.keys[source_index[take_from_left]]
        merged_keys[~take_from_left] = right.keys[source_index[~take_from_left]]

        combined = left.payload.concat(right.payload)
        gather = np.where(
            take_from_left, source_index, source_index + n
        )
        payload = combined.take(gather)
        return SortedRun(merged_keys, payload, key_width, raw=merged_raw)

    def _merge_two_kernel(self, left: SortedRun, right: SortedRun) -> SortedRun:
        """Vectorized merge: one searchsorted kernel, no per-row Python.

        The merge compares only the key bytes: row ids ascend with run
        order (earlier run => smaller ids), so the kernel's stable
        left-first tie handling reproduces the full-row memcmp order
        without touching the suffix.  With truncated string prefixes the
        byte-equal tie groups of the merged result are re-sorted on the
        full strings afterwards -- both inputs are already exact, but two
        runs can tie on the whole prefix while their full strings
        interleave, so the repair must happen per merge, not just per run.
        """
        key_width = left.key_width
        perm = None
        executor = self._parallel_executor()
        if executor is not None:
            # Merge-Path-partitioned parallel merge; ties resolve to the
            # left (earlier, lower-row-id) run exactly like the kernel.
            perm = executor.merge_two(
                left.keys, right.keys, key_width, self.stats
            )
        if perm is None:
            perm = merge_indices(
                left.keys[:, :key_width],
                right.keys[:, :key_width],
                stats=self.stats,
                use_ovc=self.config.use_ovc,
            )
        merged_keys = np.concatenate([left.keys, right.keys])[perm]
        payload = left.payload.concat(right.payload).take(perm)
        if (
            not self.stats.prefix_exact
            and self.config.exact_varchar
            and not self._defer_refinement()
        ):
            merged_keys, payload = self._refine_merged(
                merged_keys, payload, key_width
            )
        self.stats.kernel_merges += 1
        return SortedRun(
            merged_keys, payload, key_width, layout=self._key_layout
        )

    def _defer_refinement(self) -> bool:
        """Exact-string repair must wait for the final merged result.

        True when key bytes follow the first truncated VARCHAR segment
        (see :func:`repro.sort.stringsort.refinement_must_defer`):
        refining per run or per merge would hand the merge kernels runs
        that are no longer byte-sorted.
        """
        return self._key_layout is not None and refinement_must_defer(
            self._key_layout
        )

    def _refine_merged(
        self, merged_keys: np.ndarray, payload: RowBlock, key_width: int
    ) -> tuple[np.ndarray, RowBlock]:
        """Re-sort a merged run's byte-equal tie groups on full strings."""

        def fetch_tied(tied: np.ndarray):
            tied_table = payload.take(tied).to_table()

            def get(name: str):
                column = tied_table.column(name)
                return column.data, column.validity

            return get

        perm = refine_key_order(
            merged_keys[:, :key_width], self._key_layout, fetch_tied, self.stats
        )
        if perm is None:
            return merged_keys, payload
        return merged_keys[perm], payload.take(perm)

    # ------------------------------------------------------------------ #
    # Finalize
    # ------------------------------------------------------------------ #

    def finalize(self) -> Table:
        """Sort any remaining buffer, merge all runs, return the table."""
        if self._finalized:
            raise SortError("sort already finalized")
        self._finalized = True
        try:
            if self._buffer:
                self._generate_run()
            if not self._runs:
                return Table.empty(self.schema)
            runs = self._runs
            if self._compress and len(runs) > 1:
                # Later runs may have widened the compressed layout; the
                # last run's layout covers every run (the statistics
                # accumulator is monotone), so re-base narrower runs onto
                # it and the merge memcmps one shared layout.
                final_layout = runs[-1].layout
                for run in runs:
                    if run.layout is None or run.layout == final_layout:
                        continue
                    with self.stats.time_phase("encode"):
                        run.keys = rebase_matrix(
                            run.keys, run.layout, final_layout
                        )
                    run.layout = final_layout
                    run.key_width = final_layout.key_width
                    run.raw = None
                    self.stats.key_layout_rebases += 1
                self._key_layout = final_layout
                self.stats.key_width_used = final_layout.key_width
            with self.stats.time_phase("merge"):
                while len(runs) > 1:
                    raise_if_cancelled(self.config)
                    self.stats.merge_rounds += 1
                    merged = []
                    for i in range(0, len(runs) - 1, 2):
                        merged.append(self._merge_two(runs[i], runs[i + 1]))
                    if len(runs) % 2 == 1:
                        merged.append(runs[-1])
                    runs = merged
            if (
                not self.stats.prefix_exact
                and self._vector_exact_strings()
                and self._defer_refinement()
            ):
                # Deferred exact-string repair: runs and merges stayed in
                # raw byte order (later key bytes follow the truncated
                # VARCHAR segment), so one refinement of the final result
                # produces the exact order -- tie groups arrive sorted by
                # the remaining key bytes and row id, which the stable
                # re-sort preserves for equal full strings.
                final = runs[0]
                merged_keys, payload = self._refine_merged(
                    final.keys, final.payload, final.key_width
                )
                runs = [
                    SortedRun(
                        merged_keys,
                        payload,
                        final.key_width,
                        layout=final.layout,
                    )
                ]
            self._runs = runs
            return runs[0].payload.to_table()
        finally:
            self._close_parallel()


def sort_table(
    table: Table, spec: SortSpec | str, config: SortConfig | None = None
) -> Table:
    """Sort a table by an ORDER BY spec; the one-call public entry point.

    ``spec`` may be a :class:`SortSpec` or text like
    ``"country DESC NULLS LAST, birth_year"``.
    """
    if isinstance(spec, str):
        spec = SortSpec.of(*[part.strip() for part in spec.split(",")])
    config = config or SortConfig()
    operator = SortOperator(table.schema, spec, config)
    for chunk in chunk_table(table, config.vector_size):
        operator.sink(chunk)
    return operator.finalize()
