"""Pattern-defeating quicksort (pdqsort), ported to Python.

pdqsort (Peters 2021) is the state-of-the-art comparison sort the paper
benchmarks radix sort against and the algorithm DuckDB uses when keys
contain strings.  This is a faithful port of its control structure:

* insertion sort for partitions of < 24 elements,
* median-of-3 pivot selection (pseudo-median of 9 for large partitions),
* ``partition_left`` fast path for runs of elements equal to the pivot
  (defeats the many-duplicates worst case),
* detection of already-partitioned input with an opportunistic partial
  insertion sort (defeats nearly-sorted inputs),
* pattern breaking (element shuffles) on highly unbalanced partitions, and
* a heapsort fallback once ``log2(n)`` bad partitions have been seen, which
  guarantees O(n log n) worst case.

The port does not reproduce the *branchless block partitioning* of
BlockQuickSort -- branch behaviour is a hardware property that Python cannot
express; the instrumented twin in :mod:`repro.simsort` models it instead.

The sort is generic over a ``less(a, b)`` callable so the paper's comparator
variants (static tuple-at-a-time, dynamic callback, normalized-key memcmp)
all run through the identical algorithm.
"""

from __future__ import annotations

from typing import Any, Callable, MutableSequence

__all__ = ["INSERTION_SORT_THRESHOLD", "PdqStats", "pdqsort", "pdq_argsort"]

INSERTION_SORT_THRESHOLD = 24
"""Partitions below this size are insertion sorted (pdqsort's constant)."""

_NINTHER_THRESHOLD = 128
"""Partitions above this size use the pseudo-median of nine as pivot."""

Less = Callable[[Any, Any], bool]


class PdqStats:
    """Counters describing one pdqsort run (used by tests and benches)."""

    __slots__ = ("comparisons", "swaps", "heapsort_fallbacks", "bad_partitions")

    def __init__(self) -> None:
        self.comparisons = 0
        self.swaps = 0
        self.heapsort_fallbacks = 0
        self.bad_partitions = 0


def _default_less(a: Any, b: Any) -> bool:
    return a < b


def pdqsort(
    items: MutableSequence[Any],
    less: Less | None = None,
    stats: PdqStats | None = None,
) -> None:
    """Sort ``items`` in place with pattern-defeating quicksort."""
    n = len(items)
    if n < 2:
        return
    state = _Pdq(items, less or _default_less, stats)
    state.sort(0, n, _log2(n), leftmost=True)


def pdq_argsort(keys: list[Any], less: Less | None = None) -> list[int]:
    """Indices that would sort ``keys`` (not stable; pdqsort is unstable)."""
    base_less = less or _default_less
    order = list(range(len(keys)))
    pdqsort(order, lambda i, j: base_less(keys[i], keys[j]))
    return order


def _log2(n: int) -> int:
    return max(1, n.bit_length() - 1)


class _Pdq:
    """Worker holding the sequence, comparator, and counters."""

    __slots__ = ("a", "less", "stats")

    def __init__(self, a: MutableSequence[Any], less: Less, stats) -> None:
        self.a = a
        self.less = less
        self.stats = stats

    # -------------------------------------------------------------- #
    # Comparator / swap wrappers (counted when stats are attached)
    # -------------------------------------------------------------- #

    def _lt(self, x: Any, y: Any) -> bool:
        if self.stats is not None:
            self.stats.comparisons += 1
        return self.less(x, y)

    def _swap(self, i: int, j: int) -> None:
        if self.stats is not None:
            self.stats.swaps += 1
        a = self.a
        a[i], a[j] = a[j], a[i]

    def _sort3(self, i: int, j: int, k: int) -> None:
        """Order a[i] <= a[j] <= a[k] (median-of-3 network)."""
        a = self.a
        if self._lt(a[j], a[i]):
            self._swap(i, j)
        if self._lt(a[k], a[j]):
            self._swap(j, k)
            if self._lt(a[j], a[i]):
                self._swap(i, j)

    # -------------------------------------------------------------- #
    # Insertion sorts
    # -------------------------------------------------------------- #

    def _insertion_sort(self, begin: int, end: int) -> None:
        a = self.a
        for i in range(begin + 1, end):
            value = a[i]
            j = i - 1
            while j >= begin and self._lt(value, a[j]):
                a[j + 1] = a[j]
                j -= 1
            a[j + 1] = value

    def _unguarded_insertion_sort(self, begin: int, end: int) -> None:
        """Insertion sort knowing a[begin-1] is a lower sentinel."""
        a = self.a
        for i in range(begin + 1, end):
            value = a[i]
            j = i - 1
            while self._lt(value, a[j]):
                a[j + 1] = a[j]
                j -= 1
            a[j + 1] = value

    def _partial_insertion_sort(self, begin: int, end: int) -> bool:
        """Try to finish with insertion sort; bail after a move budget.

        Returns True if [begin, end) ended up sorted.  This is pdqsort's
        "already partitioned" opportunism that makes nearly-sorted inputs
        nearly free.
        """
        limit = 8  # pdqsort's partial_insertion_sort move budget
        a = self.a
        moves = 0
        for i in range(begin + 1, end):
            value = a[i]
            j = i - 1
            if self._lt(value, a[j]):
                while j >= begin and self._lt(value, a[j]):
                    a[j + 1] = a[j]
                    j -= 1
                    moves += 1
                a[j + 1] = value
                if moves > limit:
                    return False
        return True

    # -------------------------------------------------------------- #
    # Heapsort fallback
    # -------------------------------------------------------------- #

    def _heapsort(self, begin: int, end: int) -> None:
        if self.stats is not None:
            self.stats.heapsort_fallbacks += 1
        n = end - begin

        def sift_down(start: int, stop: int) -> None:
            a = self.a
            root = start
            while True:
                child = 2 * (root - begin) + 1 + begin
                if child >= stop:
                    return
                if child + 1 < stop and self._lt(a[child], a[child + 1]):
                    child += 1
                if self._lt(a[root], a[child]):
                    self._swap(root, child)
                    root = child
                else:
                    return

        for start in range(begin + n // 2 - 1, begin - 1, -1):
            sift_down(start, end)
        for stop in range(end - 1, begin, -1):
            self._swap(begin, stop)
            sift_down(begin, stop)

    # -------------------------------------------------------------- #
    # Partitioning
    # -------------------------------------------------------------- #

    def _choose_pivot(self, begin: int, end: int) -> None:
        """Place the chosen pivot at a[begin]."""
        size = end - begin
        mid = begin + size // 2
        if size > _NINTHER_THRESHOLD:
            self._sort3(begin, mid, end - 1)
            self._sort3(begin + 1, mid - 1, end - 2)
            self._sort3(begin + 2, mid + 1, end - 3)
            self._sort3(mid - 1, mid, mid + 1)
            self._swap(begin, mid)
        else:
            self._sort3(mid, begin, end - 1)

    def _partition_right(self, begin: int, end: int) -> tuple[int, bool]:
        """Partition [begin, end) on pivot a[begin]; pivot ends at result.

        Elements equal to the pivot go right.  Returns (pivot position,
        already_partitioned), mirroring the reference implementation: the
        left scan stops at the first element >= pivot (the median-of-3
        guarantees one exists), the right scan at the first element < pivot.
        """
        a = self.a
        pivot = a[begin]
        first = begin
        last = end
        first += 1
        while self._lt(a[first], pivot):
            first += 1
        if first - 1 == begin:
            # No smaller element seen yet: guard the right scan.
            while first < last:
                last -= 1
                if self._lt(a[last], pivot):
                    break
        else:
            last -= 1
            while not self._lt(a[last], pivot):
                last -= 1
        already_partitioned = first >= last
        while first < last:
            self._swap(first, last)
            first += 1
            while self._lt(a[first], pivot):
                first += 1
            last -= 1
            while not self._lt(a[last], pivot):
                last -= 1
        pivot_pos = first - 1
        a[begin] = a[pivot_pos]
        a[pivot_pos] = pivot
        return pivot_pos, already_partitioned

    def _partition_left(self, begin: int, end: int) -> int:
        """Partition putting elements equal to pivot a[begin] on the left.

        Used when the pivot equals the element before the partition, which
        means a run of equal elements: they are finished in one pass.
        """
        a = self.a
        pivot = a[begin]
        first = begin
        last = end
        last -= 1
        while self._lt(pivot, a[last]):
            last -= 1
        if last + 1 == end:
            while first < last:
                first += 1
                if self._lt(pivot, a[first]):
                    break
        else:
            first += 1
            while not self._lt(pivot, a[first]):
                first += 1
        while first < last:
            self._swap(first, last)
            last -= 1
            while self._lt(pivot, a[last]):
                last -= 1
            first += 1
            while not self._lt(pivot, a[first]):
                first += 1
        pivot_pos = last
        a[begin] = a[pivot_pos]
        a[pivot_pos] = pivot
        return pivot_pos

    # -------------------------------------------------------------- #
    # Main loop
    # -------------------------------------------------------------- #

    def sort(self, begin: int, end: int, bad_allowed: int, leftmost: bool) -> None:
        a = self.a
        while True:
            size = end - begin
            if size < INSERTION_SORT_THRESHOLD:
                if leftmost:
                    self._insertion_sort(begin, end)
                else:
                    self._unguarded_insertion_sort(begin, end)
                return

            self._choose_pivot(begin, end)

            # If a[begin - 1] == pivot we are in a run of equal elements:
            # partition_left puts them all in place at once.
            if not leftmost and not self._lt(a[begin - 1], a[begin]):
                begin = self._partition_left(begin, end) + 1
                continue

            pivot_pos, already_partitioned = self._partition_right(begin, end)

            left_size = pivot_pos - begin
            right_size = end - (pivot_pos + 1)
            highly_unbalanced = (
                left_size < size // 8 or right_size < size // 8
            )
            if highly_unbalanced:
                if self.stats is not None:
                    self.stats.bad_partitions += 1
                bad_allowed -= 1
                if bad_allowed == 0:
                    self._heapsort(begin, end)
                    return
                # Break the pattern by shuffling a few elements.
                if left_size >= INSERTION_SORT_THRESHOLD:
                    quarter = left_size // 4
                    self._swap(begin, begin + quarter)
                    self._swap(pivot_pos - 1, pivot_pos - quarter)
                    if left_size > _NINTHER_THRESHOLD:
                        self._swap(begin + 1, begin + quarter + 1)
                        self._swap(begin + 2, begin + quarter + 2)
                        self._swap(pivot_pos - 2, pivot_pos - quarter - 1)
                        self._swap(pivot_pos - 3, pivot_pos - quarter - 2)
                if right_size >= INSERTION_SORT_THRESHOLD:
                    quarter = right_size // 4
                    self._swap(pivot_pos + 1, pivot_pos + 1 + quarter)
                    self._swap(end - 1, end - quarter)
                    if right_size > _NINTHER_THRESHOLD:
                        self._swap(pivot_pos + 2, pivot_pos + 2 + quarter)
                        self._swap(pivot_pos + 3, pivot_pos + 3 + quarter)
                        self._swap(end - 2, end - quarter - 1)
                        self._swap(end - 3, end - quarter - 2)
            elif already_partitioned:
                # Both sides may already be sorted; try to finish cheaply.
                if self._partial_insertion_sort(
                    begin, pivot_pos
                ) and self._partial_insertion_sort(pivot_pos + 1, end):
                    return

            # Recurse on the smaller side, iterate on the larger.
            self.sort(begin, pivot_pos, bad_allowed, leftmost)
            begin = pivot_pos + 1
            leftmost = False
