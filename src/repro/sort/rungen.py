"""Replacement-selection run generation over normalized-key matrices.

The external sort's default run generation cuts a run at a fixed row
threshold: buffer ``run_threshold`` rows, argsort, spill, repeat.  That
ignores input order entirely -- a nearly sorted stream still produces
``n / threshold`` runs.  Classic replacement selection (Knuth vol. 3,
sec. 5.4.1; reaffirmed as one of the two big external-sort levers by
Polyntsov et al., arXiv 2207.12713) does better: keep a selection
working set, repeatedly emit its smallest row that is still >= the last
row written (the *fence*), and defer smaller rows to the next run.  On
random input runs average twice the working set; on input whose
disorder is smaller than the working set, one run can swallow the whole
stream.

A row-at-a-time tournament tree is the textbook implementation, but a
Python loop per row is exactly what this codebase avoids.  This module
reformulates replacement selection as a **batch tournament over sorted
segments**:

* each fed batch is argsorted once (the same vectorized kernels run
  generation already uses) and enters the working set as a *sorted
  segment* -- a key matrix plus the positions mapping rows back to the
  source table;
* one selection step takes a fixed-size candidate window from the head
  of every segment, ranks all windows plus the fence with a single
  :func:`~repro.sort.kernels.argsort_rows` call, and emits every
  candidate that is above the fence and below the *cutoff* -- the
  smallest unfinished window's tail, the same frontier rule the k-way
  merge kernel uses, which guarantees no unseen row could precede an
  emitted one;
* candidates below the fence are *deferred*: their (contiguous) window
  prefix is recorded and the cursor skips them, so each step advances
  even when nothing is emittable.

Because every spilled key row carries a unique ascending row-id suffix,
keys are distinct and the final k-way merge produces byte-identical
output no matter how rows were partitioned into runs -- replacement
selection only changes *how many* runs there are, never the result.

When a run closes (no row in the working set is >= the fence, or the
run hits ``RUN_CAP_FACTOR`` times the threshold), each segment compacts
its deferred ranges and unconsumed tail into a new sorted segment: the
deferred ranges are ascending in position order and every one is below
the fence the tail survived, so concatenation preserves sortedness
without a re-sort.

Dispatch between the two generators is a cheap presortedness probe
(:func:`presortedness`): the fraction of non-decreasing adjacent pairs
of the first key word over a bounded sample.  Near-sorted input scores
near 1.0, random near 0.5, reversed near 0.0; replacement selection
wins only when runs actually get longer, so the operator switches at
:data:`PROBE_THRESHOLD`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sort.kernels import argsort_rows

__all__ = [
    "PROBE_THRESHOLD",
    "RUN_CAP_FACTOR",
    "ReplacementSelection",
    "SelectionRun",
    "presortedness",
]

RUN_CAP_FACTOR = 4
"""A replacement-selection run closes at this multiple of the run
threshold even if rows are still eligible, bounding the key rows and
payload references accumulated for one run."""

PROBE_THRESHOLD = 0.80
"""Minimum presortedness at which auto dispatch picks replacement
selection.  Random input probes ~0.5 and gains nothing (expected run
length 2x threshold does not offset the selection overhead here, where
argsort is vectorized but selection adds bookkeeping); the probe must
indicate genuinely long ascending stretches."""

PROBE_SAMPLE = 4096
"""Pairs sampled by :func:`presortedness`."""

PROBE_STRIDE = 256
"""Distance between the rows of each sampled pair.  Replacement
selection tolerates bounded local disorder -- a row displaced by a few
hundred positions still lands above the fence, which trails the batch
by far more than that -- so the probe must not punish local jitter.
Comparing rows ``stride`` apart makes displacement smaller than the
stride invisible while genuine global disorder still probes ~0.5
(random) or ~0.0 (reverse)."""

DEFAULT_BATCH_ROWS = 1024
"""Candidate-window rows per segment per selection step."""


def presortedness(
    matrix: np.ndarray,
    sample: int = PROBE_SAMPLE,
    stride: int = PROBE_STRIDE,
) -> float:
    """Fraction of non-decreasing first-word pairs ``stride`` apart.

    ``matrix`` is a normalized-key byte matrix (row-id suffix excluded
    by the caller); only the first 8 bytes -- the first comparison word
    -- are inspected, so the probe costs one gather and one vectorized
    compare regardless of key width.  Ties on the first word count as
    in-order, which errs toward replacement selection; that is the
    right bias, because duplicate-heavy input keeps rows eligible (>=
    fence) and produces long runs too.
    """
    n = len(matrix)
    if n < 2:
        return 1.0
    stride = max(1, min(stride, n - 1))
    width = min(8, matrix.shape[1])
    starts = np.unique(
        np.linspace(0, n - 1 - stride, min(sample, n - stride)).astype(
            np.int64
        )
    )
    pairs = np.concatenate([starts, starts + stride])
    words = np.zeros((len(pairs), 8), dtype=np.uint8)
    words[:, :width] = matrix[pairs][:, :width]
    words = np.ascontiguousarray(words).view(">u8").reshape(-1)
    count = len(starts)
    return float(np.mean(words[count:] >= words[:count]))


class _Segment:
    """One sorted batch of the working set.

    ``matrix`` rows ``[0, cur)`` are consumed (emitted into the current
    run, or recorded in ``deferred`` for the next one); ``deferred``
    holds the skipped ``[lo, hi)`` ranges in ascending position (and
    therefore ascending key) order.
    """

    __slots__ = ("table_id", "matrix", "positions", "cur", "deferred")

    def __init__(
        self, table_id: int, matrix: np.ndarray, positions: np.ndarray
    ) -> None:
        self.table_id = table_id
        self.matrix = matrix
        self.positions = positions
        self.cur = 0
        self.deferred: list[tuple[int, int]] = []

    @property
    def pending(self) -> int:
        held = sum(hi - lo for lo, hi in self.deferred)
        return held + (len(self.matrix) - self.cur)


@dataclass
class SelectionRun:
    """One closed run: keys in emission order plus payload references.

    ``keys`` is ready to spill as-is; row ``i``'s payload is row
    ``positions[i]`` of ``tables[table_ids[i]]``.  Within one table the
    emitted positions ascend, so the operator gathers payload with one
    ``take`` per source table plus one interleaving gather.
    """

    keys: np.ndarray
    table_ids: np.ndarray
    positions: np.ndarray
    layout: object | None
    tables: dict[int, object] = field(default_factory=dict)


class ReplacementSelection:
    """Batch replacement selection; the operator feeds and drains it.

    Protocol: :meth:`feed` sorted batches in arrival order, call
    :meth:`step` to emit one batch of the current run, watch
    :attr:`exhausted` / :attr:`run_rows` to decide when to
    :meth:`close_run`.  ``rebase`` (injected) widens every held matrix
    when the compression layout grows -- layouts only ever widen, so
    re-encoding is lossless and order-preserving.
    """

    def __init__(
        self,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        rebase=None,
    ) -> None:
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        self._batch = batch_rows
        self._rebase = rebase
        self._segments: list[_Segment] = []
        self._tables: dict[int, object] = {}
        self._next_table = 0
        self._layout = None
        self._fence: np.ndarray | None = None  # (1, width) last emitted key
        self._run_keys: list[np.ndarray] = []
        self._run_tids: list[np.ndarray] = []
        self._run_pos: list[np.ndarray] = []
        self.run_rows = 0
        self.exhausted = False  # nothing in the working set is >= fence

    @property
    def pending_rows(self) -> int:
        """Unconsumed rows across all segments (eligible + deferred)."""
        return sum(segment.pending for segment in self._segments)

    def feed(
        self,
        matrix: np.ndarray,
        positions: np.ndarray,
        table,
        layout=None,
    ) -> None:
        """Add one sorted batch (full-width keys, row-id included)."""
        matrix = np.ascontiguousarray(matrix)
        if self._layout is None:
            self._layout = layout
        elif layout is not None and layout != self._layout:
            # Eager rebase: the accumulator only widens layouts, so every
            # held matrix (segments, fence, the open run's batches)
            # re-encodes losslessly onto the new one.
            old = self._layout
            for segment in self._segments:
                segment.matrix = self._rebase(segment.matrix, old, layout)
            if self._fence is not None:
                self._fence = self._rebase(self._fence, old, layout)
            self._run_keys = [
                self._rebase(block, old, layout) for block in self._run_keys
            ]
            self._layout = layout
        if self._segments and matrix.shape[1] != self._segments[0].matrix.shape[1]:
            raise ValueError(
                "replacement selection fed mismatched key widths "
                f"({matrix.shape[1]} vs {self._segments[0].matrix.shape[1]})"
            )
        if not len(matrix):
            return
        table_id = self._next_table
        self._next_table += 1
        self._tables[table_id] = table
        self._segments.append(
            _Segment(table_id, matrix, np.asarray(positions, dtype=np.int64))
        )
        self.exhausted = False

    def step(self) -> int:
        """One selection batch; returns the rows emitted into the run.

        Always makes progress while rows remain: candidates below the
        fence are deferred (cursor advances past them) even on a
        zero-emission step.  Sets :attr:`exhausted` when the whole
        working set sits below the fence, i.e. the run must close.
        """
        window_rows = self._batch
        live = [s for s in self._segments if s.cur < len(s.matrix)]
        if not live:
            self.exhausted = self.pending_rows > 0
            return 0
        windows: list[np.ndarray] = []
        counts: list[int] = []
        incomplete: list[bool] = []
        for segment in live:
            end = min(segment.cur + window_rows, len(segment.matrix))
            windows.append(segment.matrix[segment.cur : end])
            counts.append(end - segment.cur)
            incomplete.append(end < len(segment.matrix))
        stacked = windows[0] if len(windows) == 1 else np.concatenate(windows)
        fenced = self._fence is not None
        if fenced:
            stacked = np.concatenate([stacked, self._fence])
        order = argsort_rows(np.ascontiguousarray(stacked))
        total = len(stacked)
        rank = np.empty(total, dtype=np.int64)
        rank[order] = np.arange(total, dtype=np.int64)
        # Keys are unique (row-id suffix) and the fence was already
        # emitted, so rank > fence_rank is exactly "key > fence" -- the
        # eligibility test.
        fence_rank = int(rank[total - 1]) if fenced else -1
        offsets = np.concatenate(
            [[0], np.cumsum(np.asarray(counts, dtype=np.int64))]
        )
        # Frontier rule: nothing past an unfinished window has been
        # seen, so only rows <= the smallest unfinished window tail may
        # leave the working set this step.
        cutoff_rank = total - 1
        for index, unfinished in enumerate(incomplete):
            if unfinished:
                cutoff_rank = min(
                    cutoff_rank, int(rank[offsets[index + 1] - 1])
                )
        window_ranks = rank[: total - 1] if fenced else rank
        segment_of = np.repeat(
            np.arange(len(live), dtype=np.int64), counts
        )
        consumed = np.bincount(
            segment_of[window_ranks <= cutoff_rank], minlength=len(live)
        )
        if fenced:
            below = np.bincount(
                segment_of[window_ranks <= fence_rank], minlength=len(live)
            )
        else:
            below = np.zeros(len(live), dtype=np.int64)
        starts = [segment.cur for segment in live]
        for index, segment in enumerate(live):
            taken = int(consumed[index])
            held = min(int(below[index]), taken)
            if held:
                segment.deferred.append((segment.cur, segment.cur + held))
            segment.cur += taken
        emit = order[fence_rank + 1 : cutoff_rank + 1]
        if not len(emit):
            self.exhausted = not any(incomplete) and self.pending_rows > 0
            return 0
        keys = np.ascontiguousarray(stacked[emit])
        segment_ids = segment_of[emit]
        local = emit - offsets[segment_ids]
        table_ids = np.empty(len(emit), dtype=np.int64)
        positions = np.empty(len(emit), dtype=np.int64)
        for index, segment in enumerate(live):
            mask = segment_ids == index
            if not mask.any():
                continue
            table_ids[mask] = segment.table_id
            positions[mask] = segment.positions[starts[index] + local[mask]]
        self._run_keys.append(keys)
        self._run_tids.append(table_ids)
        self._run_pos.append(positions)
        self.run_rows += len(emit)
        self._fence = keys[-1:].copy()
        self.exhausted = False
        return len(emit)

    def close_run(self) -> SelectionRun:
        """Seal the open run, reset the fence, compact the segments."""
        if self.run_rows == 0:
            raise ValueError("close_run with no emitted rows")
        keys = (
            self._run_keys[0]
            if len(self._run_keys) == 1
            else np.concatenate(self._run_keys)
        )
        table_ids = np.concatenate(self._run_tids)
        positions = np.concatenate(self._run_pos)
        run = SelectionRun(
            np.ascontiguousarray(keys),
            table_ids,
            positions,
            self._layout,
            {
                int(table_id): self._tables[int(table_id)]
                for table_id in np.unique(table_ids)
            },
        )
        self._run_keys.clear()
        self._run_tids.clear()
        self._run_pos.clear()
        self.run_rows = 0
        self._fence = None
        self.exhausted = False
        survivors: list[_Segment] = []
        for segment in self._segments:
            matrix_parts = [
                segment.matrix[lo:hi] for lo, hi in segment.deferred
            ]
            position_parts = [
                segment.positions[lo:hi] for lo, hi in segment.deferred
            ]
            if segment.cur < len(segment.matrix):
                matrix_parts.append(segment.matrix[segment.cur :])
                position_parts.append(segment.positions[segment.cur :])
            if not matrix_parts:
                continue
            # Deferred ranges ascend in position (hence key) order and
            # every deferred row is below the fence its successors
            # survived, so the concatenation is already sorted.
            survivors.append(
                _Segment(
                    segment.table_id,
                    np.ascontiguousarray(np.concatenate(matrix_parts)),
                    np.concatenate(position_parts),
                )
            )
        self._segments = survivors
        keep = {segment.table_id for segment in survivors}
        self._tables = {
            table_id: table
            for table_id, table in self._tables.items()
            if table_id in keep
        }
        return run
