"""Tie-group refinement: finish a sort whose prefix order is provided.

When the planner knows an input is already sorted by a leading prefix of
the requested ORDER BY (a published incremental view, an earlier sort in
the same plan), a full re-sort repeats work the prefix already paid for.
:func:`refine_sorted` instead orders rows only *within* the existing
prefix groups:

1. Exact group boundaries on the provided prefix come from one
   :func:`repro.sort.stringsort.exact_group_changed` pass (exact even
   for truncated VARCHAR prefixes).
2. Each row's key becomes ``[8-byte group ordinal][normalized suffix
   keys][row id]`` and one stable vectorized sort
   (:func:`repro.sort.heuristic.vector_sort_rows`) orders the whole
   table -- the group ordinal pins rows to their provided prefix order,
   so the sort only permutes within groups.
3. Truncated VARCHAR suffix keys are repaired by the same adaptive
   tie-break re-encoding the one-shot operator uses
   (:func:`repro.sort.stringsort.refine_key_order`), against a layout
   shifted past the group-ordinal bytes.

The result is byte-identical to a stable full sort: the group ordinal
order equals the exact prefix order (the input was exactly sorted), the
suffix order is exact after refinement, and the trailing row id
reproduces stable arrival-order ties.

The pass declines (returns ``None``; the caller runs a full sort and
counts a ``refine_fallbacks``) exactly where the cheap path cannot
guarantee the operator's exact semantics: scalar-only configs, inexact
keys under ``exact_varchar=False`` (the operator's byte-order output is
not derivable from exact prefix groups), and suffixes where
:func:`repro.sort.stringsort.refinement_must_defer` reports key bytes
*after* a truncated VARCHAR segment.  The must-defer check is consulted
on the *suffix* layout (the prepended group ordinal is always exact):
a truncated suffix VARCHAR as the last key refines in place, while one
followed by further ORDER BY columns hands the sort back to the full
operator -- the same boundary the external sort draws for its runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.keys.normalizer import MAX_STRING_PREFIX, normalize_keys
from repro.sort.heuristic import vector_sort_rows
from repro.sort.operator import SortConfig, SortStats
from repro.sort.stringsort import (
    exact_group_changed,
    refine_key_order,
    refinement_must_defer,
)
from repro.table.table import Table
from repro.types.sortspec import SortSpec

__all__ = ["refine_sorted"]

_GROUP_WIDTH = 8
"""Bytes of the big-endian group ordinal prepended to the suffix keys."""


def _shifted_layout(layout):
    """The suffix layout with every segment moved past the group bytes."""
    segments = tuple(
        dataclasses.replace(s, offset=s.offset + _GROUP_WIDTH)
        for s in layout.segments
    )
    return dataclasses.replace(
        layout, segments=segments, key_width=layout.key_width + _GROUP_WIDTH
    )


def refine_sorted(
    table: Table,
    spec: SortSpec,
    prefix: SortSpec,
    config: SortConfig | None = None,
    stats: SortStats | None = None,
) -> Table | None:
    """Sort ``table`` by ``spec``, given it is already exactly sorted by
    ``prefix`` (a leading sub-spec of ``spec``).

    Returns the sorted table -- byte-identical to a stable full
    ``sort_table(table, spec)`` -- or ``None`` when the refinement path
    is unavailable and the caller must fall back to a full sort (see
    module docstring for the exact decline rules).
    """
    config = config or SortConfig()
    stats = stats if stats is not None else SortStats()
    if len(prefix.keys) >= len(spec.keys):
        # Nothing to refine: the prefix already covers the spec.
        stats.sorts_refined += 1
        return table
    if not config.use_vector_kernels:
        return None

    n = table.num_rows
    suffix = SortSpec(spec.keys[len(prefix.keys):])
    if n <= 1:
        stats.sorts_refined += 1
        return table

    pre = normalize_keys(
        table, prefix, string_prefix=MAX_STRING_PREFIX, include_row_id=False
    )
    suf = normalize_keys(
        table,
        suffix,
        string_prefix=MAX_STRING_PREFIX,
        include_row_id=True,
        row_id_width=8,
    )
    if not config.exact_varchar and not (
        pre.prefix_exact and suf.prefix_exact
    ):
        return None
    if not suf.prefix_exact and refinement_must_defer(suf.layout):
        return None

    changed = exact_group_changed(table, pre)
    group = np.concatenate(([0], np.cumsum(changed))).astype(np.uint64)

    total_width = _GROUP_WIDTH + suf.matrix.shape[1]
    matrix = np.empty((n, total_width), dtype=np.uint8)
    matrix[:, :_GROUP_WIDTH] = (
        group.astype(">u8").view(np.uint8).reshape(n, _GROUP_WIDTH)
    )
    matrix[:, _GROUP_WIDTH:] = suf.matrix
    order = vector_sort_rows(
        matrix, _GROUP_WIDTH + suf.layout.key_width, stats, stats.radix
    )
    result = table.take(order)
    stats.sorts_refined += 1
    stats.rows_sorted += n

    if not suf.prefix_exact:
        sorted_matrix = matrix[order]
        layout = _shifted_layout(suf.layout)

        def fetch_tied(tied: np.ndarray):
            def get(name: str):
                column = result.column(name)
                return column.data[tied], column.validity[tied]

            return get

        perm = refine_key_order(
            sorted_matrix[:, : layout.key_width], layout, fetch_tied, stats
        )
        if perm is not None:
            result = result.take(perm)
    return result
